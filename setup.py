"""Legacy setup shim.

The build environment in which this reproduction runs is offline and ships
setuptools without the ``wheel`` package, so PEP 517 editable installs fail
with ``invalid command 'bdist_wheel'``.  This thin ``setup.py`` lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
