#!/usr/bin/env python3
"""The no / only / all pattern gallery across three schemas (Appendix G).

The same logical pattern yields the same diagram regardless of schema:
"sailors who reserve {no, only, all} red boats", "students who take {no, only,
all} art classes" and "actors who play in {no, only, all} Hitchcock movies"
produce, row by row, identical diagram shapes (Figs. 25/26).  The script also
shows that the three *syntactically different* spellings of "only red boats"
in Fig. 24 (NOT EXISTS, NOT IN, NOT = ANY) map to one and the same diagram.
"""

from __future__ import annotations

from repro import queryvis
from repro.diagram import pattern_signature, same_pattern
from repro.render import diagram_to_text

PATTERNS = {
    # (entity table, link table, target table, link-to-entity, link-to-target,
    #  selection column, selection value, selected column)
    "sailors": ("Sailor", "Reserves", "Boat", "sid", "bid", "color", "red", "sname"),
    "students": ("Student", "Takes", "Class", "sid", "cid", "department", "art", "sname"),
    "actors": ("Actor", "Casts", "Movie", "aid", "mid", "director", "Hitchcock", "aname"),
}


def no_query(entity, link, target, ekey, tkey, column, value, select) -> str:
    return f"""
SELECT S.{select}
FROM {entity} S
WHERE NOT EXISTS(
    SELECT * FROM {link} R
    WHERE R.{ekey} = S.{ekey}
    AND EXISTS(
        SELECT * FROM {target} B
        WHERE B.{column} = '{value}' AND R.{tkey} = B.{tkey}))
"""


def only_query(entity, link, target, ekey, tkey, column, value, select) -> str:
    return f"""
SELECT S.{select}
FROM {entity} S
WHERE NOT EXISTS(
    SELECT * FROM {link} R
    WHERE R.{ekey} = S.{ekey}
    AND NOT EXISTS(
        SELECT * FROM {target} B
        WHERE B.{column} = '{value}' AND R.{tkey} = B.{tkey}))
"""


def all_query(entity, link, target, ekey, tkey, column, value, select) -> str:
    return f"""
SELECT S.{select}
FROM {entity} S
WHERE NOT EXISTS(
    SELECT * FROM {target} B
    WHERE B.{column} = '{value}'
    AND NOT EXISTS(
        SELECT * FROM {link} R
        WHERE R.{tkey} = B.{tkey} AND R.{ekey} = S.{ekey}))
"""


FIG24_VARIANTS = (
    """
SELECT S.sname FROM Sailor S
WHERE NOT EXISTS(
    SELECT * FROM Reserves R WHERE R.sid = S.sid
    AND NOT EXISTS(
        SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))
""",
    """
SELECT S.sname FROM Sailor S
WHERE S.sid NOT IN(
    SELECT R.sid FROM Reserves R
    WHERE R.bid NOT IN(
        SELECT B.bid FROM Boat B WHERE B.color = 'red'))
""",
    """
SELECT S.sname FROM Sailor S
WHERE NOT S.sid = ANY(
    SELECT R.sid FROM Reserves R
    WHERE NOT R.bid = ANY(
        SELECT B.bid FROM Boat B WHERE B.color = 'red'))
""",
)


def main() -> None:
    builders = {"no": no_query, "only": only_query, "all": all_query}
    signatures: dict[str, list[str]] = {}
    for pattern_name, build in builders.items():
        print(f"=== pattern: {pattern_name} ===")
        row_signatures = []
        for schema_name, spec in PATTERNS.items():
            diagram = queryvis(build(*spec))
            signature = pattern_signature(diagram)
            row_signatures.append(signature.digest)
            print(f"  {schema_name:<9} signature {signature.digest}")
        signatures[pattern_name] = row_signatures
        identical = len(set(row_signatures)) == 1
        print(f"  -> identical across the three schemas: {identical}")
        print()

    distinct = {sigs[0] for sigs in signatures.values()}
    print(f"The three patterns are mutually distinct: {len(distinct) == 3}")
    print()

    print("Fig. 24 — three syntactic variants of 'only red boats':")
    diagrams = [queryvis(sql) for sql in FIG24_VARIANTS]
    all_same = all(same_pattern(diagrams[0], other) for other in diagrams[1:])
    print(f"  all three variants map to the same diagram: {all_same}")
    print()
    print("Diagram of the 'only' pattern on the sailors schema:")
    print(diagram_to_text(diagrams[0]))


if __name__ == "__main__":
    main()
