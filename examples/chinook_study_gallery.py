#!/usr/bin/env python3
"""Render every user-study stimulus over the Chinook schema.

The study (Section 6.1, Appendices D–F) used 6 qualification questions and 12
test questions, all over the Chinook digital-media-store schema.  This script
parses each of them, builds its QueryVis diagram, verifies the diagram is
structurally valid, and writes SVG + DOT renderings into
``examples/gallery_output/`` — roughly the artefact a study designer would
hand to participants in the QV and Both conditions.
"""

from __future__ import annotations

from pathlib import Path

from repro import queryvis
from repro.diagram import diagram_metrics, validate_diagram
from repro.render import diagram_to_dot, diagram_to_svg, diagram_summary
from repro.study import qualification_questions, study_schema, test_questions


def main() -> None:
    output_dir = Path(__file__).resolve().parent / "gallery_output"
    output_dir.mkdir(exist_ok=True)
    schema = study_schema()

    print(f"{'question':<10} {'category':<12} {'tables':>6} {'edges':>6} "
          f"{'boxes':>6} {'elements':>9}")
    for question in test_questions():
        diagram = queryvis(question.sql, schema=schema)
        validate_diagram(diagram)
        metrics = diagram_metrics(diagram)
        print(
            f"{question.question_id:<10} {question.category.value:<12} "
            f"{len(diagram.data_tables()):>6} {len(diagram.edges):>6} "
            f"{len(diagram.boxes):>6} {metrics.element_count:>9}"
        )
        stem = output_dir / question.question_id.lower()
        stem.with_suffix(".svg").write_text(diagram_to_svg(diagram))
        stem.with_suffix(".dot").write_text(diagram_to_dot(diagram))

    print()
    print("Qualification exam (Appendix D):")
    for question in qualification_questions():
        diagram = queryvis(question.sql, schema=schema)
        validate_diagram(diagram)
        print(f"  {question.question_id}: {diagram_summary(diagram)}")
        stem = output_dir / question.question_id.lower()
        stem.with_suffix(".svg").write_text(diagram_to_svg(diagram))
        stem.with_suffix(".dot").write_text(diagram_to_dot(diagram))

    print()
    print(f"Wrote renderings for all 18 stimuli into {output_dir}")


if __name__ == "__main__":
    main()
