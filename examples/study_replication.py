#!/usr/bin/env python3
"""Replicate the user study end to end (Section 6, Figs. 7 and 18–21).

The script simulates the full worker population (80 workers including
speeders and cheaters), applies the exclusion filter of Fig. 18, runs the
pre-registered analysis — per-participant condition means, one-tailed
Wilcoxon signed-rank tests, Benjamini–Hochberg adjustment, BCa bootstrap
confidence intervals — on the 9 non-GROUP BY questions (Fig. 7) and on all 12
questions (Fig. 19), and prints the per-participant difference summaries of
Figs. 20/21.  It also reproduces the power analysis that sized the study.
"""

from __future__ import annotations

from repro.stats import required_sample_size
from repro.study import (
    analyze_study,
    apply_exclusion,
    exclusion_accuracy,
    format_fig7,
    format_fig18,
    format_participant_deltas,
    legitimate_responses,
    questions_without_grouping,
    simulate_study,
)


def main() -> None:
    study = simulate_study()
    exclusion = apply_exclusion(study)
    print(format_fig18(exclusion).splitlines()[2])  # the headline counts
    print(
        f"exclusion filter agrees with ground truth for "
        f"{exclusion_accuracy(study, exclusion):.0%} of workers"
    )
    print()

    responses = legitimate_responses(study, exclusion)
    nine_ids = {q.question_id for q in questions_without_grouping()}
    responses_9 = [r for r in responses if r.question_id in nine_ids]

    results_9 = analyze_study(responses_9)
    print(format_fig7(results_9, title="Fig. 7 — 9 questions (no GROUP BY)"))
    print()
    print(format_participant_deltas(results_9, title="Fig. 20 — per-participant deltas (9 questions)"))
    print()

    results_12 = analyze_study(responses)
    print(format_fig7(results_12, title="Fig. 19 — all 12 questions (incl. GROUP BY)"))
    print()
    print(format_participant_deltas(results_12, title="Fig. 21 — per-participant deltas (12 questions)"))
    print()

    # Power analysis (Section 6.2): pilot means and SD → required sample size.
    pilot_sql_mean, pilot_qv_mean, pilot_sd = 95.0, 76.0, 52.0
    power = required_sample_size(pilot_qv_mean, pilot_sql_mean, pilot_sd)
    print(
        f"Power analysis: effect size d = {power.effect_size:.2f} → "
        f"n = {power.n_per_group} per comparison, rounded to {power.n_rounded} "
        f"(the paper reports n = 84; only 42 legitimate workers could be recruited)"
    )


if __name__ == "__main__":
    main()
