#!/usr/bin/env python3
"""Quickstart: turn one SQL query into a QueryVis diagram.

Runs the full pipeline on Q_only from Fig. 3b of the paper ("find persons who
frequent some bar that serves only drinks they like"), printing every
intermediate representation: the parsed/canonical SQL, the Logic Tree, the
tuple-relational-calculus expression, the diagram in text form, and finally
writing DOT and SVG renderings next to this script.
"""

from __future__ import annotations

from pathlib import Path

from repro import queryvis
from repro.logic import logic_tree_to_trc, simplify_logic_tree, sql_to_logic_tree
from repro.render import diagram_to_dot, diagram_to_svg, diagram_to_text
from repro.sql import format_query, parse

Q_ONLY = """
SELECT F.person
FROM Frequents F
WHERE NOT EXISTS
   (SELECT *
    FROM Serves S
    WHERE S.bar = F.bar
    AND NOT EXISTS
       (SELECT L.drink
        FROM Likes L
        WHERE L.person = F.person
        AND S.drink = L.drink))
"""


def main() -> None:
    query = parse(Q_ONLY)
    print("Canonical SQL (as shown to study participants):")
    print(format_query(query))
    print()

    tree = sql_to_logic_tree(query)
    print("Logic Tree (Fig. 5-style):")
    print(tree.describe())
    print()

    print("Tuple relational calculus (Fig. 9-style):")
    print(logic_tree_to_trc(tree).text)
    print()

    simplified = simplify_logic_tree(tree)
    print("Logic Tree after the ∄∄ → ∀∃ simplification (Fig. 10b-style):")
    print(simplified.describe())
    print()

    diagram = queryvis(Q_ONLY)  # simplified by default → Fig. 2c
    print("QueryVis diagram (text rendering):")
    print(diagram_to_text(diagram))

    output_dir = Path(__file__).resolve().parent
    (output_dir / "quickstart_qonly.dot").write_text(diagram_to_dot(diagram))
    (output_dir / "quickstart_qonly.svg").write_text(diagram_to_svg(diagram))
    print()
    print(f"Wrote {output_dir / 'quickstart_qonly.dot'} and quickstart_qonly.svg")


if __name__ == "__main__":
    main()
