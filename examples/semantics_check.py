#!/usr/bin/env python3
"""Semantics preservation: SQL execution vs Logic Tree evaluation.

The QueryVis pipeline claims that its Logic Tree (and the ∄∄ → ∀∃
simplification) captures exactly the meaning of the SQL query.  This example
demonstrates the claim operationally: it runs the sailor/boat pattern queries
(Fig. 23) and a batch of randomly generated non-degenerate queries both
through the SQL executor and through the first-order-logic evaluation of
their Logic Trees over the same in-memory database, and checks that the
result sets are identical — including after simplification.
"""

from __future__ import annotations

from repro.catalog import sailors_schema
from repro.logic import evaluate_logic_tree, simplify_logic_tree, sql_to_logic_tree
from repro.relational import execute
from repro.sql import format_inline, parse
from repro.workloads import QueryGenConfig, QueryGenerator, sailors_database

FIG23_QUERIES = {
    "no red boats": """
SELECT S.sname FROM Sailor S
WHERE NOT EXISTS(
    SELECT * FROM Reserves R WHERE R.sid = S.sid
    AND EXISTS(SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))
""",
    "only red boats": """
SELECT S.sname FROM Sailor S
WHERE NOT EXISTS(
    SELECT * FROM Reserves R WHERE R.sid = S.sid
    AND NOT EXISTS(SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))
""",
    "all red boats": """
SELECT S.sname FROM Sailor S
WHERE NOT EXISTS(
    SELECT * FROM Boat B WHERE B.color = 'red'
    AND NOT EXISTS(SELECT * FROM Reserves R WHERE R.bid = B.bid AND R.sid = S.sid))
""",
}


def main() -> None:
    database = sailors_database()
    print("Fig. 23 pattern queries on a random sailors database:")
    for label, sql in FIG23_QUERIES.items():
        query = parse(sql)
        sql_result = execute(query, database).as_set()
        tree = sql_to_logic_tree(query)
        lt_result = evaluate_logic_tree(tree, database).as_set()
        simplified_result = evaluate_logic_tree(simplify_logic_tree(tree), database).as_set()
        agree = sql_result == lt_result == simplified_result
        names = sorted(row[0] for row in sql_result)
        print(f"  {label:<16} {len(sql_result):>2} sailors {names}  — SQL ≡ LT ≡ ∀-LT: {agree}")

    print()
    generator = QueryGenerator(sailors_schema(), QueryGenConfig(max_depth=2))
    agreements = 0
    total = 40
    for seed in range(total):
        query = generator.generate(seed)
        sql_result = execute(query, database).as_set()
        tree = sql_to_logic_tree(query)
        lt_result = evaluate_logic_tree(tree, database).as_set()
        simplified_result = evaluate_logic_tree(simplify_logic_tree(tree), database).as_set()
        if sql_result == lt_result == simplified_result:
            agreements += 1
        else:  # pragma: no cover - would indicate a pipeline bug
            print("  DISAGREEMENT on:", format_inline(query))
    print(
        f"Random non-degenerate queries: {agreements}/{total} evaluate identically "
        "under SQL execution, Logic Tree evaluation, and simplified-LT evaluation."
    )


if __name__ == "__main__":
    main()
