"""Lightweight table statistics for cardinality-guided planning.

The planner needs two numbers per relation to order joins sensibly: the
row count and, per column, an (approximate) distinct count.  Row counts
are exact and free; distinct counts are exact for small relations and
estimated with a KMV (k-minimum-values) sketch above a threshold, so
collecting statistics stays O(rows) with a small constant even on the
100k-row scaled databases.

Everything here is deterministic: value hashing goes through
:func:`stable_hash` (a salt-free mix) rather than Python's ``hash``, whose
string salting would make distinct estimates — and therefore join orders
and ``EXPLAIN`` output — vary between processes.

Statistics are cached per relation and invalidated by row-count changes,
mirroring the scan cache of :class:`~.executor.ExecutionContext` (treat
relations as append-only while a statistics object is alive).
"""

from __future__ import annotations

import heapq
import zlib

from .database import Database, Relation
from .values import Value

#: Columns at or below this many rows get exact distinct counts (a Python
#: set); longer columns use the KMV sketch, which bounds working memory.
EXACT_DISTINCT_THRESHOLD = 65536

#: Number of minimum hash values kept by the KMV distinct sketch.
KMV_K = 256

#: Selectivity guesses for pushed-down scan predicates, by operator class.
EQUALITY_DEFAULT_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 1.0 / 3.0

_HASH_SPACE = float(1 << 64)
_MASK64 = (1 << 64) - 1


def stable_hash(value: Value) -> int:
    """A process-stable 64-bit hash of an engine value.

    Python's ``hash`` is salted for strings, which would make sketch-based
    estimates differ between interpreter runs.  Numbers are mixed with a
    splitmix64 round so consecutive ids spread over the space; strings go
    through crc32 folded to 64 bits.  ``1`` and ``1.0`` hash alike, which
    matches the engine's comparison semantics (they are equal values).
    """
    if isinstance(value, str):
        data = value.encode("utf-8", "surrogatepass")
        x = zlib.crc32(data) ^ (zlib.crc32(data[::-1]) << 32)
    else:
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if isinstance(value, float):
            x = hash(value) & _MASK64  # float hash is not salted
        else:
            x = value & _MASK64
    # splitmix64 finalizer
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class KMVSketch:
    """K-minimum-values distinct-count sketch.

    Keeps the ``k`` smallest 64-bit hashes seen; the k-th smallest hash
    ``h_k`` estimates the distinct count as ``(k - 1) / (h_k / 2^64)``.
    Exact below ``k`` distinct hashes.  Deterministic given the input
    (hashes come from :func:`stable_hash`).
    """

    __slots__ = ("k", "_heap", "_members")

    def __init__(self, k: int = KMV_K) -> None:
        self.k = k
        self._heap: list[int] = []  # max-heap via negated hashes
        self._members: set[int] = set()

    def add(self, value: Value) -> None:
        self.add_hash(stable_hash(value))

    def add_hash(self, h: int) -> None:
        if h in self._members:
            return
        if len(self._heap) < self.k:
            self._members.add(h)
            heapq.heappush(self._heap, -h)
        elif h < -self._heap[0]:
            self._members.add(h)
            self._members.discard(-heapq.heappushpop(self._heap, -h))

    def estimate(self) -> int:
        n = len(self._heap)
        if n < self.k:
            return n  # saw fewer than k distinct hashes: exact
        h_k = -self._heap[0]
        if h_k == 0:
            return n
        return max(n, int(round((self.k - 1) / (h_k / _HASH_SPACE))))


def distinct_count(values: list[Value], exact_threshold: int = EXACT_DISTINCT_THRESHOLD) -> int:
    """Distinct count of ``values``: exact when small, KMV-estimated when big."""
    if len(values) <= exact_threshold:
        return len(set(values))
    sketch = KMVSketch()
    for value in values:
        sketch.add(value)
    return sketch.estimate()


class TableStats:
    """Statistics of one relation at one row-count version.

    The row count is captured eagerly (it is free); per-column distinct
    counts are computed on first request and cached — the planner only
    ever asks about join keys and filtered columns, so wide tables never
    pay for sketching columns no query touches.
    """

    __slots__ = ("name", "row_count", "_relation", "_distinct")

    def __init__(self, relation: Relation) -> None:
        self.name = relation.name
        self.row_count = len(relation.rows)
        self._relation = relation
        self._distinct: dict[str, int] = {}

    @property
    def distinct(self) -> dict[str, int]:
        """The distinct counts computed so far (lower-cased column keys)."""
        return dict(self._distinct)

    def distinct_of(self, column: str) -> int:
        """(Estimated) distinct count of ``column``, case-insensitive, floor 1."""
        lowered = column.lower()
        cached = self._distinct.get(lowered)
        if cached is not None:
            return cached
        key = next(
            (c for c in self._relation.columns if c.lower() == lowered), None
        )
        if key is None:
            return max(1, self.row_count)
        values = [row[key] for row in self._relation.rows]
        estimate = max(1, distinct_count(values)) if values else 1
        self._distinct[lowered] = estimate
        return estimate


class CatalogStatistics:
    """Per-relation statistics with row-count invalidation.

    One instance is shared by a planner (join ordering) and its execution
    context; statistics are collected lazily per referenced column and
    cached until the relation grows.
    """

    def __init__(self, database: Database) -> None:
        self._db = database
        self._cache: dict[str, tuple[int, TableStats]] = {}

    def table(self, table_name: str) -> TableStats:
        relation = self._db.relation(table_name)
        return self.for_relation(relation)

    def for_relation(self, relation: Relation) -> TableStats:
        key = relation.name.lower()
        count = len(relation.rows)
        cached = self._cache.get(key)
        if cached is not None and cached[0] == count:
            return cached[1]
        stats = TableStats(relation)
        self._cache[key] = (count, stats)
        return stats
