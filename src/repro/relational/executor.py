"""SQL executor for the supported fragment.

The executor evaluates a :class:`~repro.sql.ast.SelectQuery` over a
:class:`~repro.relational.database.Database`.  :class:`ExecutionMode`
selects one of the pluggable engines registered with
:mod:`repro.relational.backends`:

* ``PLANNED`` (default) — the query is compiled by
  :mod:`repro.relational.planner` into a logical plan (predicate pushdown,
  hash equi-joins, semi-/anti-joins for decorrelated ``[NOT] IN``, memoized
  correlated subqueries) and the plan is interpreted as a pipeline of
  generators over flat row tuples.  Lives in this module.
* ``COLUMNAR`` — the same compiled plan interpreted batch-at-a-time by the
  vectorized backend (:mod:`repro.relational.columnar`): column-major
  storage, selection-vector filters, cardinality-chosen hash-join build
  sides.  Fastest on large databases; results are identical sets.
* ``SQL`` — the plan lowered to parameterized SQL text and executed on
  stdlib ``sqlite3`` (:mod:`repro.relational.sqlbackend`): an
  *independent* engine implementation, which is what gives the
  differential suite real adversarial power.
* ``NAIVE`` — the original nested-loop reference semantics: the FROM clause
  enumerates the cartesian product of its tables; WHERE predicates are
  evaluated per combination, with correlated subqueries receiving the outer
  bindings through an environment of scopes.  This path is kept as the
  ground-truth oracle for differential testing of the planner.

All modes implement the same fragment: ``EXISTS`` / ``IN`` / ``ANY`` /
``ALL`` follow standard SQL semantics restricted to 2-valued logic (no
NULLs); the result uses *set semantics* (duplicate result tuples are
collapsed) unless the query carries aggregates, in which case GROUP BY
semantics apply (Appendix C.3 extension).  The modes return identical
``as_set()`` results; only the tuple enumeration order may differ
(documented edge divergences live in ``docs/sql_backend.md``).

Compiled plans, materialized scans, subquery results and per-backend state
are cached on an :class:`ExecutionContext`, which can be shared across many
queries — see :mod:`repro.relational.batch` for the batch pipeline built on
top.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from itertools import islice
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .columnar import ColumnarTable

from ..sql.ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Exists,
    InSubquery,
    Literal,
    Predicate,
    QuantifiedComparison,
    SelectQuery,
    Star,
)
from ..faults import fault_point
from .aggregates import apply_aggregate
from .backends import ExecutionBackend, backend_for, register_backend, with_fallback
from .database import Database, Relation, Row
from .errors import (
    AmbiguousColumnError,
    EngineError,
    TypeMismatchError,
    UnknownColumnError,
)
from .plan import (
    Aggregate,
    AntiJoin,
    BlockPlan,
    Col,
    CompiledComparison,
    Const,
    Distinct,
    Filter,
    HashJoin,
    NestedLoopJoin,
    PlanNode,
    Project,
    ScalarExpr,
    Scan,
    SemiJoin,
    SubqueryPred,
    TopK,
)
from .planner import Planner
from .resolve import match_column as _match_column
from .resolve import matches_group_key, order_key_position, result_columns
from .values import OrderKey, Value, compare


class ExecutionMode(enum.Enum):
    """How queries are evaluated: rows, columnar, lowered SQL or the oracle."""

    NAIVE = "naive"
    PLANNED = "planned"
    COLUMNAR = "columnar"
    SQL = "sql"


@dataclass(frozen=True, slots=True)
class ResultSet:
    """The result of executing a query: column labels plus result rows."""

    columns: tuple[str, ...]
    rows: tuple[tuple[Value, ...], ...]
    #: Cache for :meth:`as_set`.  A real (non-init, non-compare) field so
    #: the cache works with ``slots=True`` and never leaks into equality
    #: or repr; writes go through ``object.__setattr__`` because the
    #: dataclass is frozen.
    _row_set: frozenset | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def as_set(self) -> frozenset[tuple[Value, ...]]:
        """The rows as a set (the comparison used in equivalence checks).

        The frozenset is computed once and cached, so repeated equivalence
        checks and ``in`` tests don't rebuild it.
        """
        cached = self._row_set
        if cached is None:
            cached = frozenset(self.rows)
            object.__setattr__(self, "_row_set", cached)
        return cached

    def __reduce__(self):
        # Pickle only the payload: the cache is derivable, and dropping it
        # keeps persisted results (e.g. the batch disk cache) compact and
        # independent of whether as_set() happened to have been called.
        return (type(self), (self.columns, self.rows))

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: tuple[Value, ...]) -> bool:
        # Set semantics: containment is membership in the row *set*, not a
        # linear scan of the tuple (the two agree because rows are deduped,
        # but the set probe is O(1)).
        return row in self.as_set()


# ---------------------------------------------------------------------- #
# shared execution context (caches + statistics)
# ---------------------------------------------------------------------- #


@dataclass
class ExecutionStats:
    """Counters for the context's caches (useful for batch diagnostics)."""

    plan_hits: int = 0
    plan_misses: int = 0
    subquery_hits: int = 0
    subquery_misses: int = 0
    scan_hits: int = 0
    scan_misses: int = 0
    # SQL backend: in-memory store (re)builds and lowering-cache traffic.
    sql_store_builds: int = 0
    sql_lower_hits: int = 0
    sql_lower_misses: int = 0
    # Ranked output: rows consumed by TopK operators vs the peak number of
    # rows any single TopK kept resident.  The gap between the two is the
    # non-materialization guarantee — a bounded-heap `LIMIT 10` over a
    # million-row join shows topk_input_rows in the millions while
    # topk_held_rows stays at 10.
    topk_input_rows: int = 0
    topk_held_rows: int = 0
    # Graceful degradation (only moves under a FallbackBackend): queries
    # re-executed on the fallback engine, executions that skipped a
    # primary outright because its breaker was open, and the last
    # observed breaker state per wrapped engine.
    fallbacks: int = 0
    breaker_skips: int = 0
    breaker_state: dict[str, str] = field(default_factory=dict)

    def snapshot(self) -> dict[str, int]:
        return {
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "subquery_hits": self.subquery_hits,
            "subquery_misses": self.subquery_misses,
            "scan_hits": self.scan_hits,
            "scan_misses": self.scan_misses,
            "sql_store_builds": self.sql_store_builds,
            "sql_lower_hits": self.sql_lower_hits,
            "sql_lower_misses": self.sql_lower_misses,
            "topk_input_rows": self.topk_input_rows,
            "topk_held_rows": self.topk_held_rows,
            "fallbacks": self.fallbacks,
            "breaker_skips": self.breaker_skips,
        }


class ExecutionContext:
    """Caches shared by planned executions over one database.

    * **plan cache** — query AST → compiled :class:`~.plan.BlockPlan`;
    * **scan cache** — materialized row tuples per relation (invalidated by
      row-count changes, i.e. inserts);
    * **subquery cache** — subquery AST + parameter values → result, shared
      across queries so a batch re-evaluates each distinct subquery once;
    * **backend state** — one opaque bucket per registered backend (the SQL
      backend's sqlite store + lowering cache live here), invalidated with
      the data-dependent caches on every version bump.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self.stats = ExecutionStats()
        self._planner = Planner(database)
        self._plans: dict[SelectQuery, BlockPlan] = {}
        self._scans: dict[str, tuple[int, list[tuple[Value, ...]]]] = {}
        self._columnar: dict[str, tuple[int, "ColumnarTable"]] = {}
        self._subqueries: dict[tuple, object] = {}
        self._backend_state: dict[str, object] = {}
        self._version = database.total_rows()

    def refresh(self) -> None:
        """Drop data-dependent caches if the database grew since last use.

        Called at every top-level execution.  Versioning is by total row
        count, so plain inserts invalidate naturally; in-place mutation of
        existing rows is not detected (treat relations as append-only while
        a context is alive).  Plans are invalidated too: join orders are
        cardinality-guided, so a plan compiled against yesterday's row
        counts may be arbitrarily bad against today's.
        """
        version = self.database.total_rows()
        if version != self._version:
            self._version = version
            self._plans.clear()
            self._scans.clear()
            self._columnar.clear()
            self._subqueries.clear()
            self._backend_state.clear()

    def backend_state(self, key: str, factory: Callable[[], object]) -> object:
        """Per-backend state bucket, dropped whenever the database grows.

        ``key`` namespaces one backend (conventionally its mode value);
        ``factory`` builds the initial state on first use after any
        invalidation.  This is the generic version of the ``_columnar``
        table cache: backends park anything derived from the data here and
        inherit the same version-bump invalidation.
        """
        state = self._backend_state.get(key)
        if state is None:
            state = factory()
            self._backend_state[key] = state
        return state

    # -- plans ---------------------------------------------------------- #

    def plan(self, query: SelectQuery) -> BlockPlan:
        plan = self._plans.get(query)
        if plan is None:
            self.stats.plan_misses += 1
            plan = self._planner.plan(query)
            self._plans[query] = plan
        else:
            self.stats.plan_hits += 1
        return plan

    # -- scans ---------------------------------------------------------- #

    def scan_rows(self, relation: Relation) -> list[tuple[Value, ...]]:
        """Rows of ``relation`` as flat tuples, memoized per row count."""
        key = relation.name.lower()
        count = len(relation.rows)
        cached = self._scans.get(key)
        if cached is not None and cached[0] == count:
            self.stats.scan_hits += 1
            return cached[1]
        self.stats.scan_misses += 1
        columns = relation.columns
        rows = [tuple(row[c] for c in columns) for row in relation.rows]
        self._scans[key] = (count, rows)
        return rows

    def columnar_table(self, relation: Relation) -> "ColumnarTable":
        """The relation loaded column-major, memoized per row count."""
        key = relation.name.lower()
        count = len(relation.rows)
        cached = self._columnar.get(key)
        if cached is not None and cached[0] == count:
            self.stats.scan_hits += 1
            return cached[1]
        from .columnar import ColumnarTable

        self.stats.scan_misses += 1
        table = ColumnarTable.from_relation(relation)
        self._columnar[key] = (count, table)
        return table

    # -- subqueries ------------------------------------------------------ #
    #
    # ``runner`` evaluates a block plan's operator tree and returns its row
    # tuples; ``None`` selects the row pipeline.  The columnar backend
    # passes its own runner so nested blocks run columnar too.  Results are
    # engine-independent (the differential suite asserts it), so both
    # engines safely share one memo table.

    def _run_subplan(self, plan: BlockPlan, params: tuple, runner) -> Iterator[tuple]:
        if runner is None:
            return _iter_node(plan.root, self, params)
        return iter(runner(plan, self, params))

    def subquery_exists(
        self,
        plan: BlockPlan,
        params: tuple[Value, ...],
        runner: Callable[..., list[tuple]] | None = None,
    ) -> bool:
        key = (*plan.cache_key, params, "exists")
        cached = self._subqueries.get(key)
        if cached is None:
            self.stats.subquery_misses += 1
            if _prechecks_pass(plan, self, params):
                cached = next(self._run_subplan(plan, params, runner), None) is not None
            else:
                cached = False
            self._subqueries[key] = cached
        else:
            self.stats.subquery_hits += 1
        return cached

    def subquery_values(
        self,
        plan: BlockPlan,
        params: tuple[Value, ...],
        runner: Callable[..., list[tuple]] | None = None,
    ) -> "_SubqueryValues":
        key = (*plan.cache_key, params, "values")
        cached = self._subqueries.get(key)
        if cached is None:
            self.stats.subquery_misses += 1
            if _prechecks_pass(plan, self, params):
                values = tuple(
                    row[0] for row in self._run_subplan(plan, params, runner)
                )
            else:
                values = ()
            cached = _SubqueryValues(values)
            self._subqueries[key] = cached
        else:
            self.stats.subquery_hits += 1
        return cached


class _SubqueryValues:
    """Materialized single-column subquery result with probe fast paths.

    The value family is classified once on construction: ``"num"``,
    ``"str"``, ``"mixed"`` (both families present) or ``"empty"``.  Probing
    a non-empty result with a value of the other family, or probing a
    mixed-family result with anything, raises
    :class:`~.errors.TypeMismatchError` *deterministically* — the check is
    up-front and order-independent, instead of relying on a comparison loop
    whose short-circuit point (and therefore whether it raises at all)
    would depend on the engine-specific enumeration order of the subquery.
    With the family validated, the set/min/max fast paths are always safe.
    """

    __slots__ = ("values", "family", "_set", "_min", "_max")

    def __init__(self, values: tuple[Value, ...]) -> None:
        self.values = values
        families = {_family(v) for v in values}
        if not families:
            self.family = "empty"
        elif len(families) == 1:
            self.family = families.pop()
        else:
            self.family = "mixed"
        self._set: frozenset | None = None
        self._min: Value | None = None
        self._max: Value | None = None

    def _check(self, value: Value) -> None:
        """Validate the probe's family (values are known non-empty here)."""
        if self.family == "mixed":
            raise TypeMismatchError(
                "subquery result mixes string and numeric values; "
                "comparing against it is not well-typed"
            )
        if _family(value) != self.family:
            raise TypeMismatchError(
                f"cannot compare {type(value).__name__} with the subquery's "
                f"{self.family} values"
            )

    def as_set(self) -> frozenset:
        if self._set is None:
            self._set = frozenset(self.values)
        return self._set

    def _bounds(self) -> tuple[Value, Value]:
        if self._min is None:
            if self.family not in ("num", "str"):  # pragma: no cover - guarded
                raise TypeMismatchError(
                    "min/max of a mixed-type subquery result is undefined"
                )
            self._min = min(self.values)
            self._max = max(self.values)
        return self._min, self._max

    def contains(self, value: Value) -> bool:
        """``value = ANY(values)`` — the IN membership check."""
        if not self.values:
            return False
        self._check(value)
        return value in self.as_set()

    def quantified(self, value: Value, op: str, quantifier: str) -> bool:
        """``value op ANY/ALL (values)`` with min/max shortcuts."""
        if not self.values:
            return quantifier == "ALL"
        self._check(value)
        lo, hi = self._bounds()
        if quantifier == "ANY":
            if op == "=":
                return value in self.as_set()
            if op == "<>":
                members = self.as_set()
                return len(members) > 1 or value not in members
            if op == "<":
                return value < hi
            if op == "<=":
                return value <= hi
            if op == ">":
                return value > lo
            return value >= lo  # ">="
        # ALL
        if op == "=":
            return self.as_set() == {value}
        if op == "<>":
            return value not in self.as_set()
        if op == "<":
            return value < lo
        if op == "<=":
            return value <= lo
        if op == ">":
            return value > hi
        return value >= hi  # ">="


def _family(value: Value) -> str:
    return "num" if isinstance(value, (int, float)) else "str"


# ---------------------------------------------------------------------- #
# plan interpretation: generator pipelines over flat row tuples
# ---------------------------------------------------------------------- #


def _eval_expr(expr: ScalarExpr, row: tuple, params: tuple) -> Value:
    if type(expr) is Col:
        return row[expr.slot]
    if type(expr) is Const:
        return expr.value
    return params[expr.index]


def _eval_pred(pred, row: tuple, params: tuple, context: ExecutionContext) -> bool:
    if type(pred) is CompiledComparison:
        return compare(
            _eval_expr(pred.left, row, params),
            pred.op,
            _eval_expr(pred.right, row, params),
        )
    return _eval_subquery_pred(pred, row, params, context)


def _eval_subquery_pred(
    pred: SubqueryPred, row: tuple, params: tuple, context: ExecutionContext
) -> bool:
    actual = tuple(_eval_expr(e, row, params) for e in pred.param_exprs)
    if pred.kind == "exists":
        found = context.subquery_exists(pred.plan, actual)
        return not found if pred.negated else found
    value = _eval_expr(pred.value_expr, row, params)
    values = context.subquery_values(pred.plan, actual)
    if pred.kind == "in":
        found = values.contains(value)
        return not found if pred.negated else found
    holds = values.quantified(value, pred.op, pred.quantifier)
    return not holds if pred.negated else holds


def _prechecks_pass(
    plan: BlockPlan, context: ExecutionContext, params: tuple
) -> bool:
    return all(_eval_pred(p, (), params, context) for p in plan.prechecks)


def _iter_node(
    node: PlanNode, context: ExecutionContext, params: tuple
) -> Iterator[tuple]:
    handler = _NODE_HANDLERS.get(type(node))
    if handler is None:
        raise EngineError(f"unsupported plan node: {type(node).__name__}")
    return handler(node, context, params)


def _iter_scan(node: Scan, context: ExecutionContext, params: tuple) -> Iterator[tuple]:
    yield from context.scan_rows(context.database.relation(node.table))


def _iter_filter(
    node: Filter, context: ExecutionContext, params: tuple
) -> Iterator[tuple]:
    predicates = node.predicates
    for row in _iter_node(node.child, context, params):
        if all(_eval_pred(p, row, params, context) for p in predicates):
            yield row


def _iter_hash_join(
    node: HashJoin, context: ExecutionContext, params: tuple
) -> Iterator[tuple]:
    build: dict[tuple, list[tuple]] = {}
    key_families: list[set[str]] = [set() for _ in node.right_keys]
    for right_row in _iter_node(node.right, context, params):
        key = tuple(_eval_expr(e, right_row, params) for e in node.right_keys)
        for index, value in enumerate(key):
            key_families[index].add(_family(value))
        build.setdefault(key, []).append(right_row)
    if not build:
        return
    left_keys = node.left_keys
    for left_row in _iter_node(node.left, context, params):
        key = tuple(_eval_expr(e, left_row, params) for e in left_keys)
        for index, value in enumerate(key):
            families = key_families[index]
            # Mirror the naive executor: comparing a string column with a
            # numeric one is a type error, not an empty join.
            if len(families) > 1 or _family(value) not in families:
                raise TypeMismatchError(
                    f"cannot compare {type(value).__name__} with "
                    f"values of join key {node.right_keys[index]}"
                )
        matches = build.get(key)
        if matches:
            for right_row in matches:
                yield left_row + right_row


def _iter_nested_loop(
    node: NestedLoopJoin, context: ExecutionContext, params: tuple
) -> Iterator[tuple]:
    right_rows = list(_iter_node(node.right, context, params))
    if not right_rows:
        return
    predicates = node.predicates
    for left_row in _iter_node(node.left, context, params):
        for right_row in right_rows:
            row = left_row + right_row
            if all(_eval_pred(p, row, params, context) for p in predicates):
                yield row


def _iter_semi_join(
    node: SemiJoin, context: ExecutionContext, params: tuple
) -> Iterator[tuple]:
    # The subquery is uncorrelated with this block: its parameters depend
    # only on enclosing blocks, so the membership set is built exactly once.
    actual = tuple(_eval_expr(e, (), params) for e in node.param_exprs)
    values = context.subquery_values(node.plan, actual)
    anti = type(node) is AntiJoin
    probe = node.probe
    for row in _iter_node(node.child, context, params):
        if values.contains(_eval_expr(probe, row, params)) != anti:
            yield row


def _iter_project(
    node: Project, context: ExecutionContext, params: tuple
) -> Iterator[tuple]:
    exprs = node.exprs
    for row in _iter_node(node.child, context, params):
        yield tuple(_eval_expr(e, row, params) for e in exprs)


def _iter_distinct(
    node: Distinct, context: ExecutionContext, params: tuple
) -> Iterator[tuple]:
    seen: set[tuple] = set()
    for row in _iter_node(node.child, context, params):
        if row not in seen:
            seen.add(row)
            yield row


def _iter_aggregate(
    node: Aggregate, context: ExecutionContext, params: tuple
) -> Iterator[tuple]:
    groups: dict[tuple, list[tuple]] = {}
    order: list[tuple] = []
    for row in _iter_node(node.child, context, params):
        key = tuple(_eval_expr(e, row, params) for e in node.group_exprs)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [row]
            order.append(key)
        else:
            bucket.append(row)
    for key in order:
        rows = groups[key]
        out: list[Value] = []
        for item in node.items:
            if item[0] == "col":
                out.append(_eval_expr(item[1], rows[0], params))
            else:
                _, func, expr = item
                if expr is None:
                    out.append(apply_aggregate("COUNT", [1] * len(rows)))
                else:
                    out.append(
                        apply_aggregate(func, [_eval_expr(expr, r, params) for r in rows])
                    )
        yield tuple(out)


class _ReverseRanked:
    """Heap entry whose ordering is reversed, turning heapq into a max-heap.

    ``heap[0]`` is then the *worst* of the resident top-k rows — exactly the
    row a strictly better candidate should evict.
    """

    __slots__ = ("key", "row")

    def __init__(self, key: OrderKey, row: tuple) -> None:
        self.key = key
        self.row = row

    def __lt__(self, other: "_ReverseRanked") -> bool:
        return other.key < self.key


def _topk_distinct_heap(
    rows: Iterator[tuple], sort_key, cutoff: int, stats: ExecutionStats
) -> list[tuple]:
    """Top ``cutoff`` *distinct* rows holding at most ``cutoff`` resident.

    Duplicates of resident rows are skipped via the ``members`` set; a
    non-resident row evicts the current worst only when strictly better.
    An evicted row's duplicates can never re-enter: the heap's worst key
    only ever improves, and equal keys do not evict — so a duplicate of an
    evicted row always compares >= the current worst and is skipped.  Rows
    tied at the boundary are chosen arbitrarily, which only ever truncates
    the final tie group of the output (the contract a LIMIT implies).
    """
    heap: list[_ReverseRanked] = []
    members: set[tuple] = set()
    for row in rows:
        if row in members:
            continue
        key = sort_key(row)
        if len(heap) < cutoff:
            heapq.heappush(heap, _ReverseRanked(key, row))
            members.add(row)
        elif key < heap[0].key:
            members.discard(heap[0].row)
            heapq.heapreplace(heap, _ReverseRanked(key, row))
            members.add(row)
    stats.topk_held_rows = max(stats.topk_held_rows, len(heap))
    return [entry.row for entry in sorted(heap, key=lambda entry: entry.key)]


def _iter_topk(
    node: TopK, context: ExecutionContext, params: tuple
) -> Iterator[tuple]:
    """Ranked output without materializing beyond the cutoff.

    Three shapes, cheapest first:

    * **key-less LIMIT** — a lazy ``islice`` over the child generator; the
      pipeline stops pulling rows the moment the slice is satisfied, so a
      ``LIMIT 10`` over a huge join does bounded work end to end;
    * **heap strategy** — a bounded heap keyed by
      :class:`~.values.OrderKey`: the whole child is consumed (ordering
      needs every candidate) but at most ``limit + offset`` rows are ever
      resident;
    * **sort strategy** — full sort then slice, chosen by the planner when
      the cutoff would swallow most of the estimated input anyway (or when
      there is no LIMIT at all).

    When the planner fused a Distinct into the node (``node.distinct``),
    the key-less path dedups lazily (the seen-set is bounded by the
    cutoff thanks to islice's early exit), the heap path runs the bounded
    distinct heap of :func:`_topk_distinct_heap`, and the sort path dedups
    before sorting.
    """
    stats = context.stats
    child = _iter_node(node.child, context, params)

    def counted(rows: Iterator[tuple]) -> Iterator[tuple]:
        for row in rows:
            stats.topk_input_rows += 1
            yield row

    def deduped(rows: Iterator[tuple]) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in rows:
            if row not in seen:
                seen.add(row)
                yield row

    limit, offset = node.limit, node.offset
    if not node.keys:
        if limit is None:  # pragma: no cover - planner never emits this
            yield from counted(child)
            return
        # Early exit: islice stops advancing the child once exhausted, so
        # upstream operators never produce rows beyond the cutoff.
        source = counted(child)
        if node.distinct:
            source = deduped(source)
        yield from islice(source, offset, offset + limit)
        return

    descending = node.descending
    keys = node.keys

    def sort_key(row: tuple) -> OrderKey:
        return OrderKey(
            tuple(_eval_expr(key, row, params) for key in keys), descending
        )

    if limit is not None and node.strategy == "heap":
        cutoff = limit + offset
        if node.distinct:
            top = _topk_distinct_heap(counted(child), sort_key, cutoff, stats)
        else:
            top = heapq.nsmallest(cutoff, counted(child), key=sort_key)
            stats.topk_held_rows = max(stats.topk_held_rows, len(top))
        yield from top[offset:]
        return
    source = counted(child)
    if node.distinct:
        source = deduped(source)
    rows = sorted(source, key=sort_key)
    stats.topk_held_rows = max(stats.topk_held_rows, len(rows))
    if limit is not None:
        yield from rows[offset : offset + limit]
    elif offset:  # pragma: no cover - parser requires LIMIT before OFFSET
        yield from rows[offset:]
    else:
        yield from rows


_NODE_HANDLERS = {
    Scan: _iter_scan,
    Filter: _iter_filter,
    HashJoin: _iter_hash_join,
    NestedLoopJoin: _iter_nested_loop,
    SemiJoin: _iter_semi_join,
    AntiJoin: _iter_semi_join,
    Project: _iter_project,
    Distinct: _iter_distinct,
    Aggregate: _iter_aggregate,
    TopK: _iter_topk,
}


def run_block(
    plan: BlockPlan, context: ExecutionContext, params: tuple = ()
) -> ResultSet:
    """Execute a compiled block plan and materialize its result set."""
    if not _prechecks_pass(plan, context, params):
        return ResultSet(columns=plan.columns, rows=())
    rows = tuple(_iter_node(plan.root, context, params))
    return ResultSet(columns=plan.columns, rows=rows)


# ---------------------------------------------------------------------- #
# naive reference execution (the differential-testing oracle)
# ---------------------------------------------------------------------- #


class _Scope:
    """One query block's bindings: alias (lower-cased) -> (relation, row)."""

    def __init__(self) -> None:
        self.bindings: dict[str, tuple[Relation, Row]] = {}

    def bind(self, alias: str, relation: Relation, row: Row) -> None:
        self.bindings[alias.lower()] = (relation, row)


class _Environment:
    """A stack of scopes, innermost last, used to resolve column references."""

    def __init__(self, scopes: Sequence[_Scope] = ()) -> None:
        self._scopes = list(scopes)

    def child(self, scope: _Scope) -> "_Environment":
        return _Environment([*self._scopes, scope])

    def resolve(self, column: ColumnRef) -> Value:
        if column.table is not None:
            return self._resolve_qualified(column)
        return self._resolve_unqualified(column)

    def _resolve_qualified(self, column: ColumnRef) -> Value:
        alias = column.table.lower()
        for scope in reversed(self._scopes):
            binding = scope.bindings.get(alias)
            if binding is None:
                continue
            relation, row = binding
            key = _match_column(relation, column.column)
            if key is None:
                raise UnknownColumnError(
                    f"table {column.table} has no column {column.column!r}"
                )
            return row[key]
        raise UnknownColumnError(f"unknown table alias {column.table!r}")

    def _resolve_unqualified(self, column: ColumnRef) -> Value:
        for scope in reversed(self._scopes):
            matches = []
            for relation, row in scope.bindings.values():
                key = _match_column(relation, column.column)
                if key is not None:
                    matches.append(row[key])
            if len(matches) > 1:
                raise AmbiguousColumnError(
                    f"column {column.column!r} is ambiguous in this scope"
                )
            if matches:
                return matches[0]
        raise UnknownColumnError(f"unknown column {column.column!r}")


class Executor:
    """Evaluates queries of the supported fragment against a database.

    ``mode`` selects the evaluation strategy — dispatched through the
    backend registry (:mod:`repro.relational.backends`), so any registered
    engine is reachable here without this facade naming it; ``context``
    lets callers share plan/subquery caches across executors (see
    :class:`ExecutionContext`).

    ``fallback=True`` wraps the engine in a breaker-guarded
    :class:`~.backends.FallbackBackend`: recoverable engine failures
    (IO faults, sqlite operational errors, injected chaos) re-execute on
    the PLANNED rows engine instead of raising, counted in
    ``context.stats.fallbacks``.  Off by default — differential suites
    need engines that fail loudly (see ``docs/robustness.md``).
    """

    def __init__(
        self,
        database: Database,
        mode: ExecutionMode = ExecutionMode.PLANNED,
        context: ExecutionContext | None = None,
        fallback: bool = False,
    ) -> None:
        self._db = database
        self._mode = mode
        self._context = context if context is not None else ExecutionContext(database)
        self._backend: ExecutionBackend | None = (
            with_fallback(mode) if fallback else None
        )

    @property
    def mode(self) -> ExecutionMode:
        return self._mode

    @property
    def context(self) -> ExecutionContext:
        return self._context

    def execute(self, query: SelectQuery) -> ResultSet:
        """Execute ``query`` and return its result set."""
        backend = self._backend if self._backend is not None else backend_for(self._mode)
        return backend.execute(query, self._context)

    def explain(self, query: SelectQuery) -> str:
        """EXPLAIN-style rendering of the plan the query would execute.

        Backends may append engine-specific detail — the SQL backend adds
        the generated SQL text and its bound parameters.
        """
        return backend_for(self._mode).explain(query, self._context)


class _NaiveInterpreter:
    """The nested-loop reference semantics (the differential oracle)."""

    def __init__(self, database: Database) -> None:
        self._db = database

    def execute(self, query: SelectQuery) -> ResultSet:
        return self._ranked(query, self._project_block(query, _Environment()))

    # ------------------------------------------------------------------ #
    # block evaluation
    # ------------------------------------------------------------------ #

    def _execute_block(self, query: SelectQuery, outer: _Environment) -> ResultSet:
        # Nested blocks feed predicates; ranking them is meaningless under
        # set semantics, and the planner rejects it too — the oracle must
        # agree on what is an error, not only on what results are.
        if query.order_by or query.limit is not None:
            raise EngineError(
                "nested query blocks may not use ORDER BY or LIMIT"
            )
        return self._project_block(query, outer)

    def _project_block(self, query: SelectQuery, outer: _Environment) -> ResultSet:
        matches = list(self._matching_environments(query, outer))
        if query.has_aggregates or query.group_by:
            return self._project_grouped(query, matches)
        return self._project_plain(query, matches)

    def _ranked(self, query: SelectQuery, result: ResultSet) -> ResultSet:
        """ORDER BY / LIMIT reference semantics: one full sort, then slice.

        Deliberately naive — no heap, no partial selection — so the
        differential suite checks the optimized engines against the
        simplest possible implementation of the same contract.
        """
        if not query.order_by and query.limit is None:
            return result
        rows = list(result.rows)
        if query.order_by:
            relations = [
                self._db.relation(table.name) for table in query.from_tables
            ]
            descending = tuple(item.descending for item in query.order_by)
            positions = []
            for item in query.order_by:
                position = order_key_position(item.column, query, relations)
                if position is None:
                    raise EngineError(
                        f"ORDER BY column {item.column} must appear in the "
                        "SELECT list"
                    )
                positions.append(position)
            rows.sort(
                key=lambda row: OrderKey(
                    tuple(row[p] for p in positions), descending
                )
            )
        if query.limit is not None:
            rows = rows[query.offset : query.offset + query.limit]
        return ResultSet(columns=result.columns, rows=tuple(rows))

    def _matching_environments(
        self, query: SelectQuery, outer: _Environment
    ) -> Iterator[_Environment]:
        """Enumerate bindings of the FROM tables that satisfy the WHERE clause.

        The join is a nested loop, but comparison predicates are evaluated as
        soon as every table they reference is bound ("predicate pushdown").
        Without this, the 10-table conjunctive queries of the user study
        (e.g. Q3) would enumerate the full cartesian product.  Subquery
        predicates are evaluated once the whole block is bound.
        """
        relations = [self._db.relation(table.name) for table in query.from_tables]
        aliases = [table.effective_alias for table in query.from_tables]
        local_aliases = {alias.lower() for alias in aliases}
        comparisons = [p for p in query.where if isinstance(p, Comparison)]
        subqueries = [p for p in query.where if not isinstance(p, Comparison)]
        staged: list[list[Comparison]] = [[] for _ in aliases]
        prechecks: list[Comparison] = []
        for predicate in comparisons:
            position = self._pushdown_position(predicate, aliases, local_aliases)
            if position is None:
                prechecks.append(predicate)
            else:
                staged[position].append(predicate)

        if not all(self._evaluate_predicate(p, outer) for p in prechecks):
            return

        def extend(index: int, env: _Environment) -> Iterator[_Environment]:
            if index == len(relations):
                if all(self._evaluate_predicate(p, env) for p in subqueries):
                    yield env
                return
            relation = relations[index]
            alias = aliases[index]
            for row in relation.rows:
                scope = _Scope()
                scope.bind(alias, relation, row)
                candidate = env.child(scope)
                if all(self._evaluate_predicate(p, candidate) for p in staged[index]):
                    yield from extend(index + 1, candidate)

        yield from extend(0, outer)

    @staticmethod
    def _pushdown_position(
        predicate: Comparison, aliases: list[str], local_aliases: set[str]
    ) -> int | None:
        """Earliest FROM position after which ``predicate`` can be evaluated.

        Returns ``None`` when the predicate only references outer tables (it
        can be checked before binding anything locally).  Unqualified column
        references are conservatively deferred to the last position.
        """
        last_required = None
        for operand in (predicate.left, predicate.right):
            if not isinstance(operand, ColumnRef):
                continue
            if operand.table is None:
                return len(aliases) - 1
            lowered = operand.table.lower()
            if lowered not in local_aliases:
                continue
            position = next(
                index for index, alias in enumerate(aliases) if alias.lower() == lowered
            )
            last_required = position if last_required is None else max(last_required, position)
        return last_required

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    def _evaluate_predicate(self, predicate: Predicate, env: _Environment) -> bool:
        if isinstance(predicate, Comparison):
            left = self._operand_value(predicate.left, env)
            right = self._operand_value(predicate.right, env)
            return compare(left, predicate.op, right)
        if isinstance(predicate, Exists):
            result = self._execute_block(predicate.query, env)
            found = len(result) > 0
            return not found if predicate.negated else found
        if isinstance(predicate, InSubquery):
            value = env.resolve(predicate.column)
            members = self._single_column_values(predicate.query, env)
            found = any(compare(value, "=", member) for member in members)
            return not found if predicate.negated else found
        if isinstance(predicate, QuantifiedComparison):
            value = env.resolve(predicate.column)
            members = self._single_column_values(predicate.query, env)
            if predicate.quantifier == "ANY":
                holds = any(compare(value, predicate.op, m) for m in members)
            else:  # ALL
                holds = all(compare(value, predicate.op, m) for m in members)
            return not holds if predicate.negated else holds
        raise EngineError(f"unsupported predicate type: {type(predicate).__name__}")

    def _single_column_values(
        self, query: SelectQuery, env: _Environment
    ) -> list[Value]:
        result = self._execute_block(query, env)
        if len(result.columns) != 1:
            raise EngineError(
                "IN / ANY / ALL subqueries must return exactly one column, "
                f"got {len(result.columns)}"
            )
        return [row[0] for row in result.rows]

    def _operand_value(self, operand: ColumnRef | Literal, env: _Environment) -> Value:
        if isinstance(operand, Literal):
            return operand.value
        return env.resolve(operand)

    # ------------------------------------------------------------------ #
    # projection
    # ------------------------------------------------------------------ #

    def _project_plain(
        self, query: SelectQuery, matches: list[_Environment]
    ) -> ResultSet:
        columns = self._result_columns(query)
        seen: set[tuple[Value, ...]] = set()
        rows: list[tuple[Value, ...]] = []
        for env in matches:
            row = self._project_row(query, env)
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return ResultSet(columns=columns, rows=tuple(rows))

    def _project_row(self, query: SelectQuery, env: _Environment) -> tuple[Value, ...]:
        if query.is_select_star:
            values: list[Value] = []
            # SELECT * projects all columns of the block's own tables, in
            # FROM-clause order.  The block's tables occupy the innermost
            # scopes (one scope per table).  Only used by EXISTS subqueries.
            own_scopes = env._scopes[-len(query.from_tables) :]  # noqa: SLF001
            for scope in own_scopes:
                for relation, row in scope.bindings.values():
                    values.extend(row[column] for column in relation.columns)
            return tuple(values)
        values = []
        for item in query.select_items:
            if isinstance(item, ColumnRef):
                values.append(env.resolve(item))
            else:
                raise EngineError(
                    "aggregate select items require GROUP BY handling"
                )
        return tuple(values)

    def _project_grouped(
        self, query: SelectQuery, matches: list[_Environment]
    ) -> ResultSet:
        columns = self._result_columns(query)
        groups: dict[tuple[Value, ...], list[_Environment]] = {}
        order: list[tuple[Value, ...]] = []
        for env in matches:
            key = tuple(env.resolve(column) for column in query.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(env)
        rows: list[tuple[Value, ...]] = []
        for key in order:
            group_envs = groups[key]
            row: list[Value] = []
            for item in query.select_items:
                if isinstance(item, ColumnRef):
                    if item not in query.group_by and not matches_group_key(
                        item, query
                    ):
                        raise EngineError(
                            f"column {item} must appear in GROUP BY to be selected"
                        )
                    row.append(group_envs[0].resolve(item))
                elif isinstance(item, AggregateCall):
                    row.append(self._aggregate_value(item, group_envs))
                else:
                    raise EngineError("SELECT * cannot be combined with GROUP BY")
            rows.append(tuple(row))
        return ResultSet(columns=columns, rows=tuple(rows))

    def _aggregate_value(
        self, item: AggregateCall, group_envs: list[_Environment]
    ) -> Value:
        if isinstance(item.argument, Star):
            return apply_aggregate("COUNT", [1] * len(group_envs))
        values = [env.resolve(item.argument) for env in group_envs]
        return apply_aggregate(item.func, values)

    def _result_columns(self, query: SelectQuery) -> tuple[str, ...]:
        return result_columns(
            query, [self._db.relation(table.name) for table in query.from_tables]
        )


# ---------------------------------------------------------------------- #
# backend registrations — the oracle and the row pipeline live here;
# COLUMNAR and SQL register themselves from their own modules.
# ---------------------------------------------------------------------- #


class _NaiveBackend(ExecutionBackend):
    """``NAIVE``: nested loops over the AST with runtime scoping.

    Deliberately bypasses every context cache (plans, scans, subqueries) —
    the oracle must stay independent of the machinery it checks.
    """

    mode = ExecutionMode.NAIVE

    def execute(self, query: SelectQuery, context: ExecutionContext) -> ResultSet:
        return _NaiveInterpreter(context.database).execute(query)


class _PlannedRowBackend(ExecutionBackend):
    """``PLANNED``: compiled plans interpreted tuple-at-a-time."""

    mode = ExecutionMode.PLANNED

    def execute(self, query: SelectQuery, context: ExecutionContext) -> ResultSet:
        # The rows engine is the fallback of last resort — its fault point
        # exists so chaos tests can prove that when *every* engine dies the
        # failure propagates instead of looping.
        fault_point("engine.planned.execute")
        context.refresh()
        return run_block(context.plan(query), context)


register_backend(_NaiveBackend())
register_backend(_PlannedRowBackend())


def execute(
    query: SelectQuery,
    database: Database,
    mode: ExecutionMode = ExecutionMode.PLANNED,
) -> ResultSet:
    """Convenience wrapper around :class:`Executor`."""
    return Executor(database, mode=mode).execute(query)
