"""SQL executor for the supported fragment.

The executor evaluates a :class:`~repro.sql.ast.SelectQuery` over a
:class:`~repro.relational.database.Database` using straightforward
nested-loop semantics:

* the FROM clause enumerates the cartesian product of its tables;
* WHERE predicates are evaluated per combination, with correlated subqueries
  receiving the outer bindings through an environment of scopes;
* ``EXISTS`` / ``IN`` / ``ANY`` / ``ALL`` follow standard SQL semantics
  restricted to 2-valued logic (no NULLs);
* the result uses *set semantics* (duplicate result tuples are collapsed)
  unless the query carries aggregates, in which case GROUP BY semantics
  apply (Appendix C.3 extension).

Performance is not a goal — the executor exists so the logic layer and the
diagram layer can be checked against ground-truth SQL semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Sequence

from ..sql.ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Exists,
    InSubquery,
    Literal,
    Predicate,
    QuantifiedComparison,
    SelectQuery,
    Star,
)
from .aggregates import apply_aggregate
from .database import Database, Relation, Row
from .errors import AmbiguousColumnError, EngineError, UnknownColumnError
from .values import Value, compare


@dataclass(frozen=True)
class ResultSet:
    """The result of executing a query: column labels plus result rows."""

    columns: tuple[str, ...]
    rows: tuple[tuple[Value, ...], ...]

    def as_set(self) -> frozenset[tuple[Value, ...]]:
        """The rows as a set (the comparison used in equivalence checks)."""
        return frozenset(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: tuple[Value, ...]) -> bool:
        return row in self.rows


class _Scope:
    """One query block's bindings: alias (lower-cased) -> (relation, row)."""

    def __init__(self) -> None:
        self.bindings: dict[str, tuple[Relation, Row]] = {}

    def bind(self, alias: str, relation: Relation, row: Row) -> None:
        self.bindings[alias.lower()] = (relation, row)


class _Environment:
    """A stack of scopes, innermost last, used to resolve column references."""

    def __init__(self, scopes: Sequence[_Scope] = ()) -> None:
        self._scopes = list(scopes)

    def child(self, scope: _Scope) -> "_Environment":
        return _Environment([*self._scopes, scope])

    def resolve(self, column: ColumnRef) -> Value:
        if column.table is not None:
            return self._resolve_qualified(column)
        return self._resolve_unqualified(column)

    def _resolve_qualified(self, column: ColumnRef) -> Value:
        alias = column.table.lower()
        for scope in reversed(self._scopes):
            binding = scope.bindings.get(alias)
            if binding is None:
                continue
            relation, row = binding
            key = _match_column(relation, column.column)
            if key is None:
                raise UnknownColumnError(
                    f"table {column.table} has no column {column.column!r}"
                )
            return row[key]
        raise UnknownColumnError(f"unknown table alias {column.table!r}")

    def _resolve_unqualified(self, column: ColumnRef) -> Value:
        for scope in reversed(self._scopes):
            matches = []
            for relation, row in scope.bindings.values():
                key = _match_column(relation, column.column)
                if key is not None:
                    matches.append(row[key])
            if len(matches) > 1:
                raise AmbiguousColumnError(
                    f"column {column.column!r} is ambiguous in this scope"
                )
            if matches:
                return matches[0]
        raise UnknownColumnError(f"unknown column {column.column!r}")


def _match_column(relation: Relation, column: str) -> str | None:
    lowered = column.lower()
    for key in relation.columns:
        if key.lower() == lowered:
            return key
    return None


class Executor:
    """Evaluates queries of the supported fragment against a database."""

    def __init__(self, database: Database) -> None:
        self._db = database

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def execute(self, query: SelectQuery) -> ResultSet:
        """Execute ``query`` and return its result set."""
        return self._execute_block(query, _Environment())

    # ------------------------------------------------------------------ #
    # block evaluation
    # ------------------------------------------------------------------ #

    def _execute_block(self, query: SelectQuery, outer: _Environment) -> ResultSet:
        matches = list(self._matching_environments(query, outer))
        if query.has_aggregates or query.group_by:
            return self._project_grouped(query, matches)
        return self._project_plain(query, matches)

    def _matching_environments(
        self, query: SelectQuery, outer: _Environment
    ) -> Iterator[_Environment]:
        """Enumerate bindings of the FROM tables that satisfy the WHERE clause.

        The join is a nested loop, but comparison predicates are evaluated as
        soon as every table they reference is bound ("predicate pushdown").
        Without this, the 10-table conjunctive queries of the user study
        (e.g. Q3) would enumerate the full cartesian product.  Subquery
        predicates are evaluated once the whole block is bound.
        """
        relations = [self._db.relation(table.name) for table in query.from_tables]
        aliases = [table.effective_alias for table in query.from_tables]
        local_aliases = {alias.lower() for alias in aliases}
        comparisons = [p for p in query.where if isinstance(p, Comparison)]
        subqueries = [p for p in query.where if not isinstance(p, Comparison)]
        staged: list[list[Comparison]] = [[] for _ in aliases]
        prechecks: list[Comparison] = []
        for predicate in comparisons:
            position = self._pushdown_position(predicate, aliases, local_aliases)
            if position is None:
                prechecks.append(predicate)
            else:
                staged[position].append(predicate)

        if not all(self._evaluate_predicate(p, outer) for p in prechecks):
            return

        def extend(index: int, env: _Environment) -> Iterator[_Environment]:
            if index == len(relations):
                if all(self._evaluate_predicate(p, env) for p in subqueries):
                    yield env
                return
            relation = relations[index]
            alias = aliases[index]
            for row in relation.rows:
                scope = _Scope()
                scope.bind(alias, relation, row)
                candidate = env.child(scope)
                if all(self._evaluate_predicate(p, candidate) for p in staged[index]):
                    yield from extend(index + 1, candidate)

        yield from extend(0, outer)

    @staticmethod
    def _pushdown_position(
        predicate: Comparison, aliases: list[str], local_aliases: set[str]
    ) -> int | None:
        """Earliest FROM position after which ``predicate`` can be evaluated.

        Returns ``None`` when the predicate only references outer tables (it
        can be checked before binding anything locally).  Unqualified column
        references are conservatively deferred to the last position.
        """
        last_required = None
        for operand in (predicate.left, predicate.right):
            if not isinstance(operand, ColumnRef):
                continue
            if operand.table is None:
                return len(aliases) - 1
            lowered = operand.table.lower()
            if lowered not in local_aliases:
                continue
            position = next(
                index for index, alias in enumerate(aliases) if alias.lower() == lowered
            )
            last_required = position if last_required is None else max(last_required, position)
        return last_required

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    def _evaluate_predicate(self, predicate: Predicate, env: _Environment) -> bool:
        if isinstance(predicate, Comparison):
            left = self._operand_value(predicate.left, env)
            right = self._operand_value(predicate.right, env)
            return compare(left, predicate.op, right)
        if isinstance(predicate, Exists):
            result = self._execute_block(predicate.query, env)
            found = len(result) > 0
            return not found if predicate.negated else found
        if isinstance(predicate, InSubquery):
            value = env.resolve(predicate.column)
            members = self._single_column_values(predicate.query, env)
            found = any(compare(value, "=", member) for member in members)
            return not found if predicate.negated else found
        if isinstance(predicate, QuantifiedComparison):
            value = env.resolve(predicate.column)
            members = self._single_column_values(predicate.query, env)
            if predicate.quantifier == "ANY":
                holds = any(compare(value, predicate.op, m) for m in members)
            else:  # ALL
                holds = all(compare(value, predicate.op, m) for m in members)
            return not holds if predicate.negated else holds
        raise EngineError(f"unsupported predicate type: {type(predicate).__name__}")

    def _single_column_values(
        self, query: SelectQuery, env: _Environment
    ) -> list[Value]:
        result = self._execute_block(query, env)
        if len(result.columns) != 1:
            raise EngineError(
                "IN / ANY / ALL subqueries must return exactly one column, "
                f"got {len(result.columns)}"
            )
        return [row[0] for row in result.rows]

    def _operand_value(self, operand: ColumnRef | Literal, env: _Environment) -> Value:
        if isinstance(operand, Literal):
            return operand.value
        return env.resolve(operand)

    # ------------------------------------------------------------------ #
    # projection
    # ------------------------------------------------------------------ #

    def _project_plain(
        self, query: SelectQuery, matches: list[_Environment]
    ) -> ResultSet:
        columns = self._result_columns(query)
        seen: set[tuple[Value, ...]] = set()
        rows: list[tuple[Value, ...]] = []
        for env in matches:
            row = self._project_row(query, env)
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return ResultSet(columns=columns, rows=tuple(rows))

    def _project_row(self, query: SelectQuery, env: _Environment) -> tuple[Value, ...]:
        if query.is_select_star:
            values: list[Value] = []
            # SELECT * projects all columns of the block's own tables, in
            # FROM-clause order.  The block's tables occupy the innermost
            # scopes (one scope per table).  Only used by EXISTS subqueries.
            own_scopes = env._scopes[-len(query.from_tables) :]  # noqa: SLF001
            for scope in own_scopes:
                for relation, row in scope.bindings.values():
                    values.extend(row[column] for column in relation.columns)
            return tuple(values)
        values = []
        for item in query.select_items:
            if isinstance(item, ColumnRef):
                values.append(env.resolve(item))
            else:
                raise EngineError(
                    "aggregate select items require GROUP BY handling"
                )
        return tuple(values)

    def _project_grouped(
        self, query: SelectQuery, matches: list[_Environment]
    ) -> ResultSet:
        columns = self._result_columns(query)
        groups: dict[tuple[Value, ...], list[_Environment]] = {}
        order: list[tuple[Value, ...]] = []
        for env in matches:
            key = tuple(env.resolve(column) for column in query.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(env)
        rows: list[tuple[Value, ...]] = []
        for key in order:
            group_envs = groups[key]
            row: list[Value] = []
            for item in query.select_items:
                if isinstance(item, ColumnRef):
                    if item not in query.group_by and not self._matches_group_key(
                        item, query
                    ):
                        raise EngineError(
                            f"column {item} must appear in GROUP BY to be selected"
                        )
                    row.append(group_envs[0].resolve(item))
                elif isinstance(item, AggregateCall):
                    row.append(self._aggregate_value(item, group_envs))
                else:
                    raise EngineError("SELECT * cannot be combined with GROUP BY")
            rows.append(tuple(row))
        return ResultSet(columns=columns, rows=tuple(rows))

    def _matches_group_key(self, column: ColumnRef, query: SelectQuery) -> bool:
        return any(
            column.column.lower() == group.column.lower()
            and (column.table is None or group.table is None or column.table.lower() == group.table.lower())
            for group in query.group_by
        )

    def _aggregate_value(
        self, item: AggregateCall, group_envs: list[_Environment]
    ) -> Value:
        if isinstance(item.argument, Star):
            return apply_aggregate("COUNT", [1] * len(group_envs))
        values = [env.resolve(item.argument) for env in group_envs]
        return apply_aggregate(item.func, values)

    def _result_columns(self, query: SelectQuery) -> tuple[str, ...]:
        if query.is_select_star:
            names: list[str] = []
            for table in query.from_tables:
                relation = self._db.relation(table.name)
                names.extend(f"{table.effective_alias}.{c}" for c in relation.columns)
            return tuple(names)
        return tuple(str(item) for item in query.select_items)


def execute(query: SelectQuery, database: Database) -> ResultSet:
    """Convenience wrapper around :class:`Executor`."""
    return Executor(database).execute(query)
