"""Aggregate functions for the GROUP BY extension (Appendix C.3)."""

from __future__ import annotations

from typing import Callable, Sequence

from .errors import EngineError
from .values import Value


def _require_values(name: str, values: Sequence[Value]) -> Sequence[Value]:
    if not values:
        raise EngineError(f"{name} over an empty group is undefined without NULLs")
    return values


def agg_count(values: Sequence[Value]) -> int:
    """COUNT(expr) — number of values (no NULLs in the supported fragment)."""
    return len(values)


def agg_sum(values: Sequence[Value]) -> Value:
    return sum(_require_values("SUM", values))  # type: ignore[arg-type]


def agg_avg(values: Sequence[Value]) -> float:
    values = _require_values("AVG", values)
    return sum(values) / len(values)  # type: ignore[arg-type]


def agg_min(values: Sequence[Value]) -> Value:
    return min(_require_values("MIN", values))


def agg_max(values: Sequence[Value]) -> Value:
    return max(_require_values("MAX", values))


AGGREGATES: dict[str, Callable[[Sequence[Value]], Value]] = {
    "COUNT": agg_count,
    "SUM": agg_sum,
    "AVG": agg_avg,
    "MIN": agg_min,
    "MAX": agg_max,
}


def apply_aggregate(func: str, values: Sequence[Value]) -> Value:
    """Apply the aggregate called ``func`` to ``values``."""
    try:
        implementation = AGGREGATES[func.upper()]
    except KeyError:
        raise EngineError(f"unknown aggregate function {func!r}") from None
    return implementation(values)
