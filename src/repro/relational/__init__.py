"""In-memory relational engine: database, executor and aggregates."""

from .aggregates import AGGREGATES, apply_aggregate
from .database import Database, Relation, Row
from .errors import (
    AmbiguousColumnError,
    EngineError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)
from .executor import Executor, ResultSet, execute
from .values import Value, compare, values_comparable

__all__ = [
    "AGGREGATES",
    "AmbiguousColumnError",
    "Database",
    "EngineError",
    "Executor",
    "Relation",
    "ResultSet",
    "Row",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownTableError",
    "Value",
    "apply_aggregate",
    "compare",
    "execute",
    "values_comparable",
]
