"""In-memory relational engine: database, planner, executor and aggregates."""

from .aggregates import AGGREGATES, apply_aggregate
from .batch import BatchExecutor, BatchStats, execute_batch
from .columnar import ColumnarTable
from .database import Database, Relation, Row
from .errors import (
    AmbiguousColumnError,
    EngineError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)
from .executor import (
    ExecutionContext,
    ExecutionMode,
    ExecutionStats,
    Executor,
    ResultSet,
    execute,
)
from .plan import BlockPlan, PlanNode
from .planner import Planner, plan_query
from .stats import CatalogStatistics, KMVSketch, TableStats, stable_hash
from .values import Value, compare, values_comparable

__all__ = [
    "AGGREGATES",
    "AmbiguousColumnError",
    "BatchExecutor",
    "BatchStats",
    "BlockPlan",
    "CatalogStatistics",
    "ColumnarTable",
    "Database",
    "EngineError",
    "KMVSketch",
    "ExecutionContext",
    "ExecutionMode",
    "ExecutionStats",
    "Executor",
    "PlanNode",
    "Planner",
    "Relation",
    "ResultSet",
    "Row",
    "TableStats",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownTableError",
    "Value",
    "apply_aggregate",
    "compare",
    "execute",
    "execute_batch",
    "plan_query",
    "stable_hash",
    "values_comparable",
]
