"""In-memory relational engine: database, planner, pluggable execution backends."""

from .aggregates import AGGREGATES, apply_aggregate
from .backends import (
    ExecutionBackend,
    backend_for,
    register_backend,
    registered_modes,
)
from .batch import BatchExecutor, BatchStats, execute_batch
from .columnar import ColumnarTable
from .database import Database, Relation, Row
from .errors import (
    AmbiguousColumnError,
    EngineError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)
from .executor import (
    ExecutionContext,
    ExecutionMode,
    ExecutionStats,
    Executor,
    ResultSet,
    execute,
)
from .plan import BlockPlan, PlanNode
from .planner import Planner, plan_query
from .stats import CatalogStatistics, KMVSketch, TableStats, stable_hash
from .values import Value, compare, values_comparable

__all__ = [
    "AGGREGATES",
    "AmbiguousColumnError",
    "BatchExecutor",
    "BatchStats",
    "BlockPlan",
    "CatalogStatistics",
    "ColumnarTable",
    "Database",
    "EngineError",
    "ExecutionBackend",
    "KMVSketch",
    "ExecutionContext",
    "ExecutionMode",
    "ExecutionStats",
    "Executor",
    "PlanNode",
    "Planner",
    "Relation",
    "ResultSet",
    "Row",
    "TableStats",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownTableError",
    "Value",
    "apply_aggregate",
    "backend_for",
    "compare",
    "execute",
    "execute_batch",
    "plan_query",
    "register_backend",
    "registered_modes",
    "stable_hash",
    "values_comparable",
]
