"""In-memory relational engine: database, planner, pluggable execution backends."""

from .aggregates import AGGREGATES, apply_aggregate
from .backends import (
    BreakerState,
    CircuitBreaker,
    ExecutionBackend,
    FallbackBackend,
    backend_for,
    breaker_states,
    is_recoverable,
    register_backend,
    registered_modes,
    reset_breakers,
    with_fallback,
)
from .batch import BatchExecutor, BatchStats, execute_batch
from .columnar import ColumnarTable
from .database import Database, Relation, Row
from .errors import (
    AmbiguousColumnError,
    EngineError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)
from .executor import (
    ExecutionContext,
    ExecutionMode,
    ExecutionStats,
    Executor,
    ResultSet,
    execute,
)
from .plan import BlockPlan, PlanNode
from .planner import Planner, plan_query
from .stats import CatalogStatistics, KMVSketch, TableStats, stable_hash
from .values import Value, compare, values_comparable

__all__ = [
    "AGGREGATES",
    "AmbiguousColumnError",
    "BatchExecutor",
    "BatchStats",
    "BlockPlan",
    "BreakerState",
    "CatalogStatistics",
    "CircuitBreaker",
    "FallbackBackend",
    "ColumnarTable",
    "Database",
    "EngineError",
    "ExecutionBackend",
    "KMVSketch",
    "ExecutionContext",
    "ExecutionMode",
    "ExecutionStats",
    "Executor",
    "PlanNode",
    "Planner",
    "Relation",
    "ResultSet",
    "Row",
    "TableStats",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownTableError",
    "Value",
    "apply_aggregate",
    "backend_for",
    "breaker_states",
    "compare",
    "execute",
    "execute_batch",
    "is_recoverable",
    "plan_query",
    "register_backend",
    "registered_modes",
    "reset_breakers",
    "stable_hash",
    "values_comparable",
    "with_fallback",
]
