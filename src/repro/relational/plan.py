"""Logical query plans for the relational engine.

The planner (:mod:`repro.relational.planner`) compiles a
:class:`~repro.sql.ast.SelectQuery` into a tree of the operators defined
here; the executor (:mod:`repro.relational.executor`) interprets the tree as
a pipeline of generators.  The vocabulary is the classic relational-algebra
set:

* :class:`Scan` — enumerate one table under an alias;
* :class:`Filter` — keep rows satisfying compiled predicates;
* :class:`HashJoin` — equi-join, build side hashed on the key columns;
* :class:`NestedLoopJoin` — theta join / cartesian product fallback;
* :class:`SemiJoin` / :class:`AntiJoin` — decorrelated ``[NOT] IN`` (and the
  equivalent ``= ANY`` / ``<> ALL`` spellings) against a memoized subquery;
* :class:`Project`, :class:`Distinct`, :class:`Aggregate` — the SELECT list,
  set semantics and GROUP BY semantics.

Rows flowing between operators are flat Python tuples.  Every operator
carries its output *frame* implicitly: column references are resolved at
plan time into slot indices (:class:`Col`), literals into :class:`Const`,
and references to enclosing query blocks into :class:`Param` — the formal
parameters of a correlated subquery plan.  A :class:`BlockPlan` packages one
query block: its operator tree, its parameter arity and the row-independent
``prechecks`` that gate the whole block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from .values import Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from typing import Iterator

    from ..sql.ast import SelectQuery


# ---------------------------------------------------------------------- #
# scalar expressions
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Col:
    """A slot index into the operator's input row tuple."""

    slot: int
    label: str = ""

    def __str__(self) -> str:
        return self.label or f"${self.slot}"


@dataclass(frozen=True)
class Const:
    """A literal constant."""

    value: Value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Param:
    """A formal parameter of a correlated subquery plan."""

    index: int
    label: str = ""

    def __str__(self) -> str:
        return f"?{self.label or self.index}"


ScalarExpr = Union[Col, Const, Param]


@dataclass(frozen=True)
class CompiledComparison:
    """A comparison predicate with both operands resolved."""

    left: ScalarExpr
    op: str
    right: ScalarExpr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    @property
    def is_row_independent(self) -> bool:
        """True when no operand reads the current row (params/consts only)."""
        return not isinstance(self.left, Col) and not isinstance(self.right, Col)


@dataclass(frozen=True)
class SubqueryPred:
    """A residual (correlated) subquery predicate evaluated per row.

    ``kind`` is ``"exists"``, ``"in"`` or ``"quantified"``.  ``param_exprs``
    are evaluated in the *enclosing* frame to produce the actual parameter
    tuple; results are memoized per distinct parameter tuple, so a subquery
    correlated on a low-cardinality outer column is executed only once per
    distinct value rather than once per outer row.
    """

    kind: str
    negated: bool
    plan: "BlockPlan"
    param_exprs: tuple[ScalarExpr, ...]
    value_expr: ScalarExpr | None = None  # probed column for in/quantified
    op: str | None = None
    quantifier: str | None = None  # "ANY" | "ALL"

    def __str__(self) -> str:
        if self.kind == "exists":
            text = "EXISTS(...)"
        elif self.kind == "in":
            text = f"{self.value_expr} IN (...)"
        else:
            text = f"{self.value_expr} {self.op} {self.quantifier} (...)"
        return f"NOT {text}" if self.negated else text

    @property
    def is_row_independent(self) -> bool:
        value_free = self.value_expr is None or not isinstance(self.value_expr, Col)
        return value_free and not any(isinstance(e, Col) for e in self.param_exprs)


Predicate = Union[CompiledComparison, SubqueryPred]


# ---------------------------------------------------------------------- #
# plan operators
# ---------------------------------------------------------------------- #


@dataclass
class PlanNode:
    """Base class for plan operators (gives every node ``describe``)."""

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def walk(self) -> "Iterator[PlanNode]":
        """Pre-order traversal of the subtree rooted at this node.

        Used by backends that compile whole trees at once (the SQL
        lowering) and by tests asserting plan shapes without caring about
        nesting depth.
        """
        yield self
        for child in self.children():
            yield from child.walk()

    def label(self) -> str:
        return type(self).__name__

    def describe(self, indent: int = 0) -> str:
        """EXPLAIN-style rendering of the subtree rooted at this node."""
        lines = [("  " * indent) + self.label()]
        lines.extend(child.describe(indent + 1) for child in self.children())
        return "\n".join(lines)


@dataclass
class Scan(PlanNode):
    """Enumerate all rows of one table under an alias."""

    table: str
    alias: str

    def label(self) -> str:
        if self.alias.lower() == self.table.lower():
            return f"Scan {self.table}"
        return f"Scan {self.table} AS {self.alias}"


@dataclass
class Filter(PlanNode):
    """Keep child rows satisfying every predicate (conjunction)."""

    child: PlanNode
    predicates: tuple[Predicate, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Filter " + " AND ".join(str(p) for p in self.predicates)


@dataclass
class HashJoin(PlanNode):
    """Equi-join: hash the right (build) side on its key columns.

    ``left_keys[i]`` must equal ``right_keys[i]`` for a row pair to join;
    ``right_keys`` are slots in the *right* child's own frame.  Output rows
    are ``left_row + right_row``.
    """

    left: PlanNode
    right: PlanNode
    left_keys: tuple[ScalarExpr, ...]
    right_keys: tuple[ScalarExpr, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        pairs = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin [{pairs}]"


@dataclass
class NestedLoopJoin(PlanNode):
    """Theta join (or cartesian product when ``predicates`` is empty)."""

    left: PlanNode
    right: PlanNode
    predicates: tuple[Predicate, ...] = ()

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        if not self.predicates:
            return "NestedLoopJoin [cartesian]"
        return "NestedLoopJoin " + " AND ".join(str(p) for p in self.predicates)


@dataclass
class SemiJoin(PlanNode):
    """Keep child rows whose probe value appears in a subquery's result.

    The subquery must be uncorrelated with the current block (its
    ``param_exprs`` may still reference parameters of *enclosing* blocks);
    its single output column is materialized once and probed as a hash set.
    """

    child: PlanNode
    plan: "BlockPlan"
    param_exprs: tuple[ScalarExpr, ...]
    probe: ScalarExpr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"SemiJoin {self.probe} IN (subquery)"


@dataclass
class AntiJoin(SemiJoin):
    """Keep child rows whose probe value does NOT appear in the subquery."""

    def label(self) -> str:
        return f"AntiJoin {self.probe} NOT IN (subquery)"


@dataclass
class Project(PlanNode):
    """Evaluate the SELECT list expressions for every child row."""

    child: PlanNode
    exprs: tuple[ScalarExpr, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Project " + ", ".join(str(e) for e in self.exprs)


@dataclass
class Distinct(PlanNode):
    """Collapse duplicate rows, preserving first-seen order (set semantics)."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class TopK(PlanNode):
    """Ranked output: ``ORDER BY keys`` then ``LIMIT limit OFFSET offset``.

    ``keys[i]`` is evaluated in the child's output frame; ``descending[i]``
    flips that key's sort direction.  ``limit is None`` means "sort only"
    (a bare ORDER BY).  ``strategy`` is the planner's execution hint:
    ``"heap"`` when ``limit + offset`` is small relative to the estimated
    input (bounded-heap / partial-selection kernels pay off), ``"sort"``
    when the cutoff swallows most of the input anyway and one full sort is
    cheaper than heap maintenance.  Engines are free to ignore the hint —
    it never changes the result, only how it is computed.

    ``distinct`` fuses set-semantics dedup into the operator: the planner
    replaces ``TopK(Distinct(x))`` with ``TopK(x, distinct=True)`` so
    engines can rank *before* deduplicating — the bounded heap dedups only
    among its resident rows, and the columnar kernel ranks raw column
    vectors and dedups just the top candidates, instead of every engine
    first materializing the full distinct result only to throw away all
    but k rows of it.

    Ties on the key tuple are broken arbitrarily (engines differ); the
    differential harness compares ranked results up to tie groups.
    """

    child: PlanNode
    keys: tuple[ScalarExpr, ...]
    descending: tuple[bool, ...]
    limit: int | None = None
    offset: int = 0
    strategy: str = "heap"  # "heap" | "sort"
    distinct: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            f"{key}{' DESC' if desc else ''}"
            for key, desc in zip(self.keys, self.descending)
        )
        text = f"TopK [{keys}]"
        if self.distinct:
            text += " distinct"
        if self.limit is not None:
            text += f" limit={self.limit}"
            if self.offset:
                text += f" offset={self.offset}"
        return f"{text} strategy={self.strategy}"


@dataclass
class Aggregate(PlanNode):
    """GROUP BY + aggregate evaluation (Appendix C.3 extension).

    ``items`` mirrors the SELECT list: ``("col", expr)`` entries are grouped
    columns evaluated on the group's first row; ``("agg", func, expr)``
    entries apply ``func`` over the expression's values within the group
    (``expr is None`` for ``COUNT(*)``).  Groups are emitted in first-seen
    order, matching the reference executor.
    """

    child: PlanNode
    group_exprs: tuple[ScalarExpr, ...]
    items: tuple[tuple, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(str(e) for e in self.group_exprs)
        return f"Aggregate [group by {keys}]" if keys else "Aggregate [global]"


# ---------------------------------------------------------------------- #
# block plans
# ---------------------------------------------------------------------- #


@dataclass
class BlockPlan:
    """The compiled plan of one query block.

    ``ast`` is the source block and doubles as the subquery-memoization
    cache key (AST nodes are frozen, hashable dataclasses); ``prechecks``
    are row-independent predicates evaluated once per invocation, before
    any table is scanned — the planner routes predicates that reference
    only enclosing blocks (or only constants) here.
    """

    ast: "SelectQuery"
    root: PlanNode
    columns: tuple[str, ...]
    n_params: int = 0
    param_labels: tuple[str, ...] = ()
    prechecks: tuple[Predicate, ...] = field(default_factory=tuple)
    #: Parameter index assigned to each free-column occurrence, in resolution
    #: order.  Part of the subquery memoization key: two plans compiled from
    #: the same AST under different enclosing blocks share cached results
    #: only when their free columns collapsed onto parameters the same way.
    param_shape: tuple[int, ...] = ()

    @property
    def cache_key(self) -> tuple:
        """Stable identity of this plan's *semantics* across recompiles.

        ``BlockPlan`` itself is mutable (and therefore unhashable); the
        frozen source AST plus the parameter shape pin down what the plan
        computes.  Both the context's subquery memo and the SQL backend's
        lowering cache key on this.
        """
        return (self.ast, self.param_shape)

    def describe(self) -> str:
        """EXPLAIN-style rendering of the whole block plan."""
        lines = []
        if self.n_params:
            lines.append(f"Params: {', '.join(self.param_labels)}")
        for pred in self.prechecks:
            lines.append(f"Precheck: {pred}")
        lines.append(self.root.describe())
        return "\n".join(lines)
