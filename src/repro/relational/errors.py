"""Exception types for the in-memory relational engine."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for relational-engine errors."""


class UnknownTableError(EngineError):
    """A query references a table that is not loaded in the database."""


class UnknownColumnError(EngineError):
    """A column reference cannot be resolved against any visible table."""


class AmbiguousColumnError(EngineError):
    """An unqualified column reference matches more than one visible table."""


class TypeMismatchError(EngineError):
    """Two values of incomparable types were compared (e.g. str vs int)."""
