"""Name-resolution helpers shared by the naive executor and the planner.

Both execution modes must resolve names identically — these helpers are the
single source of truth for case-insensitive column matching, GROUP BY
validation and result-column labelling, so a fix to one mode cannot
silently desynchronize the other (the exact divergence class the
differential test suite exists to catch).
"""

from __future__ import annotations

from typing import Sequence

from ..sql.ast import ColumnRef, SelectQuery
from .database import Relation


def match_column(relation: Relation, column: str) -> str | None:
    """The relation's column key matching ``column`` case-insensitively."""
    lowered = column.lower()
    for key in relation.columns:
        if key.lower() == lowered:
            return key
    return None


def matches_group_key(column: ColumnRef, query: SelectQuery) -> bool:
    """True when ``column`` names one of the query's GROUP BY columns."""
    return any(
        column.column.lower() == group.column.lower()
        and (
            column.table is None
            or group.table is None
            or column.table.lower() == group.table.lower()
        )
        for group in query.group_by
    )


def result_columns(query: SelectQuery, relations: Sequence[Relation]) -> tuple[str, ...]:
    """The result-set column labels (``relations`` in FROM-clause order)."""
    if query.is_select_star:
        names: list[str] = []
        for table, relation in zip(query.from_tables, relations):
            names.extend(f"{table.effective_alias}.{c}" for c in relation.columns)
        return tuple(names)
    return tuple(str(item) for item in query.select_items)


def order_key_position(
    column: ColumnRef, query: SelectQuery, relations: Sequence[Relation]
) -> int | None:
    """The output-column position an ORDER BY key binds to, or None.

    ORDER BY is restricted to *output* columns (every engine sorts the
    projected result, so a key must name a slot of it); this helper is the
    single source of truth for which slot, shared by the planner and the
    naive oracle.  Matching is case-insensitive; an unqualified key binds
    to the most recently bound match (output list searched in reverse),
    mirroring the executors' scoping rule for unqualified columns.
    """
    target_column = column.column.lower()
    target_table = column.table.lower() if column.table else None
    if query.is_select_star:
        position = 0
        matches: list[int] = []
        for table, relation in zip(query.from_tables, relations):
            alias = table.effective_alias.lower()
            for key in relation.columns:
                if key.lower() == target_column and (
                    target_table is None or target_table == alias
                ):
                    matches.append(position)
                position += 1
        return matches[-1] if matches else None
    matches = [
        position
        for position, item in enumerate(query.select_items)
        if isinstance(item, ColumnRef)
        and item.column.lower() == target_column
        and (
            target_table is None
            or item.table is None
            or item.table.lower() == target_table
        )
    ]
    return matches[-1] if matches else None
