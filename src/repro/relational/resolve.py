"""Name-resolution helpers shared by the naive executor and the planner.

Both execution modes must resolve names identically — these helpers are the
single source of truth for case-insensitive column matching, GROUP BY
validation and result-column labelling, so a fix to one mode cannot
silently desynchronize the other (the exact divergence class the
differential test suite exists to catch).
"""

from __future__ import annotations

from typing import Sequence

from ..sql.ast import ColumnRef, SelectQuery
from .database import Relation


def match_column(relation: Relation, column: str) -> str | None:
    """The relation's column key matching ``column`` case-insensitively."""
    lowered = column.lower()
    for key in relation.columns:
        if key.lower() == lowered:
            return key
    return None


def matches_group_key(column: ColumnRef, query: SelectQuery) -> bool:
    """True when ``column`` names one of the query's GROUP BY columns."""
    return any(
        column.column.lower() == group.column.lower()
        and (
            column.table is None
            or group.table is None
            or column.table.lower() == group.table.lower()
        )
        for group in query.group_by
    )


def result_columns(query: SelectQuery, relations: Sequence[Relation]) -> tuple[str, ...]:
    """The result-set column labels (``relations`` in FROM-clause order)."""
    if query.is_select_star:
        names: list[str] = []
        for table, relation in zip(query.from_tables, relations):
            names.extend(f"{table.effective_alias}.{c}" for c in relation.columns)
        return tuple(names)
    return tuple(str(item) for item in query.select_items)
