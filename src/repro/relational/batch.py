"""Batch execution pipeline: many queries over one database, shared caches.

The interactive API (:func:`repro.relational.execute`) compiles and runs one
query at a time.  Batch workloads — the study's query corpus, generated
differential-testing workloads, benchmark sweeps — repeatedly touch the same
tables and frequently share whole subqueries, so the batch executor keeps
one :class:`~repro.relational.executor.ExecutionContext` alive across the
whole run:

* each distinct query AST is planned once (plan cache);
* each relation is materialized into flat row tuples once (scan cache);
* each distinct (subquery, correlated-values) pair is evaluated once across
  *all* queries of the batch (subquery cache) — frozen AST nodes make the
  subquery itself a safe cache key.

The database is treated as read-only for the duration of a batch; interleave
inserts only between batches (the scan cache keys on row counts, so plain
inserts invalidate naturally, but in-place row mutation would not).

``disk_cache=`` additionally persists query *results* to a
:class:`~repro.pipeline.diskcache.DiskCache` store, keyed on the query, the
schema and the database's row-count version — so a fresh process replaying
yesterday's workload against unchanged data serves results straight from
disk.  The same trust rules as the diagram pipeline apply: corrupt,
version-mismatched or foreign entries are evicted and recomputed, and any
growth of the database invalidates every persisted result naturally (the
version participates in the key).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline.diskcache import DiskCache

from ..sql.ast import SelectQuery
from ..sql.parser import parse
from .database import Database
from .executor import ExecutionContext, ExecutionMode, Executor, ResultSet

#: Stage label under which query results live in a shared disk store.
_RESULT_STAGE = "exec-result"


@dataclass(frozen=True)
class BatchStats:
    """Cache effectiveness of one batch run."""

    queries: int
    plan_hits: int
    plan_misses: int
    subquery_hits: int
    subquery_misses: int
    scan_hits: int
    scan_misses: int
    result_disk_hits: int = 0
    sql_store_builds: int = 0
    sql_lower_hits: int = 0
    sql_lower_misses: int = 0

    def describe(self) -> str:
        text = (
            f"{self.queries} queries: "
            f"plans {self.plan_hits}/{self.plan_hits + self.plan_misses} cached, "
            f"subqueries {self.subquery_hits}/"
            f"{self.subquery_hits + self.subquery_misses} cached, "
            f"scans {self.scan_hits}/{self.scan_hits + self.scan_misses} cached"
        )
        if self.sql_lower_hits or self.sql_lower_misses:
            text += (
                f", lowerings {self.sql_lower_hits}/"
                f"{self.sql_lower_hits + self.sql_lower_misses} cached "
                f"({self.sql_store_builds} sqlite load"
                f"{'s' if self.sql_store_builds != 1 else ''})"
            )
        if self.result_disk_hits:
            text += f", {self.result_disk_hits} results from disk"
        return text


class BatchExecutor:
    """Executes many queries over one database with shared plan/data caches.

    >>> batch = BatchExecutor(database)
    >>> results = batch.run(queries)          # list[ResultSet]
    >>> batch.stats().describe()
    '12 queries: plans 4/12 cached, ...'

    Accepts SQL text or parsed :class:`~repro.sql.ast.SelectQuery` objects.
    ``mode`` defaults to planned execution; the naive oracle is available
    for differential runs, in which case only parsing is shared.
    """

    def __init__(
        self,
        database: Database,
        mode: ExecutionMode = ExecutionMode.PLANNED,
        disk_cache: DiskCache | str | Path | None = None,
        fallback: bool = False,
    ) -> None:
        self._db = database
        self._mode = mode
        self._context = ExecutionContext(database)
        self._executor = Executor(
            database, mode=mode, context=self._context, fallback=fallback
        )
        self._queries_run = 0
        if disk_cache is not None and not hasattr(disk_cache, "get"):
            # Imported lazily: repro.logic pulls in this package at import
            # time, and repro.pipeline sits on top of repro.logic — a
            # module-level import would be circular.
            from ..pipeline.diskcache import DiskCache

            disk_cache = DiskCache(Path(disk_cache))
        self._disk_cache = disk_cache
        # Results are only trustworthy for exactly this schema; the
        # row-count version participates per lookup (it changes mid-batch
        # when callers insert between runs).
        self._disk_namespace = f"exec|{database.schema!r}"
        self._result_disk_hits = 0

    @property
    def database(self) -> Database:
        return self._db

    @property
    def mode(self) -> ExecutionMode:
        return self._mode

    @property
    def context(self) -> ExecutionContext:
        return self._context

    @property
    def disk_cache(self) -> DiskCache | None:
        return self._disk_cache

    def execute(self, query: SelectQuery | str) -> ResultSet:
        """Execute one query (SQL text or AST) through the shared context."""
        if isinstance(query, str):
            query = parse(query)
        self._queries_run += 1
        disk = self._disk_cache
        if disk is None or self._mode is ExecutionMode.NAIVE:
            # Planned, columnar and SQL results are interchangeable
            # (identical sets by the differential contract), so all three
            # may serve from and populate the persistent store; the naive
            # oracle stays live.
            return self._executor.execute(query)
        from ..pipeline.diskcache import stable_key_digest

        digest = stable_key_digest(
            self._disk_namespace,
            _RESULT_STAGE,
            (query, self._db.total_rows()),
        )
        found, cached = disk.get(digest, _RESULT_STAGE)
        if found and isinstance(cached, ResultSet):
            self._result_disk_hits += 1
            return cached
        result = self._executor.execute(query)
        disk.put(digest, _RESULT_STAGE, result)
        return result

    def run(self, queries: Iterable[SelectQuery | str]) -> list[ResultSet]:
        """Execute a whole workload, returning one result set per query."""
        return [self.execute(query) for query in queries]

    def iter_run(
        self, queries: Iterable[SelectQuery | str]
    ) -> Iterator[tuple[SelectQuery | str, ResultSet]]:
        """Lazily yield ``(query, result)`` pairs — streaming-friendly."""
        for query in queries:
            yield query, self.execute(query)

    def explain(self, query: SelectQuery | str) -> str:
        """The plan the batch would use for ``query``."""
        if isinstance(query, str):
            query = parse(query)
        return self._executor.explain(query)

    def stats(self) -> BatchStats:
        """Cache counters accumulated so far."""
        counters = self._context.stats
        return BatchStats(
            queries=self._queries_run,
            plan_hits=counters.plan_hits,
            plan_misses=counters.plan_misses,
            subquery_hits=counters.subquery_hits,
            subquery_misses=counters.subquery_misses,
            scan_hits=counters.scan_hits,
            scan_misses=counters.scan_misses,
            result_disk_hits=self._result_disk_hits,
            sql_store_builds=counters.sql_store_builds,
            sql_lower_hits=counters.sql_lower_hits,
            sql_lower_misses=counters.sql_lower_misses,
        )


def execute_batch(
    queries: Sequence[SelectQuery | str],
    database: Database,
    mode: ExecutionMode = ExecutionMode.PLANNED,
) -> list[ResultSet]:
    """One-call batch execution (see :class:`BatchExecutor`)."""
    return BatchExecutor(database, mode=mode).run(queries)
