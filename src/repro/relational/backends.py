"""Pluggable execution backends: the registry every engine plugs into.

Historically :class:`~repro.relational.executor.Executor` branched on
:class:`~repro.relational.executor.ExecutionMode` with hard-coded imports.
That worked for three engines but made every new engine a cross-cutting
edit (executor, batch, CLI, benchmarks all knew the mode list).  This
module inverts the dependency: an engine implements
:class:`ExecutionBackend` and registers itself; the executor facade, the
batch pipeline and the CLI all dispatch through :func:`backend_for` and
never name a concrete engine again — the `lsst.daf.relation` pattern of
compiling one plan vocabulary to interchangeable engines.

Backends registered out of the box:

* ``NAIVE`` / ``PLANNED`` — registered by :mod:`repro.relational.executor`
  itself (the reference oracle and the row pipeline live there);
* ``COLUMNAR`` — registered by :mod:`repro.relational.columnar`;
* ``SQL`` — registered by :mod:`repro.relational.sqlbackend` (plan trees
  lowered to parameterized SQL on stdlib ``sqlite3``).

Registration is lazy and self-healing: modules that define a backend are
imported on the first :func:`backend_for` miss, so ``backend_for`` works
whether callers imported the package facade or a single module.

Graceful degradation lives here too.  :func:`with_fallback` wraps any
registered engine in a :class:`FallbackBackend`: a *recoverable* failure
(an injected fault, an OS/sqlite operational error, NumPy import loss)
re-executes the query on the PLANNED rows engine — the pure-Python
pipeline with no native dependencies, the engine that keeps answering
when everything else is on fire.  Each wrapped engine carries a
:class:`CircuitBreaker`: after ``failure_threshold`` *consecutive*
recoverable failures the breaker opens and the primary is skipped
outright for ``reset_timeout`` seconds, after which one half-open probe
decides whether it closes again.  Semantic errors — the documented
divergences like :class:`~.errors.TypeMismatchError`, unknown tables or
columns — are contractual, not operational: they never trigger fallback
(the fallback engine would raise them too) and never move the breaker.
"""

from __future__ import annotations

import abc
import sqlite3
import time
from dataclasses import dataclass, field
from enum import Enum
from importlib import import_module
from typing import TYPE_CHECKING, Callable

from ..faults import InjectedFault
from .errors import (
    AmbiguousColumnError,
    EngineError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sql.ast import SelectQuery
    from .executor import ExecutionContext, ExecutionMode, ResultSet


class ExecutionBackend(abc.ABC):
    """One execution engine: turns queries into :class:`~.executor.ResultSet`.

    Implementations set :attr:`mode` to the :class:`~.executor.ExecutionMode`
    they serve and register an *instance* via :func:`register_backend`.
    Backends share the caller's :class:`~.executor.ExecutionContext` — plans,
    scans and memoized subqueries are engine-independent, and per-engine
    state (columnar tables, the SQLite store) hangs off the context's
    version-invalidated caches so database growth invalidates everything
    uniformly.
    """

    #: The mode this backend serves (set by subclasses).
    mode: "ExecutionMode"

    @abc.abstractmethod
    def execute(
        self, query: "SelectQuery", context: "ExecutionContext"
    ) -> "ResultSet":
        """Execute ``query`` against ``context.database``."""

    def explain(self, query: "SelectQuery", context: "ExecutionContext") -> str:
        """EXPLAIN-style rendering; backends may append engine detail."""
        return context.plan(query).describe()


#: mode -> backend instance.  Keyed by the enum member itself.
_REGISTRY: dict["ExecutionMode", ExecutionBackend] = {}

#: mode value -> module that registers the backend on import.  Lets
#: ``backend_for`` self-heal when a caller never imported the engine module.
_LAZY_MODULES: dict[str, str] = {
    "columnar": "repro.relational.columnar",
    "sql": "repro.relational.sqlbackend",
}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register ``backend`` for its mode (last registration wins)."""
    _REGISTRY[backend.mode] = backend
    return backend


def backend_for(mode: "ExecutionMode") -> ExecutionBackend:
    """The registered backend serving ``mode`` (importing it if needed)."""
    backend = _REGISTRY.get(mode)
    if backend is None:
        module = _LAZY_MODULES.get(getattr(mode, "value", ""))
        if module is not None:
            import_module(module)
            backend = _REGISTRY.get(mode)
    if backend is None:
        raise EngineError(f"no execution backend registered for {mode!r}")
    return backend


def registered_modes() -> tuple["ExecutionMode", ...]:
    """Modes with a live backend (lazy ones appear once first used)."""
    return tuple(_REGISTRY)


# ---------------------------------------------------------------------- #
# graceful degradation: recoverability, circuit breakers, fallback
# ---------------------------------------------------------------------- #

#: Errors every engine raises identically by contract (see
#: ``docs/sql_backend.md``'s divergence policy): retrying them on another
#: engine is pointless and would *hide* a semantic bug, so they propagate.
_SEMANTIC_ERRORS = (
    TypeMismatchError,
    UnknownTableError,
    UnknownColumnError,
    AmbiguousColumnError,
)


def is_recoverable(error: BaseException) -> bool:
    """Whether ``error`` is operational (retry elsewhere) vs semantic.

    Recoverable: injected faults, OS-level IO failures, sqlite operational
    errors (raw or already mapped onto the generic :class:`EngineError`),
    and import loss of an optional native dependency (NumPy).  Not
    recoverable: the semantic error classes all engines share, and
    anything unrecognized — an unknown exception class is a bug to
    surface, not a reason to silently re-execute.
    """
    if isinstance(error, _SEMANTIC_ERRORS):
        return False
    if isinstance(error, (InjectedFault, OSError, ImportError, sqlite3.Error)):
        return True
    # The generic EngineError covers mapped sqlite operational failures;
    # its semantic subclasses were already rejected above.
    return type(error) is EngineError


class BreakerState(Enum):
    """Lifecycle of one :class:`CircuitBreaker`."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes.

    CLOSED counts consecutive recoverable failures; hitting
    ``failure_threshold`` opens the breaker, and while OPEN
    :meth:`allow` answers ``False`` (callers skip the primary engine
    without paying for its failure).  ``reset_timeout`` seconds after
    opening, the next :meth:`allow` admits exactly one HALF_OPEN probe:
    its success closes the breaker, its failure re-opens it for another
    full timeout.  ``clock`` is injectable so tests advance time without
    sleeping.
    """

    failure_threshold: int = 3
    reset_timeout: float = 30.0
    clock: Callable[[], float] = time.monotonic
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at: float = field(default=0.0, repr=False)
    #: Lifetime counters (survive close/open cycles) for diagnostics.
    opens: int = 0
    probes: int = 0

    def allow(self) -> bool:
        """Whether the primary engine should be attempted right now."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.clock() - self.opened_at < self.reset_timeout:
                return False
            self.state = BreakerState.HALF_OPEN
            self.probes += 1
            return True
        # HALF_OPEN: one probe is already in flight somewhere; further
        # calls keep falling back until it resolves.
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = BreakerState.CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = self.clock()
            self.opens += 1


#: mode value -> the breaker guarding that engine, shared process-wide so
#: every FallbackBackend (and the serving tier's /healthz) sees one truth.
_BREAKERS: dict[str, CircuitBreaker] = {}


def breaker_for(mode: "ExecutionMode") -> CircuitBreaker:
    """The process-wide breaker guarding ``mode`` (created on first use)."""
    breaker = _BREAKERS.get(mode.value)
    if breaker is None:
        breaker = _BREAKERS[mode.value] = CircuitBreaker()
    return breaker


def breaker_states() -> dict[str, str]:
    """``{mode value: breaker state}`` for every breaker created so far."""
    return {mode: breaker.state.value for mode, breaker in _BREAKERS.items()}


def reset_breakers() -> None:
    """Forget every breaker (test isolation; never needed in production)."""
    _BREAKERS.clear()


class FallbackBackend(ExecutionBackend):
    """Wraps a primary engine with breaker-guarded fallback to another.

    The fallback engine defaults to PLANNED — the dependency-free row
    pipeline.  A primary == fallback wrapper degenerates to a plain
    dispatch (there is nowhere left to fall).  Recoverable primary
    failures re-execute on the fallback and count into
    ``context.stats.fallbacks``; ``context.stats.breaker_state`` mirrors
    the breaker after every execution so batch diagnostics and the
    chaos suite can assert on it.
    """

    def __init__(
        self,
        primary: "ExecutionMode",
        fallback: "ExecutionMode | None" = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        from .executor import ExecutionMode

        self.mode = primary
        self._fallback_mode = fallback if fallback is not None else ExecutionMode.PLANNED
        self._breaker = breaker if breaker is not None else breaker_for(primary)

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    @property
    def fallback_mode(self) -> "ExecutionMode":
        return self._fallback_mode

    def execute(self, query: "SelectQuery", context: "ExecutionContext") -> "ResultSet":
        if self.mode is self._fallback_mode:
            return backend_for(self.mode).execute(query, context)
        breaker = self._breaker
        stats = context.stats
        try:
            if breaker.allow():
                try:
                    result = backend_for(self.mode).execute(query, context)
                except Exception as error:
                    if not is_recoverable(error):
                        raise
                    breaker.record_failure()
                    stats.fallbacks += 1
                    result = backend_for(self._fallback_mode).execute(query, context)
                else:
                    breaker.record_success()
            else:
                stats.breaker_skips += 1
                stats.fallbacks += 1
                result = backend_for(self._fallback_mode).execute(query, context)
        finally:
            stats.breaker_state[self.mode.value] = breaker.state.value
        return result

    def explain(self, query: "SelectQuery", context: "ExecutionContext") -> str:
        return backend_for(self.mode).explain(query, context)


def with_fallback(
    mode: "ExecutionMode", fallback: "ExecutionMode | None" = None
) -> FallbackBackend:
    """A breaker-guarded fallback wrapper around ``mode``.

    Explicitly opt-in: the registry keeps serving raw engines, because the
    differential suites *need* engines that fail loudly (a silently
    falling-back SQL engine would make four-engine differential testing
    test one engine four times).
    """
    return FallbackBackend(mode, fallback=fallback)
