"""Pluggable execution backends: the registry every engine plugs into.

Historically :class:`~repro.relational.executor.Executor` branched on
:class:`~repro.relational.executor.ExecutionMode` with hard-coded imports.
That worked for three engines but made every new engine a cross-cutting
edit (executor, batch, CLI, benchmarks all knew the mode list).  This
module inverts the dependency: an engine implements
:class:`ExecutionBackend` and registers itself; the executor facade, the
batch pipeline and the CLI all dispatch through :func:`backend_for` and
never name a concrete engine again — the `lsst.daf.relation` pattern of
compiling one plan vocabulary to interchangeable engines.

Backends registered out of the box:

* ``NAIVE`` / ``PLANNED`` — registered by :mod:`repro.relational.executor`
  itself (the reference oracle and the row pipeline live there);
* ``COLUMNAR`` — registered by :mod:`repro.relational.columnar`;
* ``SQL`` — registered by :mod:`repro.relational.sqlbackend` (plan trees
  lowered to parameterized SQL on stdlib ``sqlite3``).

Registration is lazy and self-healing: modules that define a backend are
imported on the first :func:`backend_for` miss, so ``backend_for`` works
whether callers imported the package facade or a single module.
"""

from __future__ import annotations

import abc
from importlib import import_module
from typing import TYPE_CHECKING

from .errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sql.ast import SelectQuery
    from .executor import ExecutionContext, ExecutionMode, ResultSet


class ExecutionBackend(abc.ABC):
    """One execution engine: turns queries into :class:`~.executor.ResultSet`.

    Implementations set :attr:`mode` to the :class:`~.executor.ExecutionMode`
    they serve and register an *instance* via :func:`register_backend`.
    Backends share the caller's :class:`~.executor.ExecutionContext` — plans,
    scans and memoized subqueries are engine-independent, and per-engine
    state (columnar tables, the SQLite store) hangs off the context's
    version-invalidated caches so database growth invalidates everything
    uniformly.
    """

    #: The mode this backend serves (set by subclasses).
    mode: "ExecutionMode"

    @abc.abstractmethod
    def execute(
        self, query: "SelectQuery", context: "ExecutionContext"
    ) -> "ResultSet":
        """Execute ``query`` against ``context.database``."""

    def explain(self, query: "SelectQuery", context: "ExecutionContext") -> str:
        """EXPLAIN-style rendering; backends may append engine detail."""
        return context.plan(query).describe()


#: mode -> backend instance.  Keyed by the enum member itself.
_REGISTRY: dict["ExecutionMode", ExecutionBackend] = {}

#: mode value -> module that registers the backend on import.  Lets
#: ``backend_for`` self-heal when a caller never imported the engine module.
_LAZY_MODULES: dict[str, str] = {
    "columnar": "repro.relational.columnar",
    "sql": "repro.relational.sqlbackend",
}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register ``backend`` for its mode (last registration wins)."""
    _REGISTRY[backend.mode] = backend
    return backend


def backend_for(mode: "ExecutionMode") -> ExecutionBackend:
    """The registered backend serving ``mode`` (importing it if needed)."""
    backend = _REGISTRY.get(mode)
    if backend is None:
        module = _LAZY_MODULES.get(getattr(mode, "value", ""))
        if module is not None:
            import_module(module)
            backend = _REGISTRY.get(mode)
    if backend is None:
        raise EngineError(f"no execution backend registered for {mode!r}")
    return backend


def registered_modes() -> tuple["ExecutionMode", ...]:
    """Modes with a live backend (lazy ones appear once first used)."""
    return tuple(_REGISTRY)
