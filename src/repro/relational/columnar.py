"""Vectorized columnar execution backend (``ExecutionMode.COLUMNAR``).

The row pipeline of :mod:`repro.relational.executor` interprets a plan one
tuple at a time: every row pays generator-resume, ``_eval_pred`` dispatch
and tuple-concatenation overhead.  This module interprets the *same*
:class:`~.plan.BlockPlan` batch-at-a-time instead:

* each relation is loaded **once** into a :class:`ColumnarTable` —
  column-major value arrays (NumPy ``int64``/``float64`` when the column is
  homogeneous and NumPy is importable, plain Python lists otherwise);
* operators exchange :class:`Frame` objects: per-slot column vectors with a
  lazily-applied **selection vector** (an index array), so a filter narrows
  a frame without copying any payload column until something reads it;
* comparison predicates compile to column-wise kernels — one NumPy
  ufunc call (or one list comprehension) per predicate instead of one
  ``compare()`` call per row;
* hash joins gather both key columns, pick the **build side by actual
  cardinality** (the smaller input is hashed, the larger streamed), and
  emit matched index pairs instead of concatenated tuples;
* semi-/anti-joins probe the memoized subquery value set with one
  vectorized membership pass; grouped aggregation and distinct run over
  materialized columns at the top of the plan only.

NumPy is optional: every kernel has a pure-Python fallback, so the engine
works (more slowly) in environments without it.  Correctness is defined by
the row engines — the differential suite runs NAIVE, PLANNED and COLUMNAR
over the same workloads and asserts identical ``as_set()`` results.

Type errors mirror the row pipeline at batch granularity: comparing a
string column with a numeric column (or literal) raises
:class:`~.errors.TypeMismatchError` whenever at least one row would have
been compared, and never when the input is empty.  Because schema-typed
columns are homogeneous, that check is one family comparison per kernel
instead of one per row; heterogeneous ("mixed") columns fall back to the
row-at-a-time loop so errors surface exactly as in the oracle.
"""

from __future__ import annotations

import heapq
import operator
import os
from typing import TYPE_CHECKING, Sequence

try:  # NumPy accelerates the numeric kernels but is not required.
    if os.environ.get("REPRO_DISABLE_NUMPY"):  # force the pure-Python
        raise ImportError  # kernels (used by the fallback's own tests)
    import numpy as _np
except ImportError:
    _np = None

from .aggregates import apply_aggregate
from .database import Relation
from .errors import EngineError, TypeMismatchError
from .plan import (
    Aggregate,
    AntiJoin,
    BlockPlan,
    Col,
    CompiledComparison,
    Const,
    Distinct,
    Filter,
    HashJoin,
    NestedLoopJoin,
    PlanNode,
    Project,
    ScalarExpr,
    Scan,
    SemiJoin,
    SubqueryPred,
    TopK,
)
from .values import OrderKey, Value, compare

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .executor import ExecutionContext, ResultSet

#: Cap on materialized (left, right) index pairs per nested-loop chunk.
_NESTED_LOOP_CHUNK_PAIRS = 4_000_000

_PY_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _family(value: Value) -> str:
    return "num" if isinstance(value, (int, float)) else "str"


def _families_of(values: Sequence[Value]) -> str:
    """The family of a materialized vector: num, str, mixed or empty."""
    families = set()
    for value in values:
        families.add("num" if isinstance(value, (int, float)) else "str")
        if len(families) > 1:
            return "mixed"
    if not families:
        return "empty"
    return families.pop()


# ---------------------------------------------------------------------- #
# columnar storage
# ---------------------------------------------------------------------- #


class Column:
    """One column of a loaded relation: a value array plus its type family.

    ``data`` is a NumPy ``int64``/``float64`` array when the column is
    homogeneous numeric of one Python type (so round-tripping through
    ``.tolist()`` reproduces the exact row-engine values) and NumPy is
    available; otherwise a plain Python list.
    """

    __slots__ = ("data", "family")

    def __init__(self, data, family: str) -> None:
        self.data = data
        self.family = family

    def __len__(self) -> int:
        return len(self.data)

    @classmethod
    def from_values(cls, values: list[Value]) -> "Column":
        family = _families_of(values)
        if _np is not None and family == "num" and values:
            first_type = type(values[0])
            if first_type in (int, float) and all(type(v) is first_type for v in values):
                try:
                    dtype = _np.int64 if first_type is int else _np.float64
                    return cls(_np.asarray(values, dtype=dtype), family)
                except OverflowError:  # ints beyond int64: keep the list
                    pass
        return cls(list(values), family)


class ColumnarTable:
    """A relation loaded column-major, built once per database version."""

    __slots__ = ("name", "columns", "cols", "nrows")

    def __init__(self, name: str, columns: tuple[str, ...], cols: list[Column]) -> None:
        self.name = name
        self.columns = columns
        self.cols = cols
        self.nrows = len(cols[0]) if cols else 0

    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnarTable":
        cols = [
            Column.from_values([row[name] for row in relation.rows])
            for name in relation.columns
        ]
        return cls(relation.name, relation.columns, cols)


# ---------------------------------------------------------------------- #
# frames: slot vectors + lazy selection vectors
# ---------------------------------------------------------------------- #


def _as_index(seq):
    """Normalize a selection vector (NumPy int array when available)."""
    if _np is not None and not isinstance(seq, _np.ndarray):
        return _np.asarray(seq, dtype=_np.int64)
    return seq


def _index_list(index) -> list[int]:
    if _np is not None and isinstance(index, _np.ndarray):
        return index.tolist()
    return index


def _gather(data, index):
    """``data[index]`` for either storage kind; ``index=None`` is identity."""
    if index is None:
        return data
    if _np is not None and isinstance(data, _np.ndarray):
        return data[index]
    return [data[i] for i in _index_list(index)]


def _compose(old, new):
    """The selection vector equivalent to applying ``old`` then ``new``."""
    if old is None:
        return new
    if _np is not None and isinstance(old, _np.ndarray):
        return old[new]
    new_list = _index_list(new)
    return [old[i] for i in new_list]


class _Slot:
    """One frame column: source data + selection vector, materialized lazily."""

    __slots__ = ("data", "family", "index", "_mat")

    def __init__(self, data, family: str | None, index=None) -> None:
        self.data = data
        self.family = family
        self.index = index
        self._mat = None

    def vector(self):
        if self.index is None:
            return self.data
        if self._mat is None:
            self._mat = _gather(self.data, self.index)
        return self._mat

    def taken(self, index) -> "_Slot":
        return _Slot(self.data, self.family, _compose(self.index, index))


class Frame:
    """A batch of rows as per-slot column vectors (the operator currency)."""

    __slots__ = ("nrows", "slots", "_rows")

    def __init__(self, nrows: int, slots: list[_Slot]) -> None:
        self.nrows = nrows
        self.slots = slots
        self._rows = None

    @classmethod
    def from_table(cls, table: ColumnarTable) -> "Frame":
        return cls(table.nrows, [_Slot(c.data, c.family) for c in table.cols])

    @classmethod
    def from_rows(cls, rows: list[tuple], width: int) -> "Frame":
        columns = list(map(list, zip(*rows))) if rows else [[] for _ in range(width)]
        frame = cls(len(rows), [_Slot(col, None) for col in columns])
        frame._rows = rows
        return frame

    def vector(self, slot: int):
        return self.slots[slot].vector()

    def family(self, slot: int) -> str:
        entry = self.slots[slot]
        if entry.family is None:
            entry.family = _families_of(self.values_list(slot))
        return entry.family

    def values_list(self, slot: int) -> list[Value]:
        """The slot's values as a plain Python list (NumPy scalars unboxed)."""
        vec = self.vector(slot)
        if _np is not None and isinstance(vec, _np.ndarray):
            return vec.tolist()
        return vec

    def take(self, index) -> "Frame":
        index = _as_index(index)
        return Frame(len(index), [slot.taken(index) for slot in self.slots])

    def rows(self) -> list[tuple]:
        if self._rows is None:
            if not self.slots or self.nrows == 0:
                self._rows = []
            else:
                self._rows = list(zip(*(self.values_list(i) for i in range(len(self.slots)))))
        return self._rows


def _concat(left: Frame, right: Frame) -> Frame:
    assert left.nrows == right.nrows
    return Frame(left.nrows, left.slots + right.slots)


def _empty_like(left: Frame, right: Frame) -> Frame:
    empty = _as_index([])
    return _concat(left.take(empty), right.take(empty))


# ---------------------------------------------------------------------- #
# scalar-expression and predicate kernels
# ---------------------------------------------------------------------- #


def _scalar_value(expr: ScalarExpr, params: tuple) -> Value:
    if type(expr) is Const:
        return expr.value
    return params[expr.index]  # Param


def _expr_values(expr: ScalarExpr, frame: Frame, params: tuple):
    """``(is_vector, payload)``: a slot's value list or a scalar constant."""
    if type(expr) is Col:
        return True, frame.values_list(expr.slot)
    return False, _scalar_value(expr, params)


_NP_OPS = None
if _np is not None:
    _NP_OPS = {
        "=": _np.equal,
        "<>": _np.not_equal,
        "<": _np.less,
        "<=": _np.less_equal,
        ">": _np.greater,
        ">=": _np.greater_equal,
    }


def _positions_from_mask(mask) -> list[int]:
    if _np is not None and isinstance(mask, _np.ndarray):
        return _np.nonzero(mask)[0]
    return [i for i, keep in enumerate(mask) if keep]


def _comparison_positions(frame: Frame, pred: CompiledComparison, params: tuple):
    """Selection vector of rows satisfying a compiled comparison."""
    if frame.nrows == 0:
        return _as_index([])
    left, op, right = pred.left, pred.op, pred.right

    # Normalize "scalar op vector" to "vector op scalar" by flipping.
    if type(left) is not Col and type(right) is Col:
        left, right, op = right, left, _FLIP[op]

    if type(left) is not Col:  # row-independent: evaluate once
        holds = compare(_scalar_value(left, params), op, _scalar_value(right, params))
        return _as_index(list(range(frame.nrows)) if holds else [])

    lfam = frame.family(left.slot)
    if type(right) is Col:
        rfam = frame.family(right.slot)
        if lfam == "mixed" or rfam == "mixed":
            lvec = frame.values_list(left.slot)
            rvec = frame.values_list(right.slot)
            return _as_index(
                [i for i, (a, b) in enumerate(zip(lvec, rvec)) if compare(a, op, b)]
            )
        if lfam != rfam:
            raise TypeMismatchError(f"cannot compare {lfam} column with {rfam} column")
        ldata = frame.vector(left.slot)
        rdata = frame.vector(right.slot)
        if (
            _np is not None
            and isinstance(ldata, _np.ndarray)
            and isinstance(rdata, _np.ndarray)
        ):
            return _positions_from_mask(_NP_OPS[op](ldata, rdata))
        fn = _PY_OPS[op]
        lvec = frame.values_list(left.slot)
        rvec = frame.values_list(right.slot)
        return _as_index([i for i, (a, b) in enumerate(zip(lvec, rvec)) if fn(a, b)])

    scalar = _scalar_value(right, params)
    sfam = _family(scalar)
    if lfam == "mixed":
        lvec = frame.values_list(left.slot)
        return _as_index([i for i, v in enumerate(lvec) if compare(v, op, scalar)])
    if lfam != sfam:
        raise TypeMismatchError(
            f"cannot compare {lfam} column with {type(scalar).__name__}"
        )
    data = frame.vector(left.slot)
    if _np is not None and isinstance(data, _np.ndarray):
        return _positions_from_mask(_NP_OPS[op](data, scalar))
    fn = _PY_OPS[op]
    return _as_index([i for i, v in enumerate(data) if fn(v, scalar)])


def _subquery_positions(
    frame: Frame, pred: SubqueryPred, params: tuple, context: "ExecutionContext"
) -> list[int]:
    """Rows satisfying a residual subquery predicate (memoized per params)."""
    columns = [_expr_values(e, frame, params) for e in pred.param_exprs]
    value_column = (
        _expr_values(pred.value_expr, frame, params)
        if pred.value_expr is not None
        else None
    )
    negated = pred.negated
    keep: list[int] = []
    for i in range(frame.nrows):
        actual = tuple(
            payload[i] if is_vector else payload for is_vector, payload in columns
        )
        if pred.kind == "exists":
            found = context.subquery_exists(
                pred.plan, actual, runner=run_plan_nonempty
            )
            ok = not found if negated else found
        else:
            is_vector, payload = value_column
            value = payload[i] if is_vector else payload
            values = context.subquery_values(pred.plan, actual, runner=run_plan_rows)
            if pred.kind == "in":
                found = values.contains(value)
                ok = not found if negated else found
            else:
                holds = values.quantified(value, pred.op, pred.quantifier)
                ok = not holds if negated else holds
        if ok:
            keep.append(i)
    return keep


def _apply_predicates_tracked(
    frame: Frame, predicates, params: tuple, context: "ExecutionContext"
):
    """Conjunction of predicates as successive selection-vector narrowings.

    Each predicate only sees rows surviving the previous ones, mirroring
    the row engine's per-row short-circuit at batch granularity.  Returns
    the narrowed frame plus the cumulative selection vector relative to
    the input frame (``None`` when every row survived).
    """
    cumulative = None
    for pred in predicates:
        if frame.nrows == 0:
            break
        if type(pred) is CompiledComparison:
            positions = _comparison_positions(frame, pred, params)
        else:
            positions = _subquery_positions(frame, pred, params, context)
        frame = frame.take(positions)
        cumulative = positions if cumulative is None else _compose(cumulative, positions)
    return frame, cumulative


def _apply_predicates(
    frame: Frame, predicates, params: tuple, context: "ExecutionContext"
) -> Frame:
    return _apply_predicates_tracked(frame, predicates, params, context)[0]


# ---------------------------------------------------------------------- #
# operators
# ---------------------------------------------------------------------- #


def _run_scan(node: Scan, context: "ExecutionContext", params: tuple) -> Frame:
    table = context.columnar_table(context.database.relation(node.table))
    return Frame.from_table(table)


def _run_filter(node: Filter, context: "ExecutionContext", params: tuple) -> Frame:
    frame = _run_node(node.child, context, params)
    return _apply_predicates(frame, node.predicates, params, context)


def _check_join_families(
    build_frame: Frame,
    build_keys: tuple[ScalarExpr, ...],
    probe_frame: Frame,
    probe_keys: tuple[ScalarExpr, ...],
) -> None:
    """Mirror the row engine's join type errors at batch granularity.

    The row engine raises when a probe value's family is not among the
    build side's key families (or the build side mixes families); with
    homogeneous columns this is one family comparison per key column.
    """
    for position, (bk, pk) in enumerate(zip(build_keys, probe_keys)):
        bfam = (
            build_frame.family(bk.slot)
            if type(bk) is Col
            else _family(_scalar_value(bk, ()))
        )
        pfam = (
            probe_frame.family(pk.slot)
            if type(pk) is Col
            else _family(_scalar_value(pk, ()))
        )
        if bfam == "mixed":
            raise TypeMismatchError(
                f"join key {position} mixes string and numeric values"
            )
        if pfam == "mixed" or bfam != pfam:
            raise TypeMismatchError(
                f"cannot compare {pfam} values with {bfam} values of join key {position}"
            )


def _key_rows(frame: Frame, keys: tuple[ScalarExpr, ...], params: tuple) -> list:
    """Hashable join-key values per row (tuples for composite keys)."""
    vectors = []
    for expr in keys:
        is_vector, payload = _expr_values(expr, frame, params)
        vectors.append(payload if is_vector else [payload] * frame.nrows)
    if len(vectors) == 1:
        return vectors[0]
    return list(zip(*vectors))


def _np_join_pairs(build_keys, probe_keys):
    """Matching (build_row, probe_row) index pairs, fully vectorized.

    Sort-based equivalent of the hash join for NumPy key arrays: factorize
    the build keys with ``unique``, locate every probe key by binary
    search, then expand matches through a CSR-style (offsets, counts)
    layout — one ``repeat``/``arange`` pass instead of a Python probe loop.
    """
    unique_keys, build_groups = _np.unique(build_keys, return_inverse=True)
    order = _np.argsort(build_groups, kind="stable")
    counts = _np.bincount(build_groups, minlength=len(unique_keys))
    offsets = _np.concatenate(([0], _np.cumsum(counts)[:-1]))

    slot = _np.searchsorted(unique_keys, probe_keys)
    slot = _np.minimum(slot, len(unique_keys) - 1)
    matched = unique_keys[slot] == probe_keys
    probe_rows = _np.nonzero(matched)[0]
    groups = slot[matched]
    group_counts = counts[groups]
    total = int(group_counts.sum())
    empty = _np.empty(0, dtype=_np.int64)
    if total == 0:
        return empty, empty
    probe_expanded = _np.repeat(probe_rows, group_counts)
    starts = _np.repeat(offsets[groups], group_counts)
    running = _np.cumsum(group_counts)
    within = _np.arange(total, dtype=_np.int64) - _np.repeat(
        running - group_counts, group_counts
    )
    return order[starts + within], probe_expanded


def _run_hash_join(node: HashJoin, context: "ExecutionContext", params: tuple) -> Frame:
    left = _run_node(node.left, context, params)
    right = _run_node(node.right, context, params)
    # The row engine returns without error when the build (right) side is
    # empty, and never type-checks when no probe row is reached.
    if right.nrows == 0 or left.nrows == 0:
        return _empty_like(left, right)
    _check_join_families(right, node.right_keys, left, node.left_keys)

    # Build on the smaller input: estimated cardinality decided the join
    # *order* at plan time; actual cardinality decides the build side here.
    build_frame, build_key_exprs, probe_frame, probe_key_exprs, build_is_left = (
        (left, node.left_keys, right, node.right_keys, True)
        if left.nrows <= right.nrows
        else (right, node.right_keys, left, node.left_keys, False)
    )

    build_idx = probe_idx = None
    if _np is not None and len(build_key_exprs) == 1:
        bk, pk = build_key_exprs[0], probe_key_exprs[0]
        if type(bk) is Col and type(pk) is Col:
            build_vec = build_frame.vector(bk.slot)
            probe_vec = probe_frame.vector(pk.slot)
            if isinstance(build_vec, _np.ndarray) and isinstance(probe_vec, _np.ndarray):
                build_idx, probe_idx = _np_join_pairs(build_vec, probe_vec)

    if build_idx is None:
        build_keys = _key_rows(build_frame, build_key_exprs, params)
        probe_keys = _key_rows(probe_frame, probe_key_exprs, params)
        table: dict = {}
        for position, key in enumerate(build_keys):
            bucket = table.get(key)
            if bucket is None:
                table[key] = [position]
            else:
                bucket.append(position)
        build_idx = []
        probe_idx = []
        for position, key in enumerate(probe_keys):
            bucket = table.get(key)
            if bucket is not None:
                if len(bucket) == 1:
                    build_idx.append(bucket[0])
                    probe_idx.append(position)
                else:
                    build_idx.extend(bucket)
                    probe_idx.extend([position] * len(bucket))

    if build_is_left:
        l_idx, r_idx = build_idx, probe_idx
    else:
        l_idx, r_idx = probe_idx, build_idx
    return _concat(left.take(l_idx), right.take(r_idx))


def _run_nested_loop(
    node: NestedLoopJoin, context: "ExecutionContext", params: tuple
) -> Frame:
    left = _run_node(node.left, context, params)
    right = _run_node(node.right, context, params)
    if left.nrows == 0 or right.nrows == 0:
        return _empty_like(left, right)
    nl, nr = left.nrows, right.nrows
    chunk = max(1, _NESTED_LOOP_CHUNK_PAIRS // nr)
    surviving_l: list[int] = []
    surviving_r: list[int] = []
    for start in range(0, nl, chunk):
        stop = min(start + chunk, nl)
        span = stop - start
        if _np is not None:
            l_idx = _np.repeat(_np.arange(start, stop, dtype=_np.int64), nr)
            r_idx = _np.tile(_np.arange(nr, dtype=_np.int64), span)
        else:
            l_idx = [i for i in range(start, stop) for _ in range(nr)]
            r_idx = list(range(nr)) * span
        combined = _concat(left.take(l_idx), right.take(r_idx))
        _, kept = _apply_predicates_tracked(combined, node.predicates, params, context)
        if kept is None:  # every pair of the chunk survived
            surviving_l.extend(_index_list(l_idx))
            surviving_r.extend(_index_list(r_idx))
        else:
            surviving_l.extend(_index_list(_gather(l_idx, kept)))
            surviving_r.extend(_index_list(_gather(r_idx, kept)))
    return _concat(left.take(surviving_l), right.take(surviving_r))


def _run_semi_join(node: SemiJoin, context: "ExecutionContext", params: tuple) -> Frame:
    from .executor import _eval_expr

    child = _run_node(node.child, context, params)
    anti = type(node) is AntiJoin
    if child.nrows == 0:
        return child
    actual = tuple(_eval_expr(e, (), params) for e in node.param_exprs)
    values = context.subquery_values(node.plan, actual, runner=run_plan_rows)
    probe = node.probe
    if type(probe) is not Col:
        scalar = _scalar_value(probe, params)
        ok = values.contains(scalar) != anti
        return child if ok else child.take(_as_index([]))
    if not values.values:
        return child if anti else child.take(_as_index([]))
    data = child.vector(probe.slot)
    if (
        _np is not None
        and isinstance(data, _np.ndarray)
        and values.family == "num"
    ):
        mask = _np.isin(data, list(values.as_set()))
        if anti:
            mask = ~mask
        return child.take(_positions_from_mask(mask))
    probe_values = child.values_list(probe.slot)
    if values.family == child.family(probe.slot) and values.family in ("num", "str"):
        members = values.as_set()
        keep = [i for i, v in enumerate(probe_values) if (v in members) != anti]
    else:
        keep = [i for i, v in enumerate(probe_values) if values.contains(v) != anti]
    return child.take(keep)


def _run_project(node: Project, context: "ExecutionContext", params: tuple) -> Frame:
    child = _run_node(node.child, context, params)
    slots: list[_Slot] = []
    for expr in node.exprs:
        if type(expr) is Col:
            slots.append(child.slots[expr.slot])
        else:
            value = _scalar_value(expr, params)
            slots.append(_Slot([value] * child.nrows, _family(value)))
    return Frame(child.nrows, slots)


def _run_distinct(node: Distinct, context: "ExecutionContext", params: tuple) -> Frame:
    child = _run_node(node.child, context, params)
    deduped = list(dict.fromkeys(child.rows()))
    return Frame.from_rows(deduped, len(child.slots))


def _run_aggregate(node: Aggregate, context: "ExecutionContext", params: tuple) -> Frame:
    child = _run_node(node.child, context, params)
    n = child.nrows
    key_columns = [_expr_values(e, child, params) for e in node.group_exprs]
    buckets: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for i in range(n):
        key = tuple(
            payload[i] if is_vector else payload for is_vector, payload in key_columns
        )
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [i]
            order.append(key)
        else:
            bucket.append(i)
    item_columns = []
    for item in node.items:
        if item[0] == "col":
            item_columns.append(_expr_values(item[1], child, params))
        else:
            _, _func, expr = item
            item_columns.append(
                _expr_values(expr, child, params) if expr is not None else None
            )
    rows: list[tuple] = []
    for key in order:
        positions = buckets[key]
        out: list[Value] = []
        for item, column in zip(node.items, item_columns):
            if item[0] == "col":
                is_vector, payload = column
                out.append(payload[positions[0]] if is_vector else payload)
            else:
                _, func, expr = item
                if expr is None:
                    out.append(apply_aggregate("COUNT", [1] * len(positions)))
                else:
                    is_vector, payload = column
                    values = (
                        [payload[p] for p in positions]
                        if is_vector
                        else [payload] * len(positions)
                    )
                    out.append(apply_aggregate(func, values))
        rows.append(tuple(out))
    return Frame.from_rows(rows, len(node.items))


def _topk_order(
    child: Frame,
    keys: tuple[ScalarExpr, ...],
    descending: tuple[bool, ...],
    params: tuple,
    cutoff: int | None,
    stats,
):
    """Indices of the top ``cutoff`` rows of ``child`` in rank order.

    NumPy path (all key columns numeric arrays): partial selection via
    ``argpartition`` on the primary key — descending keys are negated,
    which is only well-defined for numbers, hence the numeric gate — then
    a stable ``lexsort`` refinement over the surviving candidates.  With a
    single key the ``cutoff`` partitioned rows are exactly the answer (any
    subset of boundary ties is acceptable: full-key ties rank arbitrarily);
    with compound keys the candidate set is widened to *every* row tied
    with the partition boundary on the primary key, because a boundary tie
    excluded by ``argpartition`` could still win on a secondary key.

    Fallback (strings, mixed columns, no NumPy): a bounded heap of row
    indices keyed by :class:`~.values.OrderKey` — the same comparator the
    row engines rank with.
    """
    n = child.nrows
    np_vectors = None
    if _np is not None:
        np_vectors = []
        for expr in keys:
            vec = child.vector(expr.slot) if type(expr) is Col else None
            if vec is None or not isinstance(vec, _np.ndarray):
                np_vectors = None
                break
            np_vectors.append(vec)
    if np_vectors is not None:
        adjusted = [
            -vec if desc else vec for vec, desc in zip(np_vectors, descending)
        ]
        if cutoff is not None and cutoff < n:
            primary = adjusted[0]
            part = _np.argpartition(primary, cutoff - 1)[:cutoff]
            if len(adjusted) == 1:
                candidates = part
            else:
                boundary = primary[part].max()
                candidates = _np.nonzero(primary <= boundary)[0]
            stats.topk_held_rows = max(stats.topk_held_rows, len(candidates))
            ranked = candidates[
                _np.lexsort(tuple(a[candidates] for a in reversed(adjusted)))
            ]
            return ranked[:cutoff]
        stats.topk_held_rows = max(stats.topk_held_rows, n)
        return _np.lexsort(tuple(reversed(adjusted)))

    columns = [_expr_values(expr, child, params) for expr in keys]

    def key_of(i: int) -> OrderKey:
        return OrderKey(
            tuple(
                payload[i] if is_vector else payload
                for is_vector, payload in columns
            ),
            descending,
        )

    if cutoff is not None and cutoff < n:
        ranked = heapq.nsmallest(cutoff, range(n), key=key_of)
    else:
        ranked = sorted(range(n), key=key_of)
    stats.topk_held_rows = max(stats.topk_held_rows, len(ranked))
    return ranked


def _run_topk_distinct(
    node: TopK, child: Frame, cutoff: int | None, stats, params: tuple
) -> Frame:
    """Fused DISTINCT + TopK: rank raw vectors first, dedup candidates only.

    Ranking happens on the child's (possibly NumPy) columns *before* any
    tuple materialization; only the ranked candidate prefix is gathered
    into rows and deduplicated in rank order.  The candidate count starts
    at the cutoff and grows geometrically until the prefix holds enough
    distinct rows: the top-``m`` prefix contains every row ranked strictly
    below its boundary key, so once ``cutoff`` distinct rows emerge, any
    distinct row left outside the prefix can at best tie the boundary —
    and boundary ties are the final, arbitrarily-truncated group anyway.
    """
    n = child.nrows
    width = len(child.slots)
    offset = node.offset
    if cutoff is None or cutoff >= n:
        order = _topk_order(child, node.keys, node.descending, params, None, stats)
        rows = list(dict.fromkeys(child.take(_as_index(order)).rows()))
        return Frame.from_rows(rows[offset:cutoff], width)
    m = cutoff
    while True:
        order = _topk_order(child, node.keys, node.descending, params, m, stats)
        rows = list(dict.fromkeys(child.take(_as_index(order)).rows()))
        if len(rows) >= cutoff or m >= n:
            return Frame.from_rows(rows[offset:cutoff], width)
        m = min(n, m * 8)


def _run_topk(node: TopK, context: "ExecutionContext", params: tuple) -> Frame:
    child = _run_node(node.child, context, params)
    stats = context.stats
    stats.topk_input_rows += child.nrows
    limit, offset = node.limit, node.offset
    cutoff = None if limit is None else limit + offset
    if not node.keys:
        # Bare LIMIT: batch operators have already produced the child
        # frame, so "laziness" here is just a head slice of the selection
        # vector — no payload column is gathered beyond the cutoff.
        if cutoff is None:  # pragma: no cover - planner never emits this
            return child
        if node.distinct:
            rows: list[tuple] = []
            seen: set[tuple] = set()
            for row in child.rows():
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
                    if len(rows) >= cutoff:
                        break
            return Frame.from_rows(rows[offset:], len(child.slots))
        stop = min(cutoff, child.nrows)
        return child.take(_as_index(list(range(min(offset, stop), stop))))
    if node.distinct:
        return _run_topk_distinct(node, child, cutoff, stats, params)
    order = _topk_order(
        child, node.keys, node.descending, params, cutoff, stats
    )
    if cutoff is not None:
        order = order[offset:cutoff]
    elif offset:  # pragma: no cover - parser requires LIMIT before OFFSET
        order = order[offset:]
    return child.take(_as_index(order))


_NODE_HANDLERS = {
    Scan: _run_scan,
    Filter: _run_filter,
    HashJoin: _run_hash_join,
    NestedLoopJoin: _run_nested_loop,
    SemiJoin: _run_semi_join,
    AntiJoin: _run_semi_join,
    Project: _run_project,
    Distinct: _run_distinct,
    Aggregate: _run_aggregate,
    TopK: _run_topk,
}


def _run_node(node: PlanNode, context: "ExecutionContext", params: tuple) -> Frame:
    handler = _NODE_HANDLERS.get(type(node))
    if handler is None:
        raise EngineError(f"unsupported plan node: {type(node).__name__}")
    return handler(node, context, params)


# ---------------------------------------------------------------------- #
# entry points
# ---------------------------------------------------------------------- #


def run_plan_rows(
    plan: BlockPlan, context: "ExecutionContext", params: tuple = ()
) -> list[tuple]:
    """Evaluate a block plan's operator tree columnar; return row tuples.

    This is the *subplan runner* handed to the execution context's
    memoized subquery evaluation, so nested blocks of a columnar query run
    columnar too (prechecks are applied by the context before calling).
    """
    return _run_node(plan.root, context, params).rows()


def run_plan_nonempty(
    plan: BlockPlan, context: "ExecutionContext", params: tuple = ()
) -> list[tuple]:
    """Existence-only subplan runner: never materializes row tuples.

    Batch operators can't stream, so the operator tree runs in full either
    way — but an EXISTS probe only needs the final frame's row *count*,
    and skipping the per-row tuple materialization matters when the
    subquery result is large (hub keys under zipfian skew).
    """
    return [()] if _run_node(plan.root, context, params).nrows else []


def run_block_columnar(
    plan: BlockPlan, context: "ExecutionContext", params: tuple = ()
) -> "ResultSet":
    """Execute a compiled block plan with the columnar backend."""
    from .executor import ResultSet, _prechecks_pass

    if not _prechecks_pass(plan, context, params):
        return ResultSet(columns=plan.columns, rows=())
    rows = _run_node(plan.root, context, params).rows()
    return ResultSet(columns=plan.columns, rows=tuple(rows))


# ---------------------------------------------------------------------- #
# backend registration
# ---------------------------------------------------------------------- #


def _register() -> None:
    # Imported here, not at module top: executor.py only references this
    # module lazily, and resolving the enum inside the function keeps the
    # import graph acyclic no matter which module loads first.
    from .backends import ExecutionBackend, register_backend
    from .executor import ExecutionMode

    class _ColumnarBackend(ExecutionBackend):
        """``COLUMNAR``: the vectorized engine behind the backend registry."""

        mode = ExecutionMode.COLUMNAR

        def execute(self, query, context: "ExecutionContext") -> "ResultSet":
            from ..faults import fault_point

            # Chaos stand-in for the engine's real operational failure
            # modes (NumPy import loss mid-flight, kernel OOM): a
            # FallbackBackend re-executes on the rows engine.
            fault_point("engine.columnar.execute")
            context.refresh()
            return run_block_columnar(context.plan(query), context)

    register_backend(_ColumnarBackend())


_register()
