"""In-memory relational database.

Tables are stored as lists of row dictionaries keyed by attribute name (the
attribute order of the schema is preserved for deterministic iteration).  The
database is deliberately simple — its job is to give the SQL executor and the
FOL/logic-tree evaluator a common ground truth so we can check that every
transformation in the QueryVis pipeline preserves query semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..catalog.schema import Schema, Table
from .errors import UnknownColumnError, UnknownTableError
from .values import Value

Row = dict[str, Value]


@dataclass
class Relation:
    """A named relation: ordered column names plus a list of rows."""

    name: str
    columns: tuple[str, ...]
    rows: list[Row] = field(default_factory=list)

    def insert(self, values: Sequence[Value] | Mapping[str, Value]) -> Row:
        """Insert one row given either positional values or a mapping."""
        if isinstance(values, Mapping):
            unknown = set(values) - set(self.columns)
            if unknown:
                raise UnknownColumnError(
                    f"columns {sorted(unknown)} do not exist in {self.name}"
                )
            row = {column: values.get(column) for column in self.columns}
        else:
            if len(values) != len(self.columns):
                raise ValueError(
                    f"{self.name} expects {len(self.columns)} values, got {len(values)}"
                )
            row = dict(zip(self.columns, values))
        self.rows.append(row)
        return row

    def column_values(self, column: str) -> list[Value]:
        """All values of one column (bag semantics, in insertion order)."""
        if column not in self.columns:
            raise UnknownColumnError(f"{self.name} has no column {column!r}")
        return [row[column] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)


class Database:
    """A collection of relations conforming to a :class:`Schema`."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._relations: dict[str, Relation] = {}
        for table in schema:
            self._relations[table.name.lower()] = Relation(
                name=table.name, columns=table.attribute_names
            )

    # ------------------------------------------------------------------ #
    # loading data
    # ------------------------------------------------------------------ #

    def insert(self, table_name: str, values: Sequence[Value] | Mapping[str, Value]) -> Row:
        """Insert a single row into ``table_name``.

        When ``values`` is a mapping, columns that are not mentioned receive a
        type-appropriate default (empty string / 0 / 0.0) because the
        supported SQL fragment has no NULLs (Section 4.7).
        """
        if isinstance(values, Mapping):
            table = self.table_def(table_name)
            defaults = {"int": 0, "float": 0.0, "str": ""}
            filled = {
                attribute.name: values.get(attribute.name, defaults[attribute.dtype])
                for attribute in table.attributes
            }
            unknown = set(values) - {attribute.name for attribute in table.attributes}
            if unknown:
                raise UnknownColumnError(
                    f"columns {sorted(unknown)} do not exist in {table.name}"
                )
            return self.relation(table_name).insert(filled)
        return self.relation(table_name).insert(values)

    def insert_many(
        self, table_name: str, rows: Iterable[Sequence[Value] | Mapping[str, Value]]
    ) -> int:
        """Insert many rows; returns the number inserted."""
        relation = self.relation(table_name)
        count = 0
        for row in rows:
            relation.insert(row)
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def relation(self, table_name: str) -> Relation:
        """Return the relation for ``table_name`` (case-insensitive)."""
        relation = self._relations.get(table_name.lower())
        if relation is None:
            raise UnknownTableError(
                f"table {table_name!r} is not part of schema {self.schema.name}"
            )
        return relation

    def table_def(self, table_name: str) -> Table:
        return self.schema.table(table_name)

    def dtypes(self, table_name: str) -> tuple[str, ...]:
        """Per-column declared dtypes (``"int"``/``"float"``/``"str"``).

        Ordered like :attr:`Relation.columns` — the contract backends rely
        on for typed storage: the columnar engine's array choice and the
        SQL backend's DDL generation + static type-family checks both read
        the schema through this.
        """
        return tuple(
            attribute.dtype for attribute in self.table_def(table_name).attributes
        )

    def table_names(self) -> tuple[str, ...]:
        return tuple(relation.name for relation in self._relations.values())

    def row_count(self, table_name: str) -> int:
        return len(self.relation(table_name))

    def total_rows(self) -> int:
        return sum(len(relation) for relation in self._relations.values())
