"""Value comparison semantics for the relational engine.

The supported fragment uses 2-valued logic without NULLs (Section 4.7), so
comparisons are total within a type family: numbers compare numerically,
strings compare lexicographically, and comparing a number with a string is a
type error rather than silently false.
"""

from __future__ import annotations

from typing import Union

from .errors import TypeMismatchError

Value = Union[int, float, str]

_NUMERIC_TYPES = (int, float)


def values_comparable(left: Value, right: Value) -> bool:
    """Return True if the two values belong to the same comparison family."""
    if isinstance(left, _NUMERIC_TYPES) and isinstance(right, _NUMERIC_TYPES):
        return True
    return isinstance(left, str) and isinstance(right, str)


class OrderKey:
    """A sort key over a tuple of values with per-position direction flags.

    Strings cannot be negated, so descending order cannot be expressed by
    flipping the value; instead this comparator reverses the ``<`` test at
    every position whose ``descending`` flag is set.  Comparing keys whose
    values are not in the same type family raises
    :class:`~.errors.TypeMismatchError`, matching ``compare``'s semantics —
    ranked output inherits the engine's no-silent-coercion rule.

    Shared by the planned row engine (heap element key), the columnar
    engine's pure-Python fallback and the naive oracle's full sort, so all
    three rank by identical comparison semantics.
    """

    __slots__ = ("values", "descending")

    def __init__(self, values: tuple[Value, ...], descending: tuple[bool, ...]):
        self.values = values
        self.descending = descending

    def __lt__(self, other: "OrderKey") -> bool:
        for mine, theirs, desc in zip(self.values, other.values, self.descending):
            if not values_comparable(mine, theirs):
                raise TypeMismatchError(
                    f"cannot order {type(mine).__name__} against "
                    f"{type(theirs).__name__} in the same ORDER BY key"
                )
            if mine == theirs:
                continue
            return (mine > theirs) if desc else (mine < theirs)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderKey):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)


def compare(left: Value, op: str, right: Value) -> bool:
    """Apply a comparison operator from the supported fragment.

    Raises
    ------
    TypeMismatchError
        When ``left`` and ``right`` are not comparable (e.g. str vs number).
    ValueError
        When ``op`` is not one of the six supported operators.
    """
    if not values_comparable(left, right):
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unsupported operator {op!r}")
