"""Value comparison semantics for the relational engine.

The supported fragment uses 2-valued logic without NULLs (Section 4.7), so
comparisons are total within a type family: numbers compare numerically,
strings compare lexicographically, and comparing a number with a string is a
type error rather than silently false.
"""

from __future__ import annotations

from typing import Union

from .errors import TypeMismatchError

Value = Union[int, float, str]

_NUMERIC_TYPES = (int, float)


def values_comparable(left: Value, right: Value) -> bool:
    """Return True if the two values belong to the same comparison family."""
    if isinstance(left, _NUMERIC_TYPES) and isinstance(right, _NUMERIC_TYPES):
        return True
    return isinstance(left, str) and isinstance(right, str)


def compare(left: Value, op: str, right: Value) -> bool:
    """Apply a comparison operator from the supported fragment.

    Raises
    ------
    TypeMismatchError
        When ``left`` and ``right`` are not comparable (e.g. str vs number).
    ValueError
        When ``op`` is not one of the six supported operators.
    """
    if not values_comparable(left, right):
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unsupported operator {op!r}")
