"""``ExecutionMode.SQL``: execute lowered plans on stdlib ``sqlite3``.

The backend composes the two halves of this package: the
:class:`~.store.SQLiteStore` (schema DDL + bulk load, cached per database
version on the execution context) and :func:`~.lower.lower_query` (plan →
parameterized SQL, cached per plan).  Execution is then a single
``connection.execute`` with the bind dictionary, and the cursor's tuples
*are* the engine's row representation — SQLite adapts ``INTEGER`` /
``REAL`` / ``TEXT`` back to ``int`` / ``float`` / ``str``, exactly the
:data:`~repro.relational.values.Value` union.

Error taxonomy: anything ``sqlite3`` raises is mapped onto the shared
:mod:`repro.relational.errors` hierarchy (:func:`map_sqlite_error`), and
integer binds beyond SQLite's 64-bit range (``OverflowError``) become
:class:`~repro.relational.errors.EngineError` — so all four engines raise
the same exception classes for the same failure classes.
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING

from ...faults import fault_point
from ..backends import ExecutionBackend, register_backend
from ..errors import (
    AmbiguousColumnError,
    EngineError,
    UnknownColumnError,
    UnknownTableError,
)
from ..executor import ExecutionContext, ExecutionMode, ResultSet
from .lower import LoweredQuery, lower_query
from .store import SQLiteStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...sql.ast import SelectQuery

#: Key of this backend's state bucket on the execution context.
_STATE_KEY = "sql"


def map_sqlite_error(error: BaseException) -> EngineError:
    """Map a ``sqlite3`` (or bind-time) error onto the engine hierarchy.

    The planner resolves names before any SQL is generated, so the name
    branches fire only for hand-written SQL against the store — but keeping
    the full mapping means *any* path through sqlite raises the same
    exception classes as the Python engines.
    """
    message = str(error)
    lowered = message.lower()
    if isinstance(error, OverflowError):
        return EngineError(
            f"value does not fit in sqlite's 64-bit integers: {message}"
        )
    if "no such table" in lowered:
        return UnknownTableError(message)
    if "no such column" in lowered:
        return UnknownColumnError(message)
    if "ambiguous column" in lowered:
        return AmbiguousColumnError(message)
    return EngineError(f"sqlite execution failed: {message}")


class _SQLState:
    """Per-context backend state: the store plus the lowering cache."""

    __slots__ = ("store", "lowered")

    def __init__(self) -> None:
        self.store: SQLiteStore | None = None
        self.lowered: dict[tuple, LoweredQuery] = {}


class SQLBackend(ExecutionBackend):
    """``SQL``: plans lowered to parameterized SQL, run on ``sqlite3``."""

    mode = ExecutionMode.SQL

    def _state(self, context: ExecutionContext) -> _SQLState:
        return context.backend_state(_STATE_KEY, _SQLState)

    def _store(self, context: ExecutionContext) -> SQLiteStore:
        state = self._state(context)
        if state.store is None:
            state.store = SQLiteStore(context.database)
            context.stats.sql_store_builds += 1
        return state.store

    def _lowered(self, plan, context: ExecutionContext) -> LoweredQuery:
        state = self._state(context)
        key = plan.cache_key
        lowered = state.lowered.get(key)
        if lowered is None:
            context.stats.sql_lower_misses += 1
            lowered = lower_query(plan, context.database)
            state.lowered[key] = lowered
        else:
            context.stats.sql_lower_hits += 1
        return lowered

    def execute(
        self, query: "SelectQuery", context: ExecutionContext
    ) -> ResultSet:
        # Chaos stand-in for sqlite's operational failure modes (disk IO
        # errors, database corruption): a FallbackBackend re-executes on
        # the rows engine when this fires.
        fault_point("engine.sql.execute")
        context.refresh()
        plan = context.plan(query)
        lowered = self._lowered(plan, context)
        store = self._store(context)
        try:
            cursor = store.connection.execute(lowered.sql, lowered.binds)
            rows = tuple(cursor.fetchall())
        except (sqlite3.Error, OverflowError) as error:
            raise map_sqlite_error(error) from error
        return ResultSet(columns=plan.columns, rows=rows)

    def explain(self, query: "SelectQuery", context: ExecutionContext) -> str:
        plan = context.plan(query)
        lowered = self._lowered(plan, context)
        return (
            plan.describe()
            + "\n\n-- lowered SQL (sqlite) --\n"
            + lowered.describe()
        )


register_backend(SQLBackend())
