"""Schema DDL generation and bulk load into an in-memory SQLite database.

One :class:`SQLiteStore` mirrors one
:class:`~repro.relational.database.Database` snapshot: every relation gets
a typed table (``int`` → ``INTEGER``, ``float`` → ``REAL``, ``str`` →
``TEXT``) and its rows are bulk-loaded with one ``executemany`` per table.
The store is cached on the :class:`~.executor.ExecutionContext` via
``backend_state`` and therefore rebuilt whenever the database's row-count
version bumps — the same invalidation discipline as ``ColumnarTable``.

The declared types matter: SQLite's *type affinity* coerces values toward
the column's declared type on insert (``"123"`` into an ``INTEGER`` column
becomes the integer ``123``).  For schema-conforming data this is the
identity; for schema-*violating* rows it is a documented divergence from
the Python engines, which store whatever Python value the row carried
(see ``docs/sql_backend.md``).
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING

from ..errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database

#: schema dtype -> SQLite column type (drives type affinity on load).
DDL_TYPES = {"int": "INTEGER", "float": "REAL", "str": "TEXT"}


def quote_identifier(name: str) -> str:
    """Double-quote an identifier, escaping embedded quotes."""
    return '"' + name.replace('"', '""') + '"'


def table_ddl(database: "Database", table_name: str) -> str:
    """The CREATE TABLE statement for one relation of ``database``."""
    relation = database.relation(table_name)
    column_defs = ", ".join(
        f"{quote_identifier(column)} {DDL_TYPES[dtype]}"
        for column, dtype in zip(relation.columns, database.dtypes(table_name))
    )
    return f"CREATE TABLE {quote_identifier(relation.name)} ({column_defs})"


class SQLiteStore:
    """An in-memory ``sqlite3`` mirror of one database snapshot."""

    def __init__(self, database: "Database") -> None:
        self.version = database.total_rows()
        self.rows_loaded = 0
        self.connection = sqlite3.connect(":memory:")
        try:
            self._load(database)
        except sqlite3.Error as error:  # pragma: no cover - load-time guard
            self.close()
            raise EngineError(f"sqlite load failed: {error}") from error
        except OverflowError as error:
            # sqlite integers are 64-bit; Python's are not.  Surface the
            # same error class the execution path maps binding overflows to.
            self.close()
            raise EngineError(
                f"value does not fit in sqlite's 64-bit integers: {error}"
            ) from error

    def _load(self, database: "Database") -> None:
        cursor = self.connection.cursor()
        for table_name in database.table_names():
            relation = database.relation(table_name)
            cursor.execute(table_ddl(database, table_name))
            if not relation.rows:
                continue
            placeholders = ", ".join("?" for _ in relation.columns)
            cursor.executemany(
                f"INSERT INTO {quote_identifier(relation.name)} "
                f"VALUES ({placeholders})",
                (
                    tuple(row[column] for column in relation.columns)
                    for row in relation.rows
                ),
            )
            self.rows_loaded += len(relation.rows)
        self.connection.commit()

    def close(self) -> None:
        self.connection.close()
