"""Lowering compiled plan trees to parameterized SQLite SQL.

Every :class:`~repro.relational.plan.PlanNode` lowers to a complete
``SELECT`` whose output columns are positional (``c0 .. c{n-1}``); parents
embed children as derived tables under generated aliases (``t1, t2, ...``).
Constants never appear inline — each becomes a named parameter
(``:p0, :p1, ...``) collected into a bind dictionary, so the generated SQL
is injection-free and cacheable per plan.

Node-by-node lowering rules (documented in ``docs/sql_backend.md``):

=================  ====================================================
``Scan``           ``SELECT t."col" AS c0, ... FROM "Table" AS t``
``Filter``         ``SELECT * FROM (child) t WHERE p1 AND p2 ...``
``HashJoin``       ``... FROM (l) a JOIN (r) b ON a.k = b.k ...``
``NestedLoopJoin`` same shape, arbitrary predicates in ``ON`` (or ``1``)
``SemiJoin``       ``WHERE probe IN (subquery)``
``AntiJoin``       ``WHERE probe NOT IN (subquery)`` (no NULLs → safe)
``Project``        ``SELECT e0 AS c0, ... FROM (child) t``
``Distinct``       ``SELECT DISTINCT * FROM (child) t``
``TopK``           ``SELECT * FROM (child) t ORDER BY k1 [DESC], ...
                   LIMIT :p OFFSET :q`` (both bound, never inlined)
``Aggregate``      ``SELECT items FROM (child) t [GROUP BY ...]``; a
                   *global* aggregate gains ``HAVING COUNT(*) > 0`` so an
                   empty input yields zero rows like the Python engines
=================  ====================================================

Correlated subqueries re-correlate: a child block's ``Param(i)`` is
substituted with the SQL text of the enclosing frame's ``param_exprs[i]``,
so what the Python engines evaluate via memoized parameter tuples becomes
an ordinary correlated subquery in SQLite.  Quantified comparisons, which
SQLite lacks, rewrite to ``EXISTS`` forms that are correct on empty
subqueries: ``v op ANY (S)`` → ``EXISTS(SELECT 1 FROM (S) q WHERE v op
q.c0)`` and ``v op ALL (S)`` → ``NOT EXISTS(SELECT 1 FROM (S) q WHERE NOT
(v op q.c0))``.

The lowering also propagates a static **type family** (``"num"`` or
``"str"``) per output slot, derived from the schema's declared dtypes.
Cross-family comparisons raise
:class:`~repro.relational.errors.TypeMismatchError` at lowering time —
slightly *earlier* than the row engines, which only raise when a row pair
is actually compared; that timing difference is a documented divergence
affecting only ill-typed queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..errors import EngineError, TypeMismatchError
from ..plan import (
    Aggregate,
    AntiJoin,
    BlockPlan,
    Col,
    CompiledComparison,
    Const,
    Distinct,
    Filter,
    HashJoin,
    NestedLoopJoin,
    Param,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    SubqueryPred,
    TopK,
)
from .store import quote_identifier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database

_COMPARISON_OPS = frozenset(("=", "<>", "<", "<=", ">", ">="))

_FAMILY_NAMES = {"num": "numeric", "str": "string"}


@dataclass(frozen=True)
class LoweredQuery:
    """One plan lowered to executable SQL plus its bound constants."""

    sql: str
    binds: dict
    columns: tuple[str, ...]
    families: tuple[str, ...]

    def describe(self) -> str:
        """The SQL with its binds, for ``explain --engine sql`` output."""
        lines = [self.sql]
        for name in sorted(self.binds, key=lambda n: int(n.lstrip("p"))):
            lines.append(f"--   :{name} = {self.binds[name]!r}")
        return "\n".join(lines)


#: A lowered relation: its SELECT text plus per-slot type families.
@dataclass(frozen=True)
class _Rel:
    sql: str
    families: tuple[str, ...]


#: The visible frame predicates/exprs render against: (alias, families)
#: segments, concatenated left-to-right like the engines' flat row tuples.
_Frame = list

#: Rendered actual parameters of a child block: (sql, family) per index.
_Params = list


def _value_family(value) -> str:
    return "num" if isinstance(value, (int, float)) else "str"


class _Lowering:
    """One lowering pass: owns the alias counter and the bind dictionary."""

    def __init__(self, database: "Database") -> None:
        self._db = database
        self._alias_count = 0
        self.binds: dict = {}

    # -- helpers -------------------------------------------------------- #

    def _alias(self) -> str:
        self._alias_count += 1
        return f"t{self._alias_count}"

    def _bind(self, value) -> str:
        name = f"p{len(self.binds)}"
        self.binds[name] = value
        return f":{name}"

    # -- scalar expressions --------------------------------------------- #

    def _expr(self, expr, frame: _Frame, params: _Params) -> tuple[str, str]:
        """Render a scalar expression; returns ``(sql, family)``."""
        if type(expr) is Col:
            offset = expr.slot
            for alias, families in frame:
                if offset < len(families):
                    return f"{alias}.c{offset}", families[offset]
                offset -= len(families)
            raise EngineError(f"column slot {expr.slot} escapes the frame")
        if type(expr) is Const:
            return self._bind(expr.value), _value_family(expr.value)
        if type(expr) is Param:
            if expr.index >= len(params):
                raise EngineError(
                    f"unbound correlated parameter {expr} in lowered plan"
                )
            return params[expr.index]
        raise EngineError(f"unsupported scalar expression: {expr!r}")

    # -- predicates ----------------------------------------------------- #

    def _pred(self, pred, frame: _Frame, params: _Params) -> str:
        if type(pred) is CompiledComparison:
            if pred.op not in _COMPARISON_OPS:
                raise EngineError(f"unsupported operator {pred.op!r}")
            left_sql, left_family = self._expr(pred.left, frame, params)
            right_sql, right_family = self._expr(pred.right, frame, params)
            self._check_families(left_family, right_family, pred)
            return f"{left_sql} {pred.op} {right_sql}"
        return self._subquery_pred(pred, frame, params)

    @staticmethod
    def _check_families(left: str, right: str, what) -> None:
        if left != right:
            raise TypeMismatchError(
                f"cannot compare {_FAMILY_NAMES[left]} with "
                f"{_FAMILY_NAMES[right]} values in {what}"
            )

    def _subquery_pred(
        self, pred: SubqueryPred, frame: _Frame, params: _Params
    ) -> str:
        child_params: _Params = [
            self._expr(expr, frame, params) for expr in pred.param_exprs
        ]
        sub = self.block(pred.plan, child_params)
        if pred.kind == "exists":
            text = f"EXISTS ({sub.sql})"
            return f"NOT {text}" if pred.negated else text
        if len(sub.families) != 1:
            raise EngineError(
                "IN / ANY / ALL subqueries must return exactly one column, "
                f"got {len(sub.families)}"
            )
        value_sql, value_family = self._expr(pred.value_expr, frame, params)
        self._check_families(value_family, sub.families[0], pred)
        if pred.kind == "in":
            text = f"{value_sql} IN ({sub.sql})"
        else:
            text = self._quantified(value_sql, pred.op, pred.quantifier, sub)
        return f"NOT ({text})" if pred.negated else text

    def _quantified(self, value_sql: str, op: str, quantifier: str, sub: _Rel) -> str:
        """Rewrite ANY/ALL (absent from SQLite) into EXISTS forms.

        Both rewrites are vacuously correct on an empty subquery result:
        ``ANY`` over nothing is false, ``ALL`` over nothing is true.
        """
        if op not in _COMPARISON_OPS:
            raise EngineError(f"unsupported operator {op!r}")
        if quantifier == "ANY" and op == "=":
            return f"{value_sql} IN ({sub.sql})"
        if quantifier == "ALL" and op == "<>":
            return f"{value_sql} NOT IN ({sub.sql})"
        alias = self._alias()
        if quantifier == "ANY":
            return (
                f"EXISTS (SELECT 1 FROM ({sub.sql}) AS {alias} "
                f"WHERE {value_sql} {op} {alias}.c0)"
            )
        return (
            f"NOT EXISTS (SELECT 1 FROM ({sub.sql}) AS {alias} "
            f"WHERE NOT ({value_sql} {op} {alias}.c0))"
        )

    # -- plan nodes ----------------------------------------------------- #

    def _node(self, node: PlanNode, params: _Params) -> _Rel:
        handler = _NODE_LOWERINGS.get(type(node))
        if handler is None:
            raise EngineError(f"unsupported plan node: {type(node).__name__}")
        return handler(self, node, params)

    def _scan(self, node: Scan, params: _Params) -> _Rel:
        relation = self._db.relation(node.table)
        families = tuple(
            "num" if dtype in ("int", "float") else "str"
            for dtype in self._db.dtypes(node.table)
        )
        alias = self._alias()
        select_list = ", ".join(
            f"{alias}.{quote_identifier(column)} AS c{index}"
            for index, column in enumerate(relation.columns)
        )
        return _Rel(
            f"SELECT {select_list} "
            f"FROM {quote_identifier(relation.name)} AS {alias}",
            families,
        )

    def _filter(self, node: Filter, params: _Params) -> _Rel:
        child = self._node(node.child, params)
        alias = self._alias()
        frame: _Frame = [(alias, child.families)]
        conditions = " AND ".join(
            self._pred(pred, frame, params) for pred in node.predicates
        )
        return _Rel(
            f"SELECT * FROM ({child.sql}) AS {alias} WHERE {conditions}",
            child.families,
        )

    def _join_select_list(
        self, left_alias: str, left: _Rel, right_alias: str, right: _Rel
    ) -> str:
        width = len(left.families)
        parts = [f"{left_alias}.c{i} AS c{i}" for i in range(width)]
        parts.extend(
            f"{right_alias}.c{j} AS c{width + j}"
            for j in range(len(right.families))
        )
        return ", ".join(parts)

    def _hash_join(self, node: HashJoin, params: _Params) -> _Rel:
        left = self._node(node.left, params)
        right = self._node(node.right, params)
        left_alias, right_alias = self._alias(), self._alias()
        left_frame: _Frame = [(left_alias, left.families)]
        right_frame: _Frame = [(right_alias, right.families)]
        conditions = []
        for left_key, right_key in zip(node.left_keys, node.right_keys):
            left_sql, left_family = self._expr(left_key, left_frame, params)
            right_sql, right_family = self._expr(right_key, right_frame, params)
            self._check_families(left_family, right_family, node.label())
            conditions.append(f"{left_sql} = {right_sql}")
        return _Rel(
            f"SELECT {self._join_select_list(left_alias, left, right_alias, right)} "
            f"FROM ({left.sql}) AS {left_alias} "
            f"JOIN ({right.sql}) AS {right_alias} "
            f"ON {' AND '.join(conditions)}",
            left.families + right.families,
        )

    def _nested_loop(self, node: NestedLoopJoin, params: _Params) -> _Rel:
        left = self._node(node.left, params)
        right = self._node(node.right, params)
        left_alias, right_alias = self._alias(), self._alias()
        frame: _Frame = [(left_alias, left.families), (right_alias, right.families)]
        conditions = " AND ".join(
            self._pred(pred, frame, params) for pred in node.predicates
        )
        return _Rel(
            f"SELECT {self._join_select_list(left_alias, left, right_alias, right)} "
            f"FROM ({left.sql}) AS {left_alias} "
            f"JOIN ({right.sql}) AS {right_alias} "
            f"ON {conditions or '1'}",
            left.families + right.families,
        )

    def _semi_join(self, node: SemiJoin, params: _Params) -> _Rel:
        child = self._node(node.child, params)
        alias = self._alias()
        frame: _Frame = [(alias, child.families)]
        probe_sql, probe_family = self._expr(node.probe, frame, params)
        # param_exprs are row-independent by the SemiJoin contract (they
        # reference enclosing blocks only), so they render frame-free.
        child_params: _Params = [
            self._expr(expr, [], params) for expr in node.param_exprs
        ]
        sub = self.block(node.plan, child_params)
        if len(sub.families) != 1:  # pragma: no cover - planner guarantees
            raise EngineError("semi-join subquery must return exactly one column")
        self._check_families(probe_family, sub.families[0], node.label())
        membership = "NOT IN" if type(node) is AntiJoin else "IN"
        return _Rel(
            f"SELECT * FROM ({child.sql}) AS {alias} "
            f"WHERE {probe_sql} {membership} ({sub.sql})",
            child.families,
        )

    def _project(self, node: Project, params: _Params) -> _Rel:
        child = self._node(node.child, params)
        alias = self._alias()
        frame: _Frame = [(alias, child.families)]
        rendered = [self._expr(expr, frame, params) for expr in node.exprs]
        select_list = ", ".join(
            f"{sql} AS c{index}" for index, (sql, _) in enumerate(rendered)
        )
        return _Rel(
            f"SELECT {select_list} FROM ({child.sql}) AS {alias}",
            tuple(family for _, family in rendered),
        )

    def _distinct(self, node: Distinct, params: _Params) -> _Rel:
        child = self._node(node.child, params)
        alias = self._alias()
        return _Rel(
            f"SELECT DISTINCT * FROM ({child.sql}) AS {alias}", child.families
        )

    def _topk(self, node: TopK, params: _Params) -> _Rel:
        """Ranked output lowers to native ``ORDER BY … LIMIT``.

        SQLite's own sorter implements the top-k (it switches to a bounded
        sort when LIMIT is present), so the hint in ``node.strategy`` has
        nothing to steer here.  LIMIT/OFFSET become bound parameters like
        every other constant, keeping the SQL text cacheable across k.
        A fused Distinct renders as ``SELECT DISTINCT *`` so SQLite's
        sorter-based dedup composes with the bounded ORDER BY/LIMIT sort.
        """
        child = self._node(node.child, params)
        alias = self._alias()
        frame: _Frame = [(alias, child.families)]
        select = "SELECT DISTINCT *" if node.distinct else "SELECT *"
        sql = f"{select} FROM ({child.sql}) AS {alias}"
        if node.keys:
            keys = ", ".join(
                f"{self._expr(key, frame, params)[0]}{' DESC' if desc else ''}"
                for key, desc in zip(node.keys, node.descending)
            )
            sql += f" ORDER BY {keys}"
        if node.limit is not None:
            sql += f" LIMIT {self._bind(node.limit)}"
            if node.offset:
                sql += f" OFFSET {self._bind(node.offset)}"
        return _Rel(sql, child.families)

    def _aggregate(self, node: Aggregate, params: _Params) -> _Rel:
        child = self._node(node.child, params)
        alias = self._alias()
        frame: _Frame = [(alias, child.families)]
        group_sqls = [
            self._expr(expr, frame, params)[0] for expr in node.group_exprs
        ]
        parts: list[str] = []
        families: list[str] = []
        for index, item in enumerate(node.items):
            if item[0] == "col":
                sql, family = self._expr(item[1], frame, params)
            else:
                _, func, expr = item
                func = func.upper()
                if expr is None:
                    sql, family = "COUNT(*)", "num"
                else:
                    arg_sql, arg_family = self._expr(expr, frame, params)
                    if func in ("SUM", "AVG") and arg_family != "num":
                        raise TypeMismatchError(
                            f"{func} over non-numeric values is not well-typed"
                        )
                    sql = f"{func}({arg_sql})"
                    family = "num" if func in ("COUNT", "SUM", "AVG") else arg_family
            parts.append(f"{sql} AS c{index}")
            families.append(family)
        sql = f"SELECT {', '.join(parts)} FROM ({child.sql}) AS {alias}"
        if group_sqls:
            sql += f" GROUP BY {', '.join(group_sqls)}"
        else:
            # The Python engines produce *zero* rows for a global aggregate
            # over empty input (no group ever forms); SQL produces one.
            # Normalize the divergence away — it is cheap and total.
            sql += " HAVING COUNT(*) > 0"
        return _Rel(sql, tuple(families))

    # -- blocks --------------------------------------------------------- #

    def block(self, plan: BlockPlan, params: _Params) -> _Rel:
        """Lower one block: its operator tree gated by its prechecks."""
        rel = self._node(plan.root, params)
        if plan.prechecks:
            alias = self._alias()
            frame: _Frame = [(alias, rel.families)]
            conditions = " AND ".join(
                self._pred(pred, frame, params) for pred in plan.prechecks
            )
            # Prechecks are row-independent, so gating every row of the
            # block's output is equivalent to gating the block once.
            rel = _Rel(
                f"SELECT * FROM ({rel.sql}) AS {alias} WHERE {conditions}",
                rel.families,
            )
        return rel


_NODE_LOWERINGS: dict[type, Callable[[_Lowering, PlanNode, _Params], _Rel]] = {
    Scan: _Lowering._scan,
    Filter: _Lowering._filter,
    HashJoin: _Lowering._hash_join,
    NestedLoopJoin: _Lowering._nested_loop,
    SemiJoin: _Lowering._semi_join,
    AntiJoin: _Lowering._semi_join,
    Project: _Lowering._project,
    Distinct: _Lowering._distinct,
    Aggregate: _Lowering._aggregate,
    TopK: _Lowering._topk,
}


def lower_query(plan: BlockPlan, database: "Database") -> LoweredQuery:
    """Lower a parameter-free top-level block plan to executable SQL."""
    if plan.n_params:
        raise EngineError(
            "only parameter-free top-level plans can be lowered directly; "
            "correlated blocks are lowered inline by their enclosing query"
        )
    lowering = _Lowering(database)
    rel = lowering.block(plan, [])
    return LoweredQuery(
        sql=rel.sql,
        binds=lowering.binds,
        columns=plan.columns,
        families=rel.families,
    )
