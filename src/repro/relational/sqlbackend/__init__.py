"""``ExecutionMode.SQL``: plan trees lowered to SQL on stdlib ``sqlite3``.

The fourth execution engine, and the only one that is not shared-ancestry
Python: compiled :class:`~repro.relational.plan.BlockPlan` trees are
lowered to parameterized SQL text (:mod:`.lower`) and executed against an
in-memory SQLite mirror of the database (:mod:`.store`).  Importing this
package registers the backend with :mod:`repro.relational.backends`;
:func:`~repro.relational.backends.backend_for` imports it lazily on first
use, so ``stdlib sqlite3`` is only touched when the mode is.

See ``docs/sql_backend.md`` for the lowering rules, the caching story and
the documented divergence policy (SQLite type affinity, static raise
timing, float accumulation order).
"""

from .backend import SQLBackend, map_sqlite_error
from .lower import LoweredQuery, lower_query
from .store import SQLiteStore, table_ddl

__all__ = [
    "LoweredQuery",
    "SQLBackend",
    "SQLiteStore",
    "lower_query",
    "map_sqlite_error",
    "table_ddl",
]
