"""Compiler from :class:`~repro.sql.ast.SelectQuery` to logical plans.

The planner performs the classic logical optimizations of the supported
fragment:

* **predicate pushdown** — selection predicates referencing a single table
  are evaluated inside that table's scan; predicates referencing only
  enclosing blocks become row-independent *prechecks* evaluated once per
  block invocation;
* **equi-join detection** — ``A.x = B.y`` predicates between two tables of
  the block turn the cartesian product into a :class:`~.plan.HashJoin`;
* **cardinality-guided join ordering** — a lightweight statistics layer
  (:mod:`repro.relational.stats`: exact row counts plus per-column distinct
  counts, KMV-sketched on large relations) estimates each table's filtered
  cardinality and each join's output size; the greedy left-deep order
  starts from the smallest filtered table and repeatedly adds the
  *connected* table minimizing the estimated intermediate result (tables
  connected to the bound set always beat unconnected ones, so any connected
  join graph still avoids accidental cartesian products);
* **decorrelation** — ``[NOT] IN`` subqueries (and the equivalent
  ``= ANY`` / ``<> ALL`` spellings) that do not reference the current block
  become :class:`~.plan.SemiJoin` / :class:`~.plan.AntiJoin` operators whose
  subquery result is materialized once as a hash set; all other subqueries
  stay predicates, but their results are memoized per distinct tuple of
  correlated outer values, so a subquery correlated on a low-cardinality
  column runs once per value instead of once per outer row.

Column references are resolved *statically*, mirroring the reference
executor's runtime scoping rules: a qualified reference binds to the
innermost scope defining its alias (the last FROM entry when an alias is
repeated), and an unqualified reference binds to the most recently bound
table that has the column — i.e. the block's FROM list searched in reverse,
then the enclosing blocks, innermost first.

**Compilation contract.**  Every backend registered with
:mod:`repro.relational.backends` interprets the plans produced here, so
the planner guarantees (and the backends — including the SQL lowering,
which compiles whole trees ahead of execution — rely on):

* the root of every block is a :class:`~.plan.Distinct` or an
  :class:`~.plan.Aggregate` — results carry set/GROUP BY semantics by
  construction, never bags — optionally wrapped in a single
  :class:`~.plan.TopK` when the root block carries ORDER BY / LIMIT
  (nested blocks never carry one; the translator rejects them and the
  planner only ranks the block it was asked to rank);
* TopK keys are slots of the block's *output* frame — ORDER BY is
  restricted to selected columns, and for grouped queries the TopK is
  fused directly onto the :class:`~.plan.Aggregate` output (group rows
  are unique by construction, so no Distinct intervenes);
* all column references are resolved to slots at plan time; no backend
  performs name resolution (unknown/ambiguous names raise here, even when
  tables are empty);
* ``prechecks`` and :class:`~.plan.SemiJoin.param_exprs` are
  row-independent (constants and enclosing-block parameters only);
* a repeated alias in one FROM clause is rejected at plan time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sql.ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Exists,
    InSubquery,
    Literal,
    QuantifiedComparison,
    SelectQuery,
    Star,
)
from .database import Database, Relation
from .errors import EngineError, UnknownColumnError
from .plan import (
    Aggregate,
    AntiJoin,
    BlockPlan,
    Col,
    CompiledComparison,
    Const,
    Distinct,
    Filter,
    HashJoin,
    NestedLoopJoin,
    PlanNode,
    Project,
    ScalarExpr,
    Scan,
    SemiJoin,
    SubqueryPred,
    TopK,
)

from .resolve import match_column as _match_column
from .resolve import matches_group_key, order_key_position, result_columns
from .stats import (
    EQUALITY_DEFAULT_SELECTIVITY,
    RANGE_SELECTIVITY,
    CatalogStatistics,
)

#: Resolver supplied by the enclosing block when planning a subquery: maps a
#: column reference to an expression in the *enclosing* frame (raising
#: UnknownColumnError when no enclosing block defines it).
OuterResolver = Callable[[ColumnRef], ScalarExpr]


@dataclass
class _Instance:
    """One FROM-clause table instance of the block being planned."""

    from_index: int
    alias: str  # effective alias, original spelling
    relation: Relation

    @property
    def alias_lower(self) -> str:
        return self.alias.lower()

    @property
    def width(self) -> int:
        return len(self.relation.columns)


class Planner:
    """Compiles queries into :class:`~.plan.BlockPlan` trees.

    ``statistics`` drives join ordering; when omitted, a fresh
    :class:`~.stats.CatalogStatistics` is collected lazily from the
    database (cached per relation, invalidated by row-count changes).
    """

    def __init__(
        self, database: Database, statistics: CatalogStatistics | None = None
    ) -> None:
        self._db = database
        self._stats = statistics if statistics is not None else CatalogStatistics(database)

    @property
    def statistics(self) -> CatalogStatistics:
        return self._stats

    def plan(self, query: SelectQuery) -> BlockPlan:
        """Compile ``query`` (and all nested blocks) into a plan."""
        return _BlockPlanner(self._db, query, outer=None, statistics=self._stats).compile()


class _BlockPlanner:
    """Plans a single query block; nested blocks recurse with an outer hook."""

    def __init__(
        self,
        database: Database,
        query: SelectQuery,
        outer: OuterResolver | None,
        statistics: CatalogStatistics | None = None,
    ) -> None:
        self._db = database
        self._query = query
        self._outer = outer
        self._stats = statistics if statistics is not None else CatalogStatistics(database)
        self._instances = [
            _Instance(index, table.effective_alias, database.relation(table.name))
            for index, table in enumerate(query.from_tables)
        ]
        # Repeated aliases make scoping incoherent in the reference executor
        # (predicates staged at the first instance, projection bound to the
        # last); real SQL rejects them, and so does the planner.
        seen_aliases: set[str] = set()
        for instance in self._instances:
            if instance.alias_lower in seen_aliases:
                raise EngineError(
                    f"duplicate table alias {instance.alias!r} in FROM clause"
                )
            seen_aliases.add(instance.alias_lower)
        # Formal parameters of this block: source expression in the
        # enclosing frame -> parameter index (deduplicated).
        self._params: dict[ScalarExpr, int] = {}
        self._param_exprs: list[ScalarExpr] = []
        self._param_labels: list[str] = []
        self._param_shape: list[int] = []
        #: Estimated cardinality of the joined (pre-projection) result,
        #: filled in by _join_order; drives the TopK heap-vs-sort hint.
        self._estimated_rows = 0.0

    # ------------------------------------------------------------------ #
    # column resolution
    # ------------------------------------------------------------------ #

    def _instance_for(self, column: ColumnRef) -> _Instance | None:
        """The local FROM instance ``column`` binds to, or None (outer)."""
        if column.table is not None:
            lowered = column.table.lower()
            matches = [i for i in self._instances if i.alias_lower == lowered]
            if not matches:
                return None
            instance = matches[0]
            if _match_column(instance.relation, column.column) is None:
                raise UnknownColumnError(
                    f"table {column.table} has no column {column.column!r}"
                )
            return instance
        for instance in reversed(self._instances):
            if _match_column(instance.relation, column.column) is not None:
                return instance
        return None

    def _resolve(self, column: ColumnRef, bases: dict[int, int]) -> ScalarExpr:
        """Resolve a column reference against a (partial) frame.

        ``bases`` maps from-index -> slot offset of that instance's columns
        in the current row tuple.  References that do not bind locally are
        delegated to the enclosing block and become parameters.
        """
        instance = self._instance_for(column)
        if instance is None:
            return self._outer_param(column)
        key = _match_column(instance.relation, column.column)
        base = bases.get(instance.from_index)
        if base is None:  # pragma: no cover - guarded by attachment rules
            raise EngineError(f"internal: {column} referenced before binding")
        slot = base + instance.relation.columns.index(key)
        return Col(slot, label=f"{instance.alias}.{key}")

    def _outer_param(self, column: ColumnRef) -> ScalarExpr:
        if self._outer is None:
            if column.table is not None:
                raise UnknownColumnError(f"unknown table alias {column.table!r}")
            raise UnknownColumnError(f"unknown column {column.column!r}")
        source = self._outer(column)
        index = self._params.get(source)
        if index is None:
            index = len(self._param_exprs)
            self._params[source] = index
            self._param_exprs.append(source)
            self._param_labels.append(str(column))
        self._param_shape.append(index)
        from .plan import Param

        return Param(index, label=str(column))

    def _resolver_for_child(self, bases: dict[int, int]) -> OuterResolver:
        """Resolve a child block's free column against this block's frame."""

        def resolve(column: ColumnRef) -> ScalarExpr:
            return self._resolve(column, bases)

        return resolve

    def _operand(self, operand, bases: dict[int, int]) -> ScalarExpr:
        if isinstance(operand, Literal):
            return Const(operand.value)
        return self._resolve(operand, bases)

    def _comparison(self, pred: Comparison, bases: dict[int, int]) -> CompiledComparison:
        return CompiledComparison(
            self._operand(pred.left, bases), pred.op, self._operand(pred.right, bases)
        )

    def _local_aliases_of(self, pred: Comparison) -> set[int]:
        """From-indices of the local instances a comparison references."""
        indices: set[int] = set()
        for operand in (pred.left, pred.right):
            if isinstance(operand, ColumnRef):
                instance = self._instance_for(operand)
                if instance is not None:
                    indices.add(instance.from_index)
        return indices

    # ------------------------------------------------------------------ #
    # join ordering and tree construction
    # ------------------------------------------------------------------ #

    # -- cardinality estimation ----------------------------------------- #

    def _column_distinct(self, operand, fallback: float = 10.0) -> float:
        """Distinct-count estimate of a column operand (1.0 for literals)."""
        if not isinstance(operand, ColumnRef):
            return fallback
        instance = self._instance_for(operand)
        if instance is None:
            return fallback  # outer reference: a single parameter value
        key = _match_column(instance.relation, operand.column)
        if key is None:  # pragma: no cover - _instance_for validated it
            return fallback
        return float(self._stats.for_relation(instance.relation).distinct_of(key))

    def _scan_selectivity(self, pred: Comparison) -> float:
        """Selectivity estimate of a single-table selection predicate."""
        if pred.op == "<>":
            return 1.0
        if pred.op != "=":
            return RANGE_SELECTIVITY
        distincts = [
            self._column_distinct(operand)
            for operand in (pred.left, pred.right)
            if isinstance(operand, ColumnRef) and self._instance_for(operand) is not None
        ]
        if not distincts:
            return EQUALITY_DEFAULT_SELECTIVITY
        return 1.0 / max(max(distincts), 1.0)

    def _estimated_scan_rows(
        self, instance: _Instance, preds: list[Comparison] | None
    ) -> float:
        est = float(self._stats.for_relation(instance.relation).row_count)
        for pred in preds or ():
            est *= self._scan_selectivity(pred)
        return max(est, 0.001)  # keep products well-defined for empty tables

    def _join_selectivity(self, pred: Comparison, indices: set[int]) -> float:
        """Selectivity estimate of a join predicate between bound tables."""
        if pred.op == "=" and pred.is_join and len(indices) == 2:
            return 1.0 / max(
                self._column_distinct(pred.left), self._column_distinct(pred.right), 1.0
            )
        if pred.op == "<>":
            return 1.0
        if pred.op == "=":
            return EQUALITY_DEFAULT_SELECTIVITY
        return RANGE_SELECTIVITY

    def _join_order(
        self,
        scan_preds: dict[int, list[Comparison]],
        join_preds: list[tuple[Comparison, set[int]]],
    ) -> list[int]:
        """Greedy left-deep order guided by estimated cardinalities.

        Start from the table with the smallest estimated *filtered*
        cardinality, then repeatedly add the table that minimizes the
        estimated size of the joined intermediate result.  Connectivity
        dominates the choice: a table joined to the bound set through at
        least one predicate always beats an unconnected one, so any
        connected join graph still avoids accidental cartesian products —
        the statistics only refine the order *within* those constraints.
        Ties break on FROM-clause position, keeping plans deterministic.
        """
        n = len(self._instances)
        if n == 1:
            self._estimated_rows = self._estimated_scan_rows(
                self._instances[0], scan_preds.get(0)
            )
            return [0]
        base = {
            instance.from_index: self._estimated_scan_rows(
                instance, scan_preds.get(instance.from_index)
            )
            for instance in self._instances
        }
        pred_info = [
            (indices, self._join_selectivity(pred, indices))
            for pred, indices in join_preds
        ]
        start = min(range(n), key=lambda index: (base[index], index))
        order = [start]
        bound = {start}
        bound_size = base[start]
        remaining = [index for index in range(n) if index != start]
        while remaining:
            best_key: tuple | None = None
            best_choice = remaining[0]
            best_size = bound_size * base[best_choice]
            for candidate in remaining:
                connected = False
                size = bound_size * base[candidate]
                for indices, selectivity in pred_info:
                    if candidate not in indices:
                        continue
                    others = indices - {candidate}
                    if others and others <= bound:
                        connected = True
                        size *= selectivity
                key = (not connected, size, candidate)
                if best_key is None or key < best_key:
                    best_key = key
                    best_choice = candidate
                    best_size = size
            order.append(best_choice)
            bound.add(best_choice)
            bound_size = max(best_size, 0.001)
            remaining.remove(best_choice)
        self._estimated_rows = bound_size
        return order

    def compile(self) -> BlockPlan:
        query = self._query
        comparisons = [p for p in query.where if isinstance(p, Comparison)]
        subqueries = [p for p in query.where if not isinstance(p, Comparison)]

        pred_locals = [self._local_aliases_of(p) for p in comparisons]
        prechecks: list = [
            self._comparison(pred, {})
            for pred, indices in zip(comparisons, pred_locals)
            if not indices
        ]

        # Single-table predicates push down into the table's scan.
        scan_preds: dict[int, list[Comparison]] = {}
        join_preds: list[tuple[Comparison, set[int]]] = []
        for pred, indices in zip(comparisons, pred_locals):
            if len(indices) == 1:
                scan_preds.setdefault(next(iter(indices)), []).append(pred)
            elif len(indices) > 1:
                join_preds.append((pred, indices))

        order = self._join_order(scan_preds, join_preds)

        tree: PlanNode | None = None
        bases: dict[int, int] = {}
        width = 0
        attached = [False] * len(join_preds)
        for from_index in order:
            instance = self._instances[from_index]
            node: PlanNode = Scan(instance.relation.name, instance.alias)
            local = scan_preds.get(from_index)
            if local:
                scan_bases = {from_index: 0}
                node = Filter(
                    node, tuple(self._comparison(p, scan_bases) for p in local)
                )
            if tree is None:
                tree = node
                bases[from_index] = 0
                width = instance.width
                continue

            attachable = [
                position
                for position, (pred, indices) in enumerate(join_preds)
                if not attached[position]
                and from_index in indices
                and indices <= set(bases) | {from_index}
            ]
            equi_left: list[ScalarExpr] = []
            equi_right: list[ScalarExpr] = []
            residual: list[Comparison] = []
            for position in attachable:
                pred, indices = join_preds[position]
                attached[position] = True
                keys = self._equi_keys(pred, indices, from_index, bases)
                if keys is not None:
                    equi_left.append(keys[0])
                    equi_right.append(keys[1])
                else:
                    residual.append(pred)
            combined_bases = dict(bases)
            combined_bases[from_index] = width
            if equi_left:
                tree = HashJoin(
                    tree, node, tuple(equi_left), tuple(equi_right)
                )
                if residual:
                    tree = Filter(
                        tree,
                        tuple(self._comparison(p, combined_bases) for p in residual),
                    )
            else:
                tree = NestedLoopJoin(
                    tree,
                    node,
                    tuple(self._comparison(p, combined_bases) for p in residual),
                )
            bases[from_index] = width
            width += instance.width

        assert tree is not None  # the grammar requires a non-empty FROM list

        # Subquery predicates: decorrelate where possible, else evaluate as
        # (memoized) residual predicates over the joined rows.
        residual_subqueries: list[SubqueryPred] = []
        for predicate in subqueries:
            compiled = self._subquery_pred(predicate, bases)
            if compiled.is_row_independent:
                prechecks.append(compiled)
            elif (
                compiled.kind == "in"
                and isinstance(compiled.value_expr, Col)
                and not any(isinstance(e, Col) for e in compiled.param_exprs)
            ):
                join_cls = AntiJoin if compiled.negated else SemiJoin
                tree = join_cls(
                    child=tree,
                    plan=compiled.plan,
                    param_exprs=compiled.param_exprs,
                    probe=compiled.value_expr,
                )
            else:
                residual_subqueries.append(compiled)
        if residual_subqueries:
            tree = Filter(tree, tuple(residual_subqueries))

        root, columns = self._projection(tree, bases)
        root = self._ranked(root)
        return BlockPlan(
            ast=query,
            root=root,
            columns=columns,
            n_params=len(self._param_exprs),
            param_labels=tuple(self._param_labels),
            prechecks=tuple(prechecks),
            param_shape=tuple(self._param_shape),
        )

    def _equi_keys(
        self,
        pred: Comparison,
        indices: set[int],
        new_index: int,
        bases: dict[int, int],
    ) -> tuple[ScalarExpr, ScalarExpr] | None:
        """``(left_key, right_key)`` when ``pred`` is a bound-to-new equi-join."""
        if pred.op != "=" or not pred.is_join:
            return None
        if len(indices) != 2 or new_index not in indices:
            return None
        left_ref, right_ref = pred.left, pred.right
        left_instance = self._instance_for(left_ref)
        right_instance = self._instance_for(right_ref)
        if left_instance is None or right_instance is None:
            return None
        if right_instance.from_index == new_index:
            bound_ref, new_ref = left_ref, right_ref
        else:
            bound_ref, new_ref = right_ref, left_ref
        return (
            self._resolve(bound_ref, bases),
            self._resolve(new_ref, {new_index: 0}),
        )

    # ------------------------------------------------------------------ #
    # subqueries
    # ------------------------------------------------------------------ #

    def _subquery_pred(self, predicate, bases: dict[int, int]) -> SubqueryPred:
        sub = predicate.query
        if sub.order_by or sub.limit is not None:
            raise EngineError(
                "nested query blocks may not use ORDER BY or LIMIT"
            )
        child = _BlockPlanner(
            self._db,
            predicate.query,
            outer=self._resolver_for_child(bases),
            statistics=self._stats,
        )
        if isinstance(predicate, Exists):
            plan = child.compile()
            return SubqueryPred(
                kind="exists",
                negated=predicate.negated,
                plan=plan,
                param_exprs=tuple(child._param_exprs),
            )
        # IN / ANY / ALL probe a single-column subquery.
        value_expr = self._resolve(predicate.column, bases)
        plan = child.compile()
        if len(plan.columns) != 1:
            raise EngineError(
                "IN / ANY / ALL subqueries must return exactly one column, "
                f"got {len(plan.columns)}"
            )
        params = tuple(child._param_exprs)
        if isinstance(predicate, InSubquery):
            return SubqueryPred(
                kind="in",
                negated=predicate.negated,
                plan=plan,
                param_exprs=params,
                value_expr=value_expr,
                op="=",
            )
        assert isinstance(predicate, QuantifiedComparison)
        # `= ANY` is IN; `<> ALL` is NOT IN — normalizing them unlocks the
        # semi-/anti-join path for two of the three Fig. 24 spellings.
        if predicate.op == "=" and predicate.quantifier == "ANY":
            return SubqueryPred(
                kind="in",
                negated=predicate.negated,
                plan=plan,
                param_exprs=params,
                value_expr=value_expr,
                op="=",
            )
        if predicate.op == "<>" and predicate.quantifier == "ALL":
            return SubqueryPred(
                kind="in",
                negated=not predicate.negated,
                plan=plan,
                param_exprs=params,
                value_expr=value_expr,
                op="=",
            )
        return SubqueryPred(
            kind="quantified",
            negated=predicate.negated,
            plan=plan,
            param_exprs=params,
            value_expr=value_expr,
            op=predicate.op,
            quantifier=predicate.quantifier,
        )

    # ------------------------------------------------------------------ #
    # projection
    # ------------------------------------------------------------------ #

    def _projection(
        self, tree: PlanNode, bases: dict[int, int]
    ) -> tuple[PlanNode, tuple[str, ...]]:
        query = self._query
        if query.has_aggregates or query.group_by:
            return self._grouped_projection(tree, bases)
        columns = self._result_columns()
        if query.is_select_star:
            exprs: list[ScalarExpr] = []
            for instance in self._instances:
                base = bases[instance.from_index]
                for offset, key in enumerate(instance.relation.columns):
                    exprs.append(Col(base + offset, label=f"{instance.alias}.{key}"))
        else:
            exprs = []
            for item in query.select_items:
                if not isinstance(item, ColumnRef):
                    raise EngineError(
                        "aggregate select items require GROUP BY handling"
                    )
                exprs.append(self._resolve(item, bases))
        return Distinct(Project(tree, tuple(exprs))), columns

    def _grouped_projection(
        self, tree: PlanNode, bases: dict[int, int]
    ) -> tuple[PlanNode, tuple[str, ...]]:
        query = self._query
        group_exprs = tuple(self._resolve(col, bases) for col in query.group_by)
        items: list[tuple] = []
        for item in query.select_items:
            if isinstance(item, ColumnRef):
                if item not in query.group_by and not matches_group_key(item, query):
                    raise EngineError(
                        f"column {item} must appear in GROUP BY to be selected"
                    )
                items.append(("col", self._resolve(item, bases)))
            elif isinstance(item, AggregateCall):
                if isinstance(item.argument, Star):
                    items.append(("agg", "COUNT", None))
                else:
                    items.append(("agg", item.func, self._resolve(item.argument, bases)))
            else:
                raise EngineError("SELECT * cannot be combined with GROUP BY")
        return (
            Aggregate(tree, group_exprs, tuple(items)),
            self._result_columns(),
        )

    def _result_columns(self) -> tuple[str, ...]:
        return result_columns(
            self._query, [instance.relation for instance in self._instances]
        )

    # ------------------------------------------------------------------ #
    # ranked output (ORDER BY / LIMIT)
    # ------------------------------------------------------------------ #

    def _ranked(self, root: PlanNode) -> PlanNode:
        """Wrap the projection root in a TopK when the block is ranked.

        The keys are slots of the output frame, so the TopK composes with
        any projection root: for grouped queries it sits directly on the
        Aggregate (group rows are already unique — one half of the fusion
        the planner docstring promises); for plain queries the Distinct is
        *absorbed* into the TopK (``distinct=True``) — LIMIT counts
        distinct rows, so dedup cannot be dropped, but fusing it lets the
        engines rank first and dedup only candidate rows instead of
        materializing the entire distinct result below the cutoff.  A bare
        ``LIMIT k`` without ORDER BY compiles to a key-less TopK: pure
        lazy slicing, which the row engine turns into early pipeline exit.
        """
        query = self._query
        if not query.order_by and query.limit is None:
            return root
        distinct = isinstance(root, Distinct)
        if distinct:
            root = root.child
        relations = [instance.relation for instance in self._instances]
        keys: list[ScalarExpr] = []
        descending: list[bool] = []
        for item in query.order_by:
            position = order_key_position(item.column, query, relations)
            if position is None:
                raise EngineError(
                    f"ORDER BY column {item.column} must appear in the SELECT list"
                )
            keys.append(Col(position, label=str(item.column)))
            descending.append(item.descending)
        return TopK(
            child=root,
            keys=tuple(keys),
            descending=tuple(descending),
            limit=query.limit,
            offset=query.offset,
            strategy=self._topk_strategy(query.limit, query.offset, bool(keys)),
            distinct=distinct,
        )

    def _topk_strategy(self, limit: int | None, offset: int, has_keys: bool) -> str:
        """Heap vs sort-then-slice, guided by CatalogStatistics estimates.

        A bounded heap pays off when the cutoff is small relative to the
        estimated input (O(n log k) and O(k) live rows vs O(n log n) and a
        full materialized sort); when the cutoff swallows a sizeable
        fraction of the input, one sort is cheaper than heap maintenance.
        Key-less TopKs are pure slices — "heap" marks them lazily bounded.
        """
        if limit is None:
            return "sort"
        if not has_keys:
            return "heap"
        cutoff = limit + offset
        estimated = max(self._estimated_rows, 1.0)
        return "heap" if cutoff * 8 <= estimated else "sort"


def plan_query(query: SelectQuery, database: Database) -> BlockPlan:
    """Convenience wrapper around :class:`Planner`."""
    return Planner(database).plan(query)
