"""Textual complexity metrics for SQL queries.

Section 4.8 of the paper compares the textual complexity of SQL queries
("167 % more words") with the visual complexity of their diagrams.  This
module provides the word- and token-count side of that comparison; the
diagram side lives in :mod:`repro.diagram.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import SelectQuery
from .formatter import format_query
from .lexer import tokenize
from .tokens import TokenType


@dataclass(frozen=True)
class SQLTextMetrics:
    """Summary of the textual complexity of one SQL query.

    Attributes
    ----------
    word_count:
        Number of whitespace-separated words in the canonical formatting.
        This is the measure used by Section 4.8 ("more words").
    token_count:
        Number of lexical tokens (excluding EOF).
    line_count:
        Number of lines in the canonical formatting.
    nesting_depth:
        Maximum subquery nesting depth (root block = 0).
    table_count:
        Total table references across all blocks.
    predicate_count:
        Total number of WHERE predicates across all blocks.
    """

    word_count: int
    token_count: int
    line_count: int
    nesting_depth: int
    table_count: int
    predicate_count: int


def text_metrics(query: SelectQuery) -> SQLTextMetrics:
    """Compute :class:`SQLTextMetrics` for ``query``."""
    text = format_query(query)
    words = text.split()
    tokens = [t for t in tokenize(text) if t.type is not TokenType.EOF]
    predicate_count = sum(len(block.where) for block in query.iter_blocks())
    return SQLTextMetrics(
        word_count=len(words),
        token_count=len(tokens),
        line_count=text.count("\n") + 1,
        nesting_depth=query.nesting_depth(),
        table_count=query.table_count(),
        predicate_count=predicate_count,
    )


def word_count(query: SelectQuery) -> int:
    """Number of words in the canonical formatting of ``query``."""
    return text_metrics(query).word_count


def relative_increase(base: int, other: int) -> float:
    """Percentage increase of ``other`` over ``base`` (e.g. 1.67 for +167 %)."""
    if base == 0:
        raise ValueError("base must be positive")
    return (other - base) / base
