"""Abstract syntax tree for the QueryVis SQL fragment.

The node vocabulary mirrors the grammar of Fig. 4 in the paper:

* a :class:`SelectQuery` is a query block (SELECT / FROM / WHERE and an
  optional GROUP BY used by the appendix extension);
* the WHERE clause is a *conjunction* of predicates — join predicates,
  selection predicates, and the three kinds of subquery predicates
  (``[NOT] EXISTS``, ``[NOT] IN``, ``op ANY/ALL``);
* all nodes are frozen dataclasses so they can be hashed, compared and used
  as dictionary keys by later pipeline stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

#: Comparison operators of the fragment, canonical spelling.
COMPARISON_OPS = ("<", "<=", "=", "<>", ">=", ">")

#: Operator obtained by swapping the operands (used by the arrow rules when a
#: join must be rewritten, Section 4.5.1 of the paper).
FLIPPED_OP = {"<": ">", "<=": ">=", "=": "=", "<>": "<>", ">=": "<=", ">": "<"}

#: Logical negation of an operator (used when pushing NOT through ANY/ALL).
NEGATED_OP = {"<": ">=", "<=": ">", "=": "<>", "<>": "=", ">=": "<", ">": "<="}


@dataclass(frozen=True)
class Star:
    """``SELECT *`` or ``COUNT(*)`` argument."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference such as ``L1.drinker``."""

    table: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A constant: string or number."""

    value: Union[int, float, str]

    @property
    def is_string(self) -> bool:
        return isinstance(self.value, str)

    def __str__(self) -> str:
        if self.is_string:
            escaped = str(self.value).replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate select item such as ``COUNT(T.TrackId)`` or ``SUM(x)``."""

    func: str
    argument: Union[ColumnRef, Star]

    def __str__(self) -> str:
        return f"{self.func}({self.argument})"


SelectItem = Union[ColumnRef, AggregateCall, Star]
Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause, optionally aliased (``Likes L1``)."""

    name: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        """The name by which columns refer to this table."""
        return self.alias if self.alias is not None else self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class Comparison:
    """A join or selection predicate ``left op right``.

    A predicate is a *selection* predicate when exactly one side is a
    :class:`Literal`, and a *join* predicate when both sides are column
    references (Section 4.4, "Notation").
    """

    left: Operand
    op: str
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")

    @property
    def is_selection(self) -> bool:
        return isinstance(self.left, Literal) or isinstance(self.right, Literal)

    @property
    def is_join(self) -> bool:
        return isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef)

    def flipped(self) -> "Comparison":
        """Return the equivalent comparison with operands swapped."""
        return Comparison(self.right, FLIPPED_OP[self.op], self.left)

    def normalized_selection(self) -> "Comparison":
        """Return a selection predicate with the column on the left side."""
        if isinstance(self.left, Literal) and isinstance(self.right, ColumnRef):
            return self.flipped()
        return self

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Exists:
    """``[NOT] EXISTS (subquery)``."""

    query: "SelectQuery"
    negated: bool = False

    def __str__(self) -> str:
        prefix = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{prefix} (...)"


@dataclass(frozen=True)
class InSubquery:
    """``column [NOT] IN (subquery)``."""

    column: ColumnRef
    query: "SelectQuery"
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"{self.column} {op} (...)"


@dataclass(frozen=True)
class QuantifiedComparison:
    """``column op ANY (subquery)`` or ``column op ALL (subquery)``.

    ``negated`` captures the ``NOT column = ANY (...)`` spelling used in
    Fig. 24 of the paper.
    """

    column: ColumnRef
    op: str
    quantifier: str  # "ANY" | "ALL"
    query: "SelectQuery"
    negated: bool = False

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")
        if self.quantifier not in ("ANY", "ALL"):
            raise ValueError(f"quantifier must be ANY or ALL, got {self.quantifier!r}")

    def __str__(self) -> str:
        text = f"{self.column} {self.op} {self.quantifier} (...)"
        return f"NOT {text}" if self.negated else text


Predicate = Union[Comparison, Exists, InSubquery, QuantifiedComparison]


@dataclass(frozen=True)
class SelectQuery:
    """A query block: SELECT list, FROM list and conjunctive WHERE clause."""

    select_items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where: tuple[Predicate, ...] = ()
    group_by: tuple[ColumnRef, ...] = field(default=())

    # ------------------------------------------------------------------ #
    # structural helpers used throughout the pipeline
    # ------------------------------------------------------------------ #

    @property
    def is_select_star(self) -> bool:
        return len(self.select_items) == 1 and isinstance(self.select_items[0], Star)

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item, AggregateCall) for item in self.select_items)

    def local_aliases(self) -> tuple[str, ...]:
        """Aliases (or table names) introduced by this block's FROM clause."""
        return tuple(table.effective_alias for table in self.from_tables)

    def comparisons(self) -> list[Comparison]:
        """Plain comparison predicates of this block (no subqueries)."""
        return [p for p in self.where if isinstance(p, Comparison)]

    def subquery_predicates(self) -> list[Predicate]:
        """Predicates of this block that introduce a nested query block."""
        return [
            p
            for p in self.where
            if isinstance(p, (Exists, InSubquery, QuantifiedComparison))
        ]

    def iter_blocks(self) -> Iterator["SelectQuery"]:
        """Yield this block and all nested blocks in pre-order."""
        yield self
        for predicate in self.subquery_predicates():
            yield from predicate.query.iter_blocks()

    def nesting_depth(self) -> int:
        """Maximum nesting depth, with the root block at depth 0."""
        sub = self.subquery_predicates()
        if not sub:
            return 0
        return 1 + max(p.query.nesting_depth() for p in sub)

    def table_count(self) -> int:
        """Total number of table references across all blocks."""
        return sum(len(block.from_tables) for block in self.iter_blocks())

    def referenced_columns(self) -> set[ColumnRef]:
        """All column references appearing anywhere in this query."""
        columns: set[ColumnRef] = set()
        for block in self.iter_blocks():
            for item in block.select_items:
                if isinstance(item, ColumnRef):
                    columns.add(item)
                elif isinstance(item, AggregateCall) and isinstance(
                    item.argument, ColumnRef
                ):
                    columns.add(item.argument)
            columns.update(block.group_by)
            for predicate in block.where:
                if isinstance(predicate, Comparison):
                    for side in (predicate.left, predicate.right):
                        if isinstance(side, ColumnRef):
                            columns.add(side)
                elif isinstance(predicate, (InSubquery, QuantifiedComparison)):
                    columns.add(predicate.column)
        return columns
