"""Abstract syntax tree for the QueryVis SQL fragment.

The node vocabulary mirrors the grammar of Fig. 4 in the paper:

* a :class:`SelectQuery` is a query block (SELECT / FROM / WHERE and an
  optional GROUP BY used by the appendix extension);
* the WHERE clause is a *conjunction* of predicates — join predicates,
  selection predicates, and the three kinds of subquery predicates
  (``[NOT] EXISTS``, ``[NOT] IN``, ``op ANY/ALL``);
* all nodes are frozen dataclasses so they can be hashed, compared and used
  as dictionary keys by later pipeline stages.

The nodes are the pipeline's hottest data: every stage cache keys on frozen
ASTs or trees built from them, so each node is declared with ``slots=True``
(no per-instance ``__dict__``) and caches its hash on first use
(:class:`FrozenNode`) instead of re-hashing its field tuple on every cache
probe.  Hash caching composes: a parent's hash consumes the already-cached
hashes of its children, so hashing a deep tree is O(nodes) once, O(1) after.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union


class FrozenNode:
    """Shared behavior for frozen ``slots=True`` dataclass nodes.

    Frozen slotted dataclasses cannot be pickled on Python 3.10 (the default
    slot-state protocol assigns through the frozen ``__setattr__``), so nodes
    reduce to ``cls(*field values)`` — which also recomputes the cached hash
    on load instead of trusting serialized state.
    """

    __slots__ = ()

    def __reduce__(self):
        cls = type(self)
        return (cls, tuple(getattr(self, name) for name in cls.__match_args__))

    def __hash__(self) -> int:
        h = self._hash  # type: ignore[attr-defined]
        if h is None:
            h = hash(tuple(getattr(self, name) for name in type(self).__match_args__))
            object.__setattr__(self, "_hash", h)
        return h


#: The cached-hash slot shared by every node class below.  ``init=False``
#: keeps it out of ``__init__``/``__match_args__``; ``compare=False`` keeps
#: generated equality purely field-based.  The cache fills lazily: nodes
#: are built in bulk by the parser, but only ones used as cache keys are
#: ever hashed.
def _hash_field():
    return field(default=None, init=False, repr=False, compare=False)

#: Comparison operators of the fragment, canonical spelling.
COMPARISON_OPS = ("<", "<=", "=", "<>", ">=", ">")

#: Operator obtained by swapping the operands (used by the arrow rules when a
#: join must be rewritten, Section 4.5.1 of the paper).
FLIPPED_OP = {"<": ">", "<=": ">=", "=": "=", "<>": "<>", ">=": "<=", ">": "<"}

#: Logical negation of an operator (used when pushing NOT through ANY/ALL).
NEGATED_OP = {"<": ">=", "<=": ">", "=": "<>", "<>": "=", ">=": "<", ">": "<="}

#: Set view of COMPARISON_OPS for O(1) validation on the Comparison hot path.
_COMPARISON_OP_SET = frozenset(COMPARISON_OPS)


@dataclass(frozen=True, slots=True)
class Star(FrozenNode):
    """``SELECT *`` or ``COUNT(*)`` argument."""

    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__


    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True, slots=True)
class ColumnRef(FrozenNode):
    """A (possibly qualified) column reference such as ``L1.drinker``."""

    table: str | None
    column: str
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__


    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True, slots=True)
class Literal(FrozenNode):
    """A constant: string or number."""

    value: Union[int, float, str]
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__


    @property
    def is_string(self) -> bool:
        return isinstance(self.value, str)

    def __str__(self) -> str:
        if self.is_string:
            escaped = str(self.value).replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class AggregateCall(FrozenNode):
    """An aggregate select item such as ``COUNT(T.TrackId)`` or ``SUM(x)``."""

    func: str
    argument: Union[ColumnRef, Star]
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__


    def __str__(self) -> str:
        return f"{self.func}({self.argument})"


SelectItem = Union[ColumnRef, AggregateCall, Star]
Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True, slots=True)
class TableRef(FrozenNode):
    """A table in the FROM clause, optionally aliased (``Likes L1``)."""

    name: str
    alias: str | None = None
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__


    @property
    def effective_alias(self) -> str:
        """The name by which columns refer to this table."""
        return self.alias if self.alias is not None else self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True, slots=True)
class Comparison(FrozenNode):
    """A join or selection predicate ``left op right``.

    A predicate is a *selection* predicate when exactly one side is a
    :class:`Literal`, and a *join* predicate when both sides are column
    references (Section 4.4, "Notation").
    """

    left: Operand
    op: str
    right: Operand
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OP_SET:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")

    @property
    def is_selection(self) -> bool:
        return isinstance(self.left, Literal) or isinstance(self.right, Literal)

    @property
    def is_join(self) -> bool:
        return isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef)

    def flipped(self) -> "Comparison":
        """Return the equivalent comparison with operands swapped."""
        return Comparison(self.right, FLIPPED_OP[self.op], self.left)

    def normalized_selection(self) -> "Comparison":
        """Return a selection predicate with the column on the left side."""
        if isinstance(self.left, Literal) and isinstance(self.right, ColumnRef):
            return self.flipped()
        return self

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class Exists(FrozenNode):
    """``[NOT] EXISTS (subquery)``."""

    query: "SelectQuery"
    negated: bool = False
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__


    def __str__(self) -> str:
        prefix = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{prefix} (...)"


@dataclass(frozen=True, slots=True)
class InSubquery(FrozenNode):
    """``column [NOT] IN (subquery)``."""

    column: ColumnRef
    query: "SelectQuery"
    negated: bool = False
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__


    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"{self.column} {op} (...)"


@dataclass(frozen=True, slots=True)
class QuantifiedComparison(FrozenNode):
    """``column op ANY (subquery)`` or ``column op ALL (subquery)``.

    ``negated`` captures the ``NOT column = ANY (...)`` spelling used in
    Fig. 24 of the paper.
    """

    column: ColumnRef
    op: str
    quantifier: str  # "ANY" | "ALL"
    query: "SelectQuery"
    negated: bool = False
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OP_SET:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")
        if self.quantifier not in ("ANY", "ALL"):
            raise ValueError(f"quantifier must be ANY or ALL, got {self.quantifier!r}")

    def __str__(self) -> str:
        text = f"{self.column} {self.op} {self.quantifier} (...)"
        return f"NOT {text}" if self.negated else text


Predicate = Union[Comparison, Exists, InSubquery, QuantifiedComparison]


@dataclass(frozen=True, slots=True)
class OrderItem(FrozenNode):
    """One ``ORDER BY`` key: a column reference plus its direction."""

    column: ColumnRef
    descending: bool = False
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__

    def __str__(self) -> str:
        return f"{self.column} DESC" if self.descending else str(self.column)


@dataclass(frozen=True, slots=True)
class SelectQuery(FrozenNode):
    """A query block: SELECT list, FROM list and conjunctive WHERE clause.

    The ranked-access extension adds ``distinct`` (``SELECT DISTINCT``),
    ``order_by`` (``ORDER BY`` keys with direction), ``limit`` and ``offset``
    (``LIMIT k [OFFSET m]``); all four are only legal on the *root* block —
    the translator rejects them on nested blocks.
    """

    select_items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where: tuple[Predicate, ...] = ()
    group_by: tuple[ColumnRef, ...] = field(default=())
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__


    # ------------------------------------------------------------------ #
    # structural helpers used throughout the pipeline
    # ------------------------------------------------------------------ #

    @property
    def is_select_star(self) -> bool:
        return len(self.select_items) == 1 and isinstance(self.select_items[0], Star)

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item, AggregateCall) for item in self.select_items)

    def local_aliases(self) -> tuple[str, ...]:
        """Aliases (or table names) introduced by this block's FROM clause."""
        return tuple(table.effective_alias for table in self.from_tables)

    def comparisons(self) -> list[Comparison]:
        """Plain comparison predicates of this block (no subqueries)."""
        return [p for p in self.where if isinstance(p, Comparison)]

    def subquery_predicates(self) -> list[Predicate]:
        """Predicates of this block that introduce a nested query block."""
        return [
            p
            for p in self.where
            if isinstance(p, (Exists, InSubquery, QuantifiedComparison))
        ]

    def iter_blocks(self) -> Iterator["SelectQuery"]:
        """Yield this block and all nested blocks in pre-order.

        Stack-based rather than recursive: nested generators pay one frame
        per nesting level per item, and corpus-scale callers iterate blocks
        constantly.
        """
        stack: list[SelectQuery] = [self]
        pop = stack.pop
        while stack:
            block = pop()
            yield block
            sub = block.subquery_predicates()
            if sub:
                stack.extend(p.query for p in reversed(sub))

    def nesting_depth(self) -> int:
        """Maximum nesting depth, with the root block at depth 0."""
        deepest = 0
        stack: list[tuple[SelectQuery, int]] = [(self, 0)]
        while stack:
            block, depth = stack.pop()
            if depth > deepest:
                deepest = depth
            stack.extend((p.query, depth + 1) for p in block.subquery_predicates())
        return deepest

    def table_count(self) -> int:
        """Total number of table references across all blocks."""
        return sum(len(block.from_tables) for block in self.iter_blocks())

    def referenced_columns(self) -> set[ColumnRef]:
        """All column references appearing anywhere in this query."""
        columns: set[ColumnRef] = set()
        for block in self.iter_blocks():
            for item in block.select_items:
                if isinstance(item, ColumnRef):
                    columns.add(item)
                elif isinstance(item, AggregateCall) and isinstance(
                    item.argument, ColumnRef
                ):
                    columns.add(item.argument)
            columns.update(block.group_by)
            columns.update(item.column for item in block.order_by)
            for predicate in block.where:
                if isinstance(predicate, Comparison):
                    for side in (predicate.left, predicate.right):
                        if isinstance(side, ColumnRef):
                            columns.add(side)
                elif isinstance(predicate, (InSubquery, QuantifiedComparison)):
                    columns.add(predicate.column)
        return columns
