"""Pretty-printer for the QueryVis SQL fragment.

The study interface (Section 2, "Syntax highlighting") presented SQL queries
auto-indented with capitalised keywords; :func:`format_query` produces the
same canonical layout from an AST.  It is also used to round-trip queries in
tests (parse → format → parse must be the identity on ASTs).
"""

from __future__ import annotations

from .ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Exists,
    InSubquery,
    Literal,
    Predicate,
    QuantifiedComparison,
    SelectItem,
    SelectQuery,
    Star,
    TableRef,
)

_INDENT = "    "


def format_query(query: SelectQuery) -> str:
    """Return a canonical, indented SQL rendering of ``query``."""
    return "\n".join(_format_block(query, depth=0)) + ";"


def format_inline(query: SelectQuery) -> str:
    """Return a single-line rendering (useful for log messages and labels)."""
    lines = _format_block(query, depth=0)
    return " ".join(line.strip() for line in lines)


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _format_block(query: SelectQuery, depth: int) -> list[str]:
    pad = _INDENT * depth
    head = "SELECT DISTINCT " if query.distinct else "SELECT "
    lines = [pad + head + _format_select_list(query.select_items)]
    lines.append(pad + "FROM " + ", ".join(_format_table(t) for t in query.from_tables))
    if query.where:
        where_lines = _format_predicates(query.where, depth)
        lines.append(pad + "WHERE " + where_lines[0])
        lines.extend(where_lines[1:])
    if query.group_by:
        columns = ", ".join(str(col) for col in query.group_by)
        lines.append(pad + "GROUP BY " + columns)
    if query.order_by:
        keys = ", ".join(str(item) for item in query.order_by)
        lines.append(pad + "ORDER BY " + keys)
    if query.limit is not None:
        clause = f"LIMIT {query.limit}"
        if query.offset:
            clause += f" OFFSET {query.offset}"
        lines.append(pad + clause)
    return lines


def _format_select_list(items: tuple[SelectItem, ...]) -> str:
    return ", ".join(_format_select_item(item) for item in items)


def _format_select_item(item: SelectItem) -> str:
    if isinstance(item, (ColumnRef, AggregateCall, Star)):
        return str(item)
    raise TypeError(f"unexpected select item: {item!r}")


def _format_table(table: TableRef) -> str:
    return str(table)


def _format_predicates(predicates: tuple[Predicate, ...], depth: int) -> list[str]:
    pad = _INDENT * depth
    lines: list[str] = []
    for index, predicate in enumerate(predicates):
        predicate_lines = _format_predicate(predicate, depth)
        if index == 0:
            lines.extend(predicate_lines)
        else:
            lines.append(pad + "  AND " + predicate_lines[0])
            lines.extend(predicate_lines[1:])
    return lines


def _format_predicate(predicate: Predicate, depth: int) -> list[str]:
    if isinstance(predicate, Comparison):
        return [str(predicate)]
    if isinstance(predicate, Exists):
        keyword = "NOT EXISTS" if predicate.negated else "EXISTS"
        return [keyword + " ("] + _format_block(predicate.query, depth + 1) + [
            _INDENT * depth + ")"
        ]
    if isinstance(predicate, InSubquery):
        keyword = "NOT IN" if predicate.negated else "IN"
        head = f"{predicate.column} {keyword} ("
        return [head] + _format_block(predicate.query, depth + 1) + [
            _INDENT * depth + ")"
        ]
    if isinstance(predicate, QuantifiedComparison):
        head = f"{predicate.column} {predicate.op} {predicate.quantifier} ("
        if predicate.negated:
            head = "NOT " + head
        return [head] + _format_block(predicate.query, depth + 1) + [
            _INDENT * depth + ")"
        ]
    raise TypeError(f"unexpected predicate: {predicate!r}")


def format_literal(literal: Literal) -> str:
    """Render a literal exactly as :class:`Literal.__str__` does."""
    return str(literal)
