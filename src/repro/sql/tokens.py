"""Token definitions for the QueryVis SQL fragment.

The lexer (:mod:`repro.sql.lexer`) produces a flat sequence of
:class:`Token` objects which the recursive-descent parser consumes.  Keeping
the token vocabulary tiny and explicit mirrors the small grammar in Fig. 4 of
the paper.

:class:`Token` is on the hot path of every compilation: corpus-scale runs
create millions of tokens, and the pipeline's parse cache hashes
``(type, value)`` pairs on every lookup.  It is therefore a ``__slots__``
class with its hash precomputed at construction instead of a dataclass —
no per-instance ``__dict__``, no repeated tuple hashing.  Instances are
immutable by convention (nothing in the package mutates a token after the
lexer creates it).
"""

from __future__ import annotations

import enum
from typing import Union


class TokenType(enum.Enum):
    """Kinds of lexical tokens recognised by the lexer."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"  # < <= = <> >= > !=
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    SEMICOLON = "semicolon"
    EOF = "eof"


#: Keywords recognised by the lexer (always reported upper-case).
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "AND",
        "NOT",
        "EXISTS",
        "IN",
        "ANY",
        "ALL",
        "AS",
        "GROUP",
        "BY",
        "OR",  # recognised so we can give a precise "unsupported" error
        "DISTINCT",
        "JOIN",
        "ON",
        "HAVING",
        "ORDER",
        "UNION",
        "LIMIT",
        "OFFSET",
        "ASC",
        "DESC",
    }
)

#: Comparison operators of the supported fragment, in canonical spelling.
COMPARISON_OPERATORS = ("<", "<=", "=", "<>", ">=", ">")

#: Aggregate functions accepted in the GROUP BY extension.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class Token:
    """A single lexical token.

    Attributes
    ----------
    type:
        The :class:`TokenType` of this token.
    value:
        Canonical text of the token.  Keywords and operators are upper-cased
        / normalised; identifiers keep their original spelling; string
        literals exclude the surrounding quotes.
    position:
        Character offset of the first character of the token in the source.
    """

    __slots__ = ("type", "value", "position", "_hash")

    type: TokenType
    value: Union[str, int, float]
    position: int

    def __init__(self, type: TokenType, value: str, position: int) -> None:
        self.type = type
        self.value = value
        self.position = position
        # Computed lazily: the lexer creates millions of tokens on cold
        # corpus runs, but only the parse-stage cache key ever hashes them.
        self._hash = -1

    def is_keyword(self, word: str) -> bool:
        """Return True if this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value == word.upper()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.type is other.type
            and self.value == other.value
            and self.position == other.position
        )

    def __hash__(self) -> int:
        h = self._hash
        if h == -1:
            h = hash((self.type, self.value, self.position))
            if h == -1:  # hash() never returns -1; it is our "unset" marker
                h = -2
            self._hash = h
        return h

    def __reduce__(self):
        # __slots__ classes have no default pickle state; rebuilding through
        # the constructor also recomputes the cached hash on load.
        return (Token, (self.type, self.value, self.position))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, pos={self.position})"


def normalize_operator(text: str) -> str:
    """Return the canonical spelling of a comparison operator.

    ``!=`` is accepted as a synonym for ``<>`` because it is common in the
    wild, but the canonical operator set of the paper (Fig. 4) uses ``<>``.
    """
    if text == "!=":
        return "<>"
    return text
