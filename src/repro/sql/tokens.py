"""Token definitions for the QueryVis SQL fragment.

The lexer (:mod:`repro.sql.lexer`) produces a flat sequence of
:class:`Token` objects which the recursive-descent parser consumes.  Keeping
the token vocabulary tiny and explicit mirrors the small grammar in Fig. 4 of
the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Kinds of lexical tokens recognised by the lexer."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"  # < <= = <> >= > !=
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    SEMICOLON = "semicolon"
    EOF = "eof"


#: Keywords recognised by the lexer (always reported upper-case).
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "AND",
        "NOT",
        "EXISTS",
        "IN",
        "ANY",
        "ALL",
        "AS",
        "GROUP",
        "BY",
        "OR",  # recognised so we can give a precise "unsupported" error
        "DISTINCT",
        "JOIN",
        "ON",
        "HAVING",
        "ORDER",
        "UNION",
    }
)

#: Comparison operators of the supported fragment, in canonical spelling.
COMPARISON_OPERATORS = ("<", "<=", "=", "<>", ">=", ">")

#: Aggregate functions accepted in the GROUP BY extension.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    type:
        The :class:`TokenType` of this token.
    value:
        Canonical text of the token.  Keywords and operators are upper-cased
        / normalised; identifiers keep their original spelling; string
        literals exclude the surrounding quotes.
    position:
        Character offset of the first character of the token in the source.
    """

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Return True if this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value == word.upper()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, pos={self.position})"


def normalize_operator(text: str) -> str:
    """Return the canonical spelling of a comparison operator.

    ``!=`` is accepted as a synonym for ``<>`` because it is common in the
    wild, but the canonical operator set of the paper (Fig. 4) uses ``<>``.
    """
    if text == "!=":
        return "<>"
    return text
