"""Single-pass regex lexer for the QueryVis SQL fragment.

The supported grammar (Fig. 4 of the paper) needs identifiers, string/number
literals, six comparison operators and a handful of punctuation characters.
Comments (``--`` line comments and ``/* ... */`` block comments) are skipped
so that queries copied from the paper's appendix or from real codebases
tokenize cleanly.

The implementation is one compiled *master pattern* with a named group per
token class; each call to :func:`re.Pattern.match` consumes exactly one
token (or one run of ignorable whitespace/comments), replacing the previous
char-at-a-time scanner.  Two further cold-path economies:

* identifier and keyword spellings are interned and memoized in a shared
  word table, so a corpus that repeats ``SELECT``/``Sailors``/``sid``
  thousands of times classifies and allocates each spelling once;
* string literals are sliced wholesale between the quote positions (the
  ``''`` escape is handled by one ``str.replace``) instead of being built
  one character at a time.
"""

from __future__ import annotations

import re
import sys

from .errors import SQLSyntaxError
from .tokens import KEYWORDS, Token, TokenType, normalize_operator

#: One alternative per token class, each swallowing *trailing* whitespace
#: so one match usually covers "token + gap to the next token" — halving
#: the number of match iterations on typical input.  The ``skip``
#: alternative only has to handle comments (and any whitespace adjacent to
#: them, or leading the text).  Order matters only for overlapping
#: prefixes: comments must precede operators/punctuation so ``--`` and
#: ``/*`` are not split into single characters (neither ``-`` nor ``/`` is
#: a token of the fragment, so both would otherwise be hard errors).
_MASTER_PATTERN = re.compile(
    r"""
      (?P<skip>      (?: \s+ | --[^\n]* | /\*(?s:.*?)\*/ )+ )
    | (?P<qcol>      [A-Za-z_][A-Za-z0-9_$]* \. [A-Za-z_][A-Za-z0-9_$]* ) \s*
    | (?P<word>      [A-Za-z_][A-Za-z0-9_$]* ) \s*
    | (?P<number>    [0-9]+(?:\.[0-9]+)? ) \s*
    | (?P<string>    '[^']*(?:''[^']*)*' ) \s*
    | (?P<quoted>    "[^"]*" ) \s*
    | (?P<operator>  (?: <= | >= | <> | != | [<>=] ) ) \s*
    | (?P<comma>,\s*) | (?P<dot>\.\s*) | (?P<lparen>\(\s*) | (?P<rparen>\)\s*)
    | (?P<star>\*\s*) | (?P<semicolon>;\s*)
""",
    re.VERBOSE,
)

#: Group numbers of the master pattern (``lastindex`` is an int compare,
#: cheaper than the ``lastgroup`` string lookup on the per-token path).
_G_SKIP = _MASTER_PATTERN.groupindex["skip"]
_G_QCOL = _MASTER_PATTERN.groupindex["qcol"]
_G_WORD = _MASTER_PATTERN.groupindex["word"]
_G_NUMBER = _MASTER_PATTERN.groupindex["number"]
_G_STRING = _MASTER_PATTERN.groupindex["string"]
_G_QUOTED = _MASTER_PATTERN.groupindex["quoted"]
_G_OPERATOR = _MASTER_PATTERN.groupindex["operator"]

#: lastindex → (TokenType, canonical value) for the punctuation groups —
#: the value is fixed per group, so the match object is never consulted.
_SIMPLE_TOKENS = {
    _MASTER_PATTERN.groupindex[name]: (token_type, value)
    for name, token_type, value in (
        ("comma", TokenType.COMMA, ","),
        ("dot", TokenType.DOT, "."),
        ("lparen", TokenType.LPAREN, "("),
        ("rparen", TokenType.RPAREN, ")"),
        ("star", TokenType.STAR, "*"),
        ("semicolon", TokenType.SEMICOLON, ";"),
    )
}

_T_NUMBER = TokenType.NUMBER
_T_STRING = TokenType.STRING
_T_IDENTIFIER = TokenType.IDENTIFIER
_T_OPERATOR = TokenType.OPERATOR
_T_DOT = TokenType.DOT

#: Shared word table: exact spelling → (TokenType, canonical interned value).
#: Keywords in any case and repeated identifiers classify once per spelling.
_WORD_TABLE: dict[str, tuple[TokenType, str]] = {}

#: Safety valve so pathological corpora cannot grow the table unboundedly.
_WORD_TABLE_LIMIT = 1 << 16


def _classify_word(word: str) -> tuple[TokenType, str]:
    entry = _WORD_TABLE.get(word)
    if entry is None:
        upper = word.upper()
        if upper in KEYWORDS:
            entry = (TokenType.KEYWORD, sys.intern(upper))
        else:
            entry = (TokenType.IDENTIFIER, sys.intern(word))
        if len(_WORD_TABLE) >= _WORD_TABLE_LIMIT:
            _WORD_TABLE.clear()
        _WORD_TABLE[word] = entry
    return entry


class TokenStream:
    """The lexer's output as three parallel arrays plus the source text.

    The parser (and the pipeline's parse-stage cache key) only ever needs
    a token's type and value, and the odd error message needs a position —
    none of which requires one heap object per token.  ``scan`` therefore
    fills three flat lists; :class:`Token` objects are materialized only
    by the compatibility wrapper :func:`tokenize`.
    """

    __slots__ = ("types", "values", "positions", "text")

    def __init__(
        self,
        types: list[TokenType],
        values: list[str],
        positions: list[int],
        text: str,
    ) -> None:
        self.types = types
        self.values = values
        self.positions = positions
        self.text = text

    def __len__(self) -> int:
        return len(self.types)

    def tokens(self) -> list[Token]:
        """Materialize classic :class:`Token` objects (compat/debug path)."""
        return [
            Token(kind, value, position)
            for kind, value, position in zip(self.types, self.values, self.positions)
        ]


def scan(text: str) -> TokenStream:
    """Tokenize ``text`` into a :class:`TokenStream` (ends with EOF).

    The scan is one C-level :func:`re.Pattern.finditer` sweep; a gap
    between consecutive matches is the error position (the master pattern
    matches any legal token *or* ignorable run, so legal input has no
    gaps).
    """
    length = len(text)
    word_table = _WORD_TABLE
    classify = _classify_word
    simple_tokens = _SIMPLE_TOKENS
    types: list[TokenType] = []
    values: list[str] = []
    positions: list[int] = []
    add_type = types.append
    add_value = values.append
    add_position = positions.append
    covered = 0
    for m in _MASTER_PATTERN.finditer(text):
        start, end = m.span()
        covered += end - start
        group = m.lastindex
        if group == _G_QCOL:
            # "T1.attr" in one match: emit IDENTIFIER DOT IDENTIFIER — the
            # single hottest token sequence of the fragment, fused so it
            # costs one regex step instead of three.
            qualified = m.group(_G_QCOL)
            cut = qualified.index(".")
            first = qualified[:cut]
            second = qualified[cut + 1 :]
            entry = word_table.get(first)
            if entry is None:
                entry = classify(first)
            add_type(entry[0])
            add_value(entry[1])
            add_position(start)
            add_type(_T_DOT)
            add_value(".")
            add_position(start + cut)
            entry = word_table.get(second)
            if entry is None:
                entry = classify(second)
            add_type(entry[0])
            add_value(entry[1])
            add_position(start + cut + 1)
            continue
        if group == _G_WORD:
            word = m.group(_G_WORD)
            entry = word_table.get(word)
            if entry is None:
                entry = classify(word)
            add_type(entry[0])
            add_value(entry[1])
        elif group == _G_SKIP:
            continue
        elif group > _G_OPERATOR:
            kind, value = simple_tokens[group]
            add_type(kind)
            add_value(value)
        elif group == _G_OPERATOR:
            add_type(_T_OPERATOR)
            add_value(normalize_operator(m.group(_G_OPERATOR)))
        elif group == _G_NUMBER:
            add_type(_T_NUMBER)
            add_value(m.group(_G_NUMBER))
        elif group == _G_STRING:
            # Slice between the quotes; '' escapes a single quote.
            value = text[start + 1 : m.end(_G_STRING) - 1]
            if "''" in value:
                value = value.replace("''", "'")
            add_type(_T_STRING)
            add_value(value)
        else:  # _G_QUOTED
            add_type(_T_IDENTIFIER)
            add_value(text[start + 1 : m.end(_G_QUOTED) - 1])
        add_position(start)
    if covered != length:
        # Some stretch of the input matched nothing.  Rescan match-by-match
        # (cold error path) to pinpoint the first gap.
        pos = 0
        for m in _MASTER_PATTERN.finditer(text):
            start, end = m.span()
            if start != pos:
                break
            pos = end
        raise _scan_error(text, pos)
    add_type(TokenType.EOF)
    add_value("")
    add_position(length)
    return TokenStream(types, values, positions, text)


def _scan_error(text: str, pos: int) -> SQLSyntaxError:
    """The precise error for input the master pattern cannot match."""
    if text.startswith("/*", pos):
        return SQLSyntaxError("unterminated block comment", pos)
    ch = text[pos]
    if ch == "'":
        return SQLSyntaxError("unterminated string literal", pos)
    if ch == '"':
        return SQLSyntaxError("unterminated quoted identifier", pos)
    return SQLSyntaxError(f"unexpected character {ch!r}", pos)


class Lexer:
    """Tokenizes SQL source text into a list of :class:`Token` objects."""

    def __init__(self, text: str) -> None:
        self._text = text

    def tokenize(self) -> list[Token]:
        """Return all tokens of the source text, ending with an EOF token."""
        return scan(self._text).tokens()


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize ``text`` and return the token list."""
    return scan(text).tokens()
