"""Hand-written lexer for the QueryVis SQL fragment.

The lexer is intentionally simple: the supported grammar (Fig. 4 of the
paper) needs identifiers, string/number literals, six comparison operators
and a handful of punctuation characters.  Comments (``--`` line comments and
``/* ... */`` block comments) are skipped so that queries copied from the
paper's appendix or from real codebases tokenize cleanly.
"""

from __future__ import annotations

from typing import Iterator

from .errors import SQLSyntaxError
from .tokens import KEYWORDS, Token, TokenType, normalize_operator

_WHITESPACE = " \t\r\n"
_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789$")
_DIGITS = set("0123456789")


class Lexer:
    """Tokenizes SQL source text into a list of :class:`Token` objects."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._length = len(text)

    def tokenize(self) -> list[Token]:
        """Return all tokens of the source text, ending with an EOF token."""
        tokens = list(self._iter_tokens())
        tokens.append(Token(TokenType.EOF, "", self._length))
        return tokens

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= self._length:
                return
            ch = self._text[self._pos]
            if ch in _IDENT_START:
                yield self._lex_word()
            elif ch in _DIGITS:
                yield self._lex_number()
            elif ch == "'":
                yield self._lex_string()
            elif ch == '"':
                yield self._lex_quoted_identifier()
            else:
                yield self._lex_symbol()

    def _skip_whitespace_and_comments(self) -> None:
        text, length = self._text, self._length
        while self._pos < length:
            ch = text[self._pos]
            if ch in _WHITESPACE:
                self._pos += 1
            elif text.startswith("--", self._pos):
                end = text.find("\n", self._pos)
                self._pos = length if end == -1 else end + 1
            elif text.startswith("/*", self._pos):
                end = text.find("*/", self._pos + 2)
                if end == -1:
                    raise SQLSyntaxError("unterminated block comment", self._pos)
                self._pos = end + 2
            else:
                return

    def _lex_word(self) -> Token:
        start = self._pos
        text, length = self._text, self._length
        while self._pos < length and text[self._pos] in _IDENT_CONT:
            self._pos += 1
        word = text[start : self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, start)
        return Token(TokenType.IDENTIFIER, word, start)

    def _lex_number(self) -> Token:
        start = self._pos
        text, length = self._text, self._length
        while self._pos < length and text[self._pos] in _DIGITS:
            self._pos += 1
        if self._pos < length and text[self._pos] == ".":
            # Only treat the dot as part of the number when followed by a
            # digit; "T1.attr" must remain three tokens.
            if self._pos + 1 < length and text[self._pos + 1] in _DIGITS:
                self._pos += 1
                while self._pos < length and text[self._pos] in _DIGITS:
                    self._pos += 1
        return Token(TokenType.NUMBER, text[start : self._pos], start)

    def _lex_string(self) -> Token:
        start = self._pos
        self._pos += 1  # opening quote
        chars: list[str] = []
        text, length = self._text, self._length
        while self._pos < length:
            ch = text[self._pos]
            if ch == "'":
                # '' escapes a single quote inside the literal
                if self._pos + 1 < length and text[self._pos + 1] == "'":
                    chars.append("'")
                    self._pos += 2
                    continue
                self._pos += 1
                return Token(TokenType.STRING, "".join(chars), start)
            chars.append(ch)
            self._pos += 1
        raise SQLSyntaxError("unterminated string literal", start)

    def _lex_quoted_identifier(self) -> Token:
        start = self._pos
        end = self._text.find('"', self._pos + 1)
        if end == -1:
            raise SQLSyntaxError("unterminated quoted identifier", start)
        value = self._text[self._pos + 1 : end]
        self._pos = end + 1
        return Token(TokenType.IDENTIFIER, value, start)

    def _lex_symbol(self) -> Token:
        start = self._pos
        text = self._text
        two = text[start : start + 2]
        if two in ("<=", ">=", "<>", "!="):
            self._pos += 2
            return Token(TokenType.OPERATOR, normalize_operator(two), start)
        ch = text[start]
        self._pos += 1
        if ch in "<>=":
            return Token(TokenType.OPERATOR, ch, start)
        if ch == ",":
            return Token(TokenType.COMMA, ch, start)
        if ch == ".":
            return Token(TokenType.DOT, ch, start)
        if ch == "(":
            return Token(TokenType.LPAREN, ch, start)
        if ch == ")":
            return Token(TokenType.RPAREN, ch, start)
        if ch == "*":
            return Token(TokenType.STAR, ch, start)
        if ch == ";":
            return Token(TokenType.SEMICOLON, ch, start)
        raise SQLSyntaxError(f"unexpected character {ch!r}", start)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize ``text`` and return the token list."""
    return Lexer(text).tokenize()
