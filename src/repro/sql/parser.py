"""Recursive-descent parser for the QueryVis SQL fragment (Fig. 4).

The parser accepts:

* ``SELECT`` lists of qualified/unqualified columns, ``*`` and aggregate
  calls (``COUNT``, ``SUM``, ``AVG``, ``MIN``, ``MAX``);
* comma-separated ``FROM`` lists with optional aliases (with or without
  ``AS``);
* ``WHERE`` clauses that are conjunctions (``AND``) of join predicates,
  selection predicates, ``[NOT] EXISTS``, ``[NOT] IN`` and ``op ANY/ALL``
  subqueries;
* an optional ``GROUP BY`` clause (appendix extension);
* ``SELECT DISTINCT`` and the ranked-access clauses ``ORDER BY <col
  [ASC|DESC], ...>`` and ``LIMIT k [OFFSET m]``.

Constructs outside the fragment (``OR``, explicit ``JOIN``, ``HAVING``,
``UNION``) raise :class:`UnsupportedSQLError` with a message naming the
offending construct, so that callers can report a precise reason rather
than a generic syntax error.

The implementation is written for the cold path: it consumes the lexer's
:class:`~repro.sql.lexer.TokenStream` parallel arrays directly (no token
objects are materialized), tracks the current token type/value in plain
attributes, and compares keywords against pre-upper-cased literals.  A
``list[Token]`` is still accepted for compatibility and converted up front.
"""

from __future__ import annotations

from .ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Exists,
    InSubquery,
    Literal,
    OrderItem,
    Predicate,
    QuantifiedComparison,
    SelectItem,
    SelectQuery,
    Star,
    TableRef,
)
from .errors import SQLSyntaxError, UnsupportedSQLError
from .lexer import TokenStream, scan
from .tokens import AGGREGATE_FUNCTIONS, Token, TokenType

_UNSUPPORTED_KEYWORDS = {
    "OR": "disjunction (OR) is outside the supported fragment",
    "JOIN": "explicit JOIN syntax is not supported; use implicit joins",
    "ON": "explicit JOIN syntax is not supported; use implicit joins",
    "HAVING": "HAVING is not supported",
    "UNION": "UNION is not supported",
}

_KEYWORD = TokenType.KEYWORD
_IDENTIFIER = TokenType.IDENTIFIER
_NUMBER = TokenType.NUMBER
_STRING = TokenType.STRING
_OPERATOR = TokenType.OPERATOR
_COMMA = TokenType.COMMA
_DOT = TokenType.DOT
_LPAREN = TokenType.LPAREN
_RPAREN = TokenType.RPAREN
_STAR = TokenType.STAR
_SEMICOLON = TokenType.SEMICOLON
_EOF = TokenType.EOF


class Parser:
    """Parses a token stream into a :class:`SelectQuery` AST."""

    def __init__(self, tokens: TokenStream | list[Token]) -> None:
        if isinstance(tokens, TokenStream):
            stream = tokens
        else:
            stream = TokenStream(
                [token.type for token in tokens],
                [token.value for token in tokens],
                [token.position for token in tokens],
                "",
            )
        self._types = stream.types
        self._values = stream.values
        self._positions = stream.positions
        self._index = 0
        if self._types:
            self._type = self._types[0]
            self._value = self._values[0]
        else:
            self._type = _EOF
            self._value = ""

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #

    def parse_query(self) -> SelectQuery:
        """Parse a complete query and require that all input is consumed."""
        query = self._parse_select_query()
        if self._type is _SEMICOLON:
            self._advance()
        if self._type is not _EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input {self._value!r}",
                self._positions[self._index],
            )
        return query

    # ------------------------------------------------------------------ #
    # token-stream helpers
    # ------------------------------------------------------------------ #

    def _advance(self) -> None:
        if self._type is not _EOF:
            index = self._index + 1
            self._index = index
            self._type = self._types[index]
            self._value = self._values[index]

    def _expect(self, token_type: TokenType, value: str | None = None) -> str:
        """Consume the current token and return its value."""
        if self._type is not token_type or (value is not None and self._value != value):
            expected = value if value is not None else token_type.name
            raise SQLSyntaxError(
                f"expected {expected}, found {self._value!r}",
                self._positions[self._index],
            )
        consumed = self._value
        self._advance()
        return consumed

    def _check_unsupported(self) -> None:
        # Call sites guard on ``self._type is _KEYWORD`` so the common
        # (non-keyword) token costs no method call at all.
        if self._value in _UNSUPPORTED_KEYWORDS:
            raise UnsupportedSQLError(_UNSUPPORTED_KEYWORDS[self._value])

    # ------------------------------------------------------------------ #
    # grammar rules
    # ------------------------------------------------------------------ #

    def _parse_select_query(self) -> SelectQuery:
        self._expect(_KEYWORD, "SELECT")
        distinct = False
        if self._type is _KEYWORD and self._value == "DISTINCT":
            distinct = True
            self._advance()
        if self._type is _KEYWORD:
            self._check_unsupported()
        select_items = self._parse_select_list()
        self._expect(_KEYWORD, "FROM")
        from_tables = self._parse_from_list()
        where: tuple[Predicate, ...] = ()
        if self._type is _KEYWORD and self._value == "WHERE":
            self._advance()
            where = tuple(self._parse_conjunction())
        group_by: tuple[ColumnRef, ...] = ()
        if self._type is _KEYWORD and self._value == "GROUP":
            self._advance()
            self._expect(_KEYWORD, "BY")
            group_by = tuple(self._parse_group_by_list())
        order_by: tuple[OrderItem, ...] = ()
        if self._type is _KEYWORD and self._value == "ORDER":
            self._advance()
            self._expect(_KEYWORD, "BY")
            order_by = tuple(self._parse_order_by_list())
        limit: int | None = None
        offset = 0
        if self._type is _KEYWORD and self._value == "LIMIT":
            self._advance()
            limit = self._parse_nonnegative_int("LIMIT")
            if self._type is _KEYWORD and self._value == "OFFSET":
                self._advance()
                offset = self._parse_nonnegative_int("OFFSET")
        if self._type is _KEYWORD:
            self._check_unsupported()
        return SelectQuery(
            select_items=tuple(select_items),
            from_tables=tuple(from_tables),
            where=where,
            group_by=group_by,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_select_list(self) -> list[SelectItem]:
        if self._type is _STAR:
            self._advance()
            return [Star()]
        items: list[SelectItem] = [self._parse_select_item()]
        while self._type is _COMMA:
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if (
            self._type is _IDENTIFIER
            and self._value.upper() in AGGREGATE_FUNCTIONS
            and self._types[self._index + 1] is _LPAREN
        ):
            return self._parse_aggregate_call()
        return self._parse_column_ref()

    def _parse_aggregate_call(self) -> AggregateCall:
        func = self._value.upper()
        self._advance()
        self._expect(_LPAREN)
        argument: ColumnRef | Star
        if self._type is _STAR:
            self._advance()
            argument = Star()
        else:
            argument = self._parse_column_ref()
        self._expect(_RPAREN)
        return AggregateCall(func=func, argument=argument)

    def _parse_column_ref(self) -> ColumnRef:
        # Hand-rolled cursor stepping: this is the most-called grammar rule,
        # and the generic _expect/_advance pair costs two method calls per
        # consumed token.
        if self._type is not _IDENTIFIER:
            raise SQLSyntaxError(
                f"expected IDENTIFIER, found {self._value!r}",
                self._positions[self._index],
            )
        first = self._value
        types = self._types
        index = self._index + 1
        if types[index] is _DOT:
            if types[index + 1] is not _IDENTIFIER:
                self._index = index + 1
                self._type = types[index + 1]
                self._value = self._values[index + 1]
                raise SQLSyntaxError(
                    f"expected IDENTIFIER, found {self._value!r}",
                    self._positions[index + 1],
                )
            second = self._values[index + 1]
            index += 2
            self._index = index
            self._type = types[index]
            self._value = self._values[index]
            return ColumnRef(table=first, column=second)
        self._index = index
        self._type = types[index]
        self._value = self._values[index]
        return ColumnRef(table=None, column=first)

    def _parse_from_list(self) -> list[TableRef]:
        tables = [self._parse_table_ref()]
        while self._type is _COMMA:
            self._advance()
            tables.append(self._parse_table_ref())
        return tables

    def _parse_table_ref(self) -> TableRef:
        if self._type is _KEYWORD:
            self._check_unsupported()
        name = self._expect(_IDENTIFIER)
        alias: str | None = None
        if self._type is _KEYWORD and self._value == "AS":
            self._advance()
            alias = self._expect(_IDENTIFIER)
        elif self._type is _IDENTIFIER:
            alias = self._value
            self._advance()
        return TableRef(name=name, alias=alias)

    def _parse_group_by_list(self) -> list[ColumnRef]:
        columns = [self._parse_column_ref()]
        while self._type is _COMMA:
            self._advance()
            columns.append(self._parse_column_ref())
        return columns

    def _parse_order_by_list(self) -> list[OrderItem]:
        items = [self._parse_order_item()]
        while self._type is _COMMA:
            self._advance()
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_column_ref()
        descending = False
        if self._type is _KEYWORD and self._value in ("ASC", "DESC"):
            descending = self._value == "DESC"
            self._advance()
        return OrderItem(column=column, descending=descending)

    def _parse_nonnegative_int(self, clause: str) -> int:
        if self._type is not _NUMBER or "." in self._value:
            raise SQLSyntaxError(
                f"{clause} requires a non-negative integer, found {self._value!r}",
                self._positions[self._index],
            )
        value = int(self._value)
        self._advance()
        return value

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    def _parse_conjunction(self) -> list[Predicate]:
        predicates = [self._parse_predicate()]
        while self._type is _KEYWORD:
            self._check_unsupported()
            if self._value == "AND":
                self._advance()
                predicates.append(self._parse_predicate())
            else:
                break
        return predicates

    def _parse_predicate(self) -> Predicate:
        if self._type is _KEYWORD:
            self._check_unsupported()
            if self._value == "NOT":
                return self._parse_negated_predicate()
            if self._value == "EXISTS":
                self._advance()
                return Exists(query=self._parse_parenthesized_query(), negated=False)
        return self._parse_comparison_like()

    def _parse_negated_predicate(self) -> Predicate:
        self._expect(_KEYWORD, "NOT")
        if self._type is _KEYWORD and self._value == "EXISTS":
            self._advance()
            return Exists(query=self._parse_parenthesized_query(), negated=True)
        # "NOT column ..." — applies to IN or quantified comparison.
        predicate = self._parse_comparison_like()
        if isinstance(predicate, InSubquery):
            return InSubquery(
                column=predicate.column, query=predicate.query, negated=True
            )
        if isinstance(predicate, QuantifiedComparison):
            return QuantifiedComparison(
                column=predicate.column,
                op=predicate.op,
                quantifier=predicate.quantifier,
                query=predicate.query,
                negated=True,
            )
        raise UnsupportedSQLError(
            "NOT may only negate EXISTS, IN, or quantified subquery predicates"
        )

    def _parse_comparison_like(self) -> Predicate:
        left = self._parse_operand()
        if self._type is _KEYWORD:
            if self._value == "NOT":
                position = self._positions[self._index]
                self._advance()
                self._expect(_KEYWORD, "IN")
                if not isinstance(left, ColumnRef):
                    raise SQLSyntaxError("IN requires a column on the left", position)
                return InSubquery(
                    column=left, query=self._parse_parenthesized_query(), negated=True
                )
            if self._value == "IN":
                position = self._positions[self._index]
                self._advance()
                if not isinstance(left, ColumnRef):
                    raise SQLSyntaxError("IN requires a column on the left", position)
                return InSubquery(
                    column=left, query=self._parse_parenthesized_query(), negated=False
                )
        if self._type is not _OPERATOR:
            raise SQLSyntaxError(
                f"expected comparison operator, found {self._value!r}",
                self._positions[self._index],
            )
        op = self._value
        self._advance()
        if self._type is _KEYWORD and self._value in ("ANY", "ALL"):
            quantifier = self._value
            position = self._positions[self._index]
            self._advance()
            if not isinstance(left, ColumnRef):
                raise SQLSyntaxError(
                    "quantified comparison requires a column on the left", position
                )
            return QuantifiedComparison(
                column=left,
                op=op,
                quantifier=quantifier,
                query=self._parse_parenthesized_query(),
            )
        if self._type is _LPAREN and (
            self._types[self._index + 1] is _KEYWORD
            and self._values[self._index + 1] == "SELECT"
        ):
            raise UnsupportedSQLError(
                "scalar subqueries are not supported; use IN, EXISTS, ANY or ALL"
            )
        right = self._parse_operand()
        return Comparison(left=left, op=op, right=right)

    def _parse_operand(self) -> ColumnRef | Literal:
        kind = self._type
        if kind is _IDENTIFIER:
            return self._parse_column_ref()
        if kind is _NUMBER:
            text = self._value
            self._advance()
            return Literal(float(text) if "." in text else int(text))
        if kind is _STRING:
            value = self._value
            self._advance()
            return Literal(value)
        raise SQLSyntaxError(
            f"expected column or literal, found {self._value!r}",
            self._positions[self._index],
        )

    def _parse_parenthesized_query(self) -> SelectQuery:
        self._expect(_LPAREN)
        query = self._parse_select_query()
        self._expect(_RPAREN)
        return query


def parse(text: str) -> SelectQuery:
    """Parse SQL ``text`` into a :class:`SelectQuery` AST."""
    return Parser(scan(text)).parse_query()
