"""Recursive-descent parser for the QueryVis SQL fragment (Fig. 4).

The parser accepts:

* ``SELECT`` lists of qualified/unqualified columns, ``*`` and aggregate
  calls (``COUNT``, ``SUM``, ``AVG``, ``MIN``, ``MAX``);
* comma-separated ``FROM`` lists with optional aliases (with or without
  ``AS``);
* ``WHERE`` clauses that are conjunctions (``AND``) of join predicates,
  selection predicates, ``[NOT] EXISTS``, ``[NOT] IN`` and ``op ANY/ALL``
  subqueries;
* an optional ``GROUP BY`` clause (appendix extension).

Constructs outside the fragment (``OR``, explicit ``JOIN``, ``HAVING``,
``UNION``, ``ORDER BY``, ``DISTINCT``) raise :class:`UnsupportedSQLError`
with a message naming the offending construct, so that callers can report a
precise reason rather than a generic syntax error.
"""

from __future__ import annotations

from .ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Exists,
    InSubquery,
    Literal,
    Predicate,
    QuantifiedComparison,
    SelectItem,
    SelectQuery,
    Star,
    TableRef,
)
from .errors import SQLSyntaxError, UnsupportedSQLError
from .lexer import tokenize
from .tokens import AGGREGATE_FUNCTIONS, Token, TokenType

_UNSUPPORTED_KEYWORDS = {
    "OR": "disjunction (OR) is outside the supported fragment",
    "JOIN": "explicit JOIN syntax is not supported; use implicit joins",
    "ON": "explicit JOIN syntax is not supported; use implicit joins",
    "HAVING": "HAVING is not supported",
    "ORDER": "ORDER BY is not supported",
    "UNION": "UNION is not supported",
    "DISTINCT": "DISTINCT is not supported (set semantics are assumed)",
}


class Parser:
    """Parses a token stream into a :class:`SelectQuery` AST."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #

    def parse_query(self) -> SelectQuery:
        """Parse a complete query and require that all input is consumed."""
        query = self._parse_select_query()
        if self._current.type is TokenType.SEMICOLON:
            self._advance()
        if self._current.type is not TokenType.EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input {self._current.value!r}",
                self._current.position,
            )
        return query

    # ------------------------------------------------------------------ #
    # token-stream helpers
    # ------------------------------------------------------------------ #

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self._current
        if token.type is not token_type or (value is not None and token.value != value):
            expected = value if value is not None else token_type.name
            raise SQLSyntaxError(
                f"expected {expected}, found {token.value!r}", token.position
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        return self._expect(TokenType.KEYWORD, word.upper())

    def _check_unsupported(self, token: Token) -> None:
        if token.type is TokenType.KEYWORD and token.value in _UNSUPPORTED_KEYWORDS:
            raise UnsupportedSQLError(_UNSUPPORTED_KEYWORDS[token.value])

    # ------------------------------------------------------------------ #
    # grammar rules
    # ------------------------------------------------------------------ #

    def _parse_select_query(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        self._check_unsupported(self._current)
        select_items = self._parse_select_list()
        self._expect_keyword("FROM")
        from_tables = self._parse_from_list()
        where: tuple[Predicate, ...] = ()
        if self._current.is_keyword("WHERE"):
            self._advance()
            where = tuple(self._parse_conjunction())
        group_by: tuple[ColumnRef, ...] = ()
        if self._current.is_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            group_by = tuple(self._parse_group_by_list())
        self._check_unsupported(self._current)
        return SelectQuery(
            select_items=tuple(select_items),
            from_tables=tuple(from_tables),
            where=where,
            group_by=group_by,
        )

    def _parse_select_list(self) -> list[SelectItem]:
        if self._current.type is TokenType.STAR:
            self._advance()
            return [Star()]
        items: list[SelectItem] = [self._parse_select_item()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        token = self._current
        if (
            token.type is TokenType.IDENTIFIER
            and token.value.upper() in AGGREGATE_FUNCTIONS
            and self._peek().type is TokenType.LPAREN
        ):
            return self._parse_aggregate_call()
        return self._parse_column_ref()

    def _parse_aggregate_call(self) -> AggregateCall:
        func = self._advance().value.upper()
        self._expect(TokenType.LPAREN)
        argument: ColumnRef | Star
        if self._current.type is TokenType.STAR:
            self._advance()
            argument = Star()
        else:
            argument = self._parse_column_ref()
        self._expect(TokenType.RPAREN)
        return AggregateCall(func=func, argument=argument)

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENTIFIER)
        if self._current.type is TokenType.DOT:
            self._advance()
            second = self._expect(TokenType.IDENTIFIER)
            return ColumnRef(table=first.value, column=second.value)
        return ColumnRef(table=None, column=first.value)

    def _parse_from_list(self) -> list[TableRef]:
        tables = [self._parse_table_ref()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            tables.append(self._parse_table_ref())
        return tables

    def _parse_table_ref(self) -> TableRef:
        self._check_unsupported(self._current)
        name = self._expect(TokenType.IDENTIFIER).value
        alias: str | None = None
        if self._current.is_keyword("AS"):
            self._advance()
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    def _parse_group_by_list(self) -> list[ColumnRef]:
        columns = [self._parse_column_ref()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            columns.append(self._parse_column_ref())
        return columns

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    def _parse_conjunction(self) -> list[Predicate]:
        predicates = [self._parse_predicate()]
        while True:
            token = self._current
            self._check_unsupported(token)
            if token.is_keyword("AND"):
                self._advance()
                predicates.append(self._parse_predicate())
            else:
                return predicates

    def _parse_predicate(self) -> Predicate:
        token = self._current
        self._check_unsupported(token)
        if token.is_keyword("NOT"):
            return self._parse_negated_predicate()
        if token.is_keyword("EXISTS"):
            self._advance()
            return Exists(query=self._parse_parenthesized_query(), negated=False)
        return self._parse_comparison_like()

    def _parse_negated_predicate(self) -> Predicate:
        self._expect_keyword("NOT")
        token = self._current
        if token.is_keyword("EXISTS"):
            self._advance()
            return Exists(query=self._parse_parenthesized_query(), negated=True)
        # "NOT column ..." — applies to IN or quantified comparison.
        predicate = self._parse_comparison_like()
        if isinstance(predicate, InSubquery):
            return InSubquery(
                column=predicate.column, query=predicate.query, negated=True
            )
        if isinstance(predicate, QuantifiedComparison):
            return QuantifiedComparison(
                column=predicate.column,
                op=predicate.op,
                quantifier=predicate.quantifier,
                query=predicate.query,
                negated=True,
            )
        raise UnsupportedSQLError(
            "NOT may only negate EXISTS, IN, or quantified subquery predicates"
        )

    def _parse_comparison_like(self) -> Predicate:
        left = self._parse_operand()
        token = self._current
        if token.is_keyword("NOT"):
            self._advance()
            self._expect_keyword("IN")
            if not isinstance(left, ColumnRef):
                raise SQLSyntaxError("IN requires a column on the left", token.position)
            return InSubquery(column=left, query=self._parse_parenthesized_query(), negated=True)
        if token.is_keyword("IN"):
            self._advance()
            if not isinstance(left, ColumnRef):
                raise SQLSyntaxError("IN requires a column on the left", token.position)
            return InSubquery(column=left, query=self._parse_parenthesized_query(), negated=False)
        if token.type is not TokenType.OPERATOR:
            raise SQLSyntaxError(
                f"expected comparison operator, found {token.value!r}", token.position
            )
        op = self._advance().value
        next_token = self._current
        if next_token.is_keyword("ANY") or next_token.is_keyword("ALL"):
            quantifier = self._advance().value
            if not isinstance(left, ColumnRef):
                raise SQLSyntaxError(
                    "quantified comparison requires a column on the left",
                    next_token.position,
                )
            return QuantifiedComparison(
                column=left,
                op=op,
                quantifier=quantifier,
                query=self._parse_parenthesized_query(),
            )
        if next_token.type is TokenType.LPAREN and self._peek().is_keyword("SELECT"):
            raise UnsupportedSQLError(
                "scalar subqueries are not supported; use IN, EXISTS, ANY or ALL"
            )
        right = self._parse_operand()
        return Comparison(left=left, op=op, right=right)

    def _parse_operand(self) -> ColumnRef | Literal:
        token = self._current
        if token.type is TokenType.IDENTIFIER:
            return self._parse_column_ref()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        raise SQLSyntaxError(
            f"expected column or literal, found {token.value!r}", token.position
        )

    def _parse_parenthesized_query(self) -> SelectQuery:
        self._expect(TokenType.LPAREN)
        query = self._parse_select_query()
        self._expect(TokenType.RPAREN)
        return query


def parse(text: str) -> SelectQuery:
    """Parse SQL ``text`` into a :class:`SelectQuery` AST."""
    return Parser(tokenize(text)).parse_query()
