"""Exception types raised by the SQL front end.

All parsing problems are reported through :class:`SQLSyntaxError` so callers
only need a single except clause; :class:`UnsupportedSQLError` distinguishes
queries that are syntactically fine but fall outside the SQL fragment
supported by QueryVis (Fig. 4 of the paper).
"""

from __future__ import annotations


class SQLError(Exception):
    """Base class for all SQL front-end errors."""


class SQLSyntaxError(SQLError):
    """The input text could not be tokenized or parsed.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    position:
        Character offset in the source text where the problem was detected,
        or ``None`` when the offset is unknown (e.g. unexpected end of input).
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class UnsupportedSQLError(SQLError):
    """The query parses but uses a construct outside the supported fragment.

    The supported fragment is nested conjunctive queries with inequalities
    (Section 4.4), optionally extended with a single GROUP BY clause and
    aggregate select items (Appendix C.3).  Disjunctions (OR), NULL handling,
    outer joins, set operations and HAVING are intentionally unsupported.
    """
