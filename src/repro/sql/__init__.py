"""SQL front end: lexer, parser, AST, formatter and text metrics.

The public surface of this package is:

* :func:`parse` — parse SQL text into a :class:`SelectQuery` AST;
* :func:`format_query` — canonical pretty-printing of an AST;
* the AST node classes re-exported from :mod:`repro.sql.ast`;
* :func:`text_metrics` — the word/token counts used by Section 4.8.
"""

from .ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Exists,
    InSubquery,
    Literal,
    OrderItem,
    Predicate,
    QuantifiedComparison,
    SelectItem,
    SelectQuery,
    Star,
    TableRef,
)
from .errors import SQLError, SQLSyntaxError, UnsupportedSQLError
from .formatter import format_inline, format_query
from .lexer import Lexer, tokenize
from .metrics import SQLTextMetrics, text_metrics, word_count
from .parser import Parser, parse

__all__ = [
    "AggregateCall",
    "ColumnRef",
    "Comparison",
    "Exists",
    "InSubquery",
    "Lexer",
    "Literal",
    "OrderItem",
    "Parser",
    "Predicate",
    "QuantifiedComparison",
    "SQLError",
    "SQLSyntaxError",
    "SQLTextMetrics",
    "SelectItem",
    "SelectQuery",
    "Star",
    "TableRef",
    "UnsupportedSQLError",
    "format_inline",
    "format_query",
    "parse",
    "text_metrics",
    "tokenize",
    "word_count",
]
