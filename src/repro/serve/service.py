"""Application core of the compile server — transport-free and fully async.

:class:`CompileService` owns one :class:`~repro.pipeline.DiagramCompiler`
and answers the questions the HTTP layer (:mod:`repro.serve.http`) routes
to it.  It layers three caches, probed in order:

1. **Response LRU** (:mod:`repro.serve.lru`) — bounded, in-memory, keyed
   by ``(fingerprint, roles, formats)``.  A hit returns a fully rendered
   JSON payload without touching the compiler thread.
2. **In-flight table** — the coalescing layer.  The first request for a
   canonical key starts one compile task; every concurrent request for an
   equivalent query (verbatim duplicate, predicate reordering, the
   Fig. 24 trio…) awaits *that same task* instead of compiling again.
3. **Compiler caches** — the pipeline's stage caches backed by the shared
   persistent :class:`~repro.pipeline.DiskCache`, exactly as in batch
   runs.  Stage caches are bounded here (``stage_cache_bound``): a
   long-running server clears them when they outgrow the bound and
   warm-starts from disk.

Coalescing needs the canonical key *before* the expensive back half, so
every request first runs the cheap front half (lex → … → fingerprint) on a
dedicated fingerprint thread; compiles run on a separate single compile
thread.  Two threads may race through the shared stage caches — that is
benign by design: stages are deterministic, so a lost race recomputes the
same value.

Overload policy: at most ``max_pending`` requests are admitted at once and
every admitted request is bounded by ``request_timeout``; both violations
shed with :class:`ServiceUnavailable` (HTTP 503) rather than queueing
without bound.  A shed or timed-out request never cancels the underlying
compile — the in-flight task is shielded and still populates the caches,
so the retry the 503 invites is cheap.

Fault policy (see docs/robustness.md): the compile worker is *supervised*
— a crashed or broken executor is replaced on the spot
(``stats.executor_restarts``) — and every compile gets one cheap retry
when it fails on a *recoverable* error (an injected fault, an IO error, a
broken worker; ``stats.compile_retries``) before the request joins the
503 shed path.  Semantic failures (bad SQL) stay 400 and never retry.  A
failed in-flight task is popped without populating the response LRU, so a
poisoned coalesced compile never serves stale errors: the next request
recompiles.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..catalog.schema import Schema
from ..faults import InjectedCrash, fault_point
from ..pipeline import RENDERERS, DiagramCompiler, DiskCache
from ..relational.backends import breaker_states, is_recoverable
from ..render.layout import LayoutConfig
from ..sql.errors import SQLError
from .lru import LRUCache


class BadRequest(Exception):
    """The request is malformed (HTTP 400): bad JSON, bad SQL, bad format."""


class ServiceUnavailable(Exception):
    """The request was shed (HTTP 503): overload, timeout, or draining."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`CompileService` (see docs/serving.md)."""

    #: Response-LRU capacity in fully rendered payloads (<= 0 disables it).
    lru_entries: int = 1024
    #: Admission bound: requests beyond this many concurrently admitted
    #: ones are shed with 503 instead of queueing without bound.
    max_pending: int = 64
    #: Per-request wall-clock budget in seconds; exceeding it sheds 503.
    request_timeout: float = 10.0
    #: Clear the compiler's in-memory stage caches beyond this many
    #: entries (summed across stages); the disk cache absorbs the cost.
    stage_cache_bound: int = 50_000
    #: Formats compiled when a /compile request names none.
    default_formats: tuple[str, ...] = ("text",)


@dataclass(frozen=True)
class ServedResponse:
    """One endpoint answer: decoded payload + its canonical encoding.

    ``body`` is the UTF-8 JSON encoding of ``payload``; for /compile it is
    produced once per compile and cached in the response LRU, so the hot
    warm path writes cached bytes instead of re-serializing (potentially
    large) rendered outputs per request.  ``served`` says which layer
    answered — ``compile``, ``coalesced`` or ``lru`` — and travels as the
    ``X-Repro-Served`` response header, keeping the cached body identical
    across layers.
    """

    payload: dict
    body: bytes
    served: str

    @classmethod
    def encode(cls, payload: dict, served: str) -> "ServedResponse":
        return cls(payload, json.dumps(payload).encode("utf-8"), served)


@dataclass
class ServiceStats:
    """Structured counters surfaced verbatim on ``/stats``."""

    requests: dict[str, int] = field(default_factory=dict)
    compiles: int = 0
    lru_hits: int = 0
    coalesced: int = 0
    shed: int = 0
    timeouts: int = 0
    bad_requests: int = 0
    internal_errors: int = 0
    stage_cache_clears: int = 0
    compile_retries: int = 0
    executor_restarts: int = 0

    def count(self, endpoint: str) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1


class RequestFrontEnd:
    """Shared request-side half of a serving façade.

    Both serving modes — the single-process :class:`CompileService` and
    the multi-process ``PoolService`` (:mod:`repro.serve.supervisor`) —
    need the same front half on the event loop: admission control with a
    per-request budget, the draining flag, and the verbatim-text →
    canonical-key memo that lets exact-text repeats (the overwhelmingly
    common case in real traffic) resolve their coalescing/affinity
    identity without leaving the event loop.  Subclasses decide how a
    *new* text gets its key — a local fingerprint thread vs. a worker
    process — and where the expensive back half runs.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        # Sized like the response LRU: several spellings per cached
        # response is typical, unbounded distinct traffic must still not
        # grow it forever.
        self._text_keys = LRUCache(max(4 * self.config.lru_entries, 1024))
        self._pending = 0
        self._draining = False
        self._started = time.monotonic()

    @property
    def draining(self) -> bool:
        return self._draining

    async def _admitted(self, work) -> dict:
        """Admission control + per-request timeout around ``work``."""
        work = asyncio.ensure_future(work)
        if self._draining:
            work.cancel()
            self.stats.shed += 1
            raise ServiceUnavailable("server is draining", retry_after=5.0)
        if self._pending >= self.config.max_pending:
            work.cancel()
            self.stats.shed += 1
            raise ServiceUnavailable(
                f"overloaded: {self._pending} requests pending"
            )
        self._pending += 1
        try:
            return await asyncio.wait_for(work, self.config.request_timeout)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise ServiceUnavailable(
                f"request exceeded {self.config.request_timeout:.1f}s budget"
            ) from None
        finally:
            self._pending -= 1

    def request_text(self, sql: str) -> str:
        """Validate and normalize the raw request text (400 on empty)."""
        if not isinstance(sql, str) or not sql.strip():
            self.stats.bad_requests += 1
            raise BadRequest("request carries no SQL text")
        return sql.strip()

    def begin_drain(self) -> None:
        """Stop admitting work; in-flight requests keep running."""
        self._draining = True


class CompileService(RequestFrontEnd):
    """Coalescing, cache-layered façade over one :class:`DiagramCompiler`."""

    def __init__(
        self,
        schema: Schema | None = None,
        simplify: bool = True,
        layout_config: LayoutConfig | None = None,
        disk_cache: DiskCache | str | Path | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        super().__init__(config=config)
        self._compiler = DiagramCompiler(
            schema=schema,
            simplify=simplify,
            layout_config=layout_config,
            disk_cache=disk_cache,
        )
        self._lru = LRUCache(self.config.lru_entries)
        self._inflight: dict[tuple, asyncio.Task] = {}
        # Fingerprinting must stay responsive while a compile occupies the
        # back half — otherwise concurrent duplicates could not reach the
        # coalescing layer until the compile they should have joined had
        # already finished.
        self._fp_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-fp"
        )
        # Compiles run on their own single thread, separate from the
        # fingerprint thread: compiles serialize among themselves (shared
        # caches, one CPU-bound interpreter), requests interleave on the
        # event loop.
        self._compile_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-compile"
        )

    @property
    def compiler(self) -> DiagramCompiler:
        return self._compiler

    @property
    def lru(self) -> LRUCache:
        return self._lru

    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    async def _canonical_key(self, sql: str) -> tuple[str, tuple]:
        """Coalescing/LRU identity: text memo → fingerprint thread."""
        text = self.request_text(sql)
        key = self._text_keys.get(text)
        if key is not None:
            return key
        loop = asyncio.get_running_loop()
        try:
            key = await loop.run_in_executor(
                self._fp_executor, self._compiler.canonical_key, text
            )
        except SQLError as error:
            self.stats.bad_requests += 1
            raise BadRequest(f"invalid SQL: {error}") from error
        self._text_keys.put(text, key)
        return key

    async def fingerprint(self, sql: str) -> ServedResponse:
        """Canonical fingerprint only; the /fingerprint answer."""
        self.stats.count("fingerprint")

        async def _fingerprint() -> ServedResponse:
            fingerprint, _roles = await self._canonical_key(sql)
            return ServedResponse.encode(
                {"fingerprint": fingerprint}, "fingerprint"
            )

        return await self._admitted(_fingerprint())

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    async def compile(
        self, sql: str, formats: tuple[str, ...]
    ) -> ServedResponse:
        """Compile ``sql`` to ``formats``; the /compile answer."""
        self.stats.count("compile")
        return await self._admitted(self._compile_coalesced(sql, formats))

    async def render(self, sql: str, fmt: str) -> ServedResponse:
        """One rendered format; the /render answer."""
        self.stats.count("render")

        async def _render() -> ServedResponse:
            response = await self._compile_coalesced(sql, (fmt,))
            return ServedResponse.encode(
                {
                    "fingerprint": response.payload["fingerprint"],
                    "format": fmt,
                    "output": response.payload["outputs"][fmt],
                },
                response.served,
            )

        return await self._admitted(_render())

    def healthz(self) -> dict:
        """Liveness + degradation report: cheap enough for tight probes.

        ``status`` is ``ok``, ``degraded`` (still answering, but the disk
        cache went memory-only or an engine breaker is not closed) or
        ``draining`` (503 — take this replica out of rotation).
        """
        self.stats.count("healthz")
        disk = self._compiler.disk_cache
        disk_degraded = bool(disk is not None and disk.degraded)
        breakers = breaker_states()
        if self._draining:
            status = "draining"
        elif disk_degraded or any(
            state != "closed" for state in breakers.values()
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "in_flight": len(self._inflight),
            "pending": self._pending,
            "compile_retries": self.stats.compile_retries,
            "executor_restarts": self.stats.executor_restarts,
            "disk_degraded": disk_degraded,
            "engine_breakers": breakers,
        }

    def stats_payload(self) -> dict:
        """The /stats document: service, LRU, pipeline and disk counters."""
        self.stats.count("stats")
        compiler = self._compiler
        payload = {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "in_flight": len(self._inflight),
            "pending": self._pending,
            "requests": dict(self.stats.requests),
            "compiles": self.stats.compiles,
            "lru_hits": self.stats.lru_hits,
            "coalesced": self.stats.coalesced,
            "shed": self.stats.shed,
            "timeouts": self.stats.timeouts,
            "bad_requests": self.stats.bad_requests,
            "internal_errors": self.stats.internal_errors,
            "stage_cache_clears": self.stats.stage_cache_clears,
            "compile_retries": self.stats.compile_retries,
            "executor_restarts": self.stats.executor_restarts,
            "lru": {"entries": len(self._lru), **self._lru.stats.as_dict()},
            "pipeline": compiler.stats().as_dict(),
        }
        if compiler.disk_cache is not None:
            payload["disk"] = compiler.disk_cache.stats.as_dict()
        return payload

    # ------------------------------------------------------------------ #
    # coalescing and compilation (admission lives on RequestFrontEnd)
    # ------------------------------------------------------------------ #

    async def _compile_coalesced(
        self, sql: str, formats: tuple[str, ...]
    ) -> ServedResponse:
        for fmt in formats:
            if fmt not in RENDERERS:
                self.stats.bad_requests += 1
                raise BadRequest(
                    f"unknown format {fmt!r}; known: {sorted(RENDERERS)}"
                )
        fingerprint, roles = await self._canonical_key(sql)
        key = (fingerprint, roles, tuple(sorted(set(formats))))
        cached = self._lru.get(key)
        if cached is not None:
            self.stats.lru_hits += 1
            payload, body = cached
            return ServedResponse(payload, body, "lru")
        task = self._inflight.get(key)
        if task is not None:
            self.stats.coalesced += 1
            payload, body = await asyncio.shield(task)
            return ServedResponse(payload, body, "coalesced")
        self.stats.compiles += 1
        task = asyncio.get_running_loop().create_task(
            self._do_compile(key, sql, formats)
        )
        self._inflight[key] = task

        def _on_done(done: asyncio.Task) -> None:
            self._inflight.pop(key, None)
            # Retrieve the exception (if any) so a compile whose every
            # waiter was shed never logs "exception was never retrieved".
            if not done.cancelled():
                done.exception()

        task.add_done_callback(_on_done)
        # Shielded: a shed/timed-out waiter must not cancel the shared
        # compile other requests are (or will be) coalesced onto.
        payload, body = await asyncio.shield(task)
        return ServedResponse(payload, body, "compile")

    async def _do_compile(
        self, key: tuple, sql: str, formats: tuple[str, ...]
    ) -> tuple[dict, bytes]:
        loop = asyncio.get_running_loop()
        try:
            artifact = await self._run_compile(loop, sql, formats)
        except Exception as error:
            if not self._recoverable(error):
                raise
            # One cheap retry before the 503 path: transient faults (a
            # torn cache read, a crashed worker thread) usually clear
            # immediately — and a restarted executor deserves one chance
            # before this replica starts shedding.
            self.stats.compile_retries += 1
            try:
                artifact = await self._run_compile(loop, sql, formats)
            except Exception as retry_error:
                if self._recoverable(retry_error):
                    raise ServiceUnavailable(
                        "compile failed twice on a recoverable fault; "
                        "retry later"
                    ) from retry_error
                raise
        payload = {
            "fingerprint": artifact.fingerprint,
            "formats": sorted(artifact.outputs),
            "outputs": dict(artifact.outputs),
        }
        # Encode once, serve many: the LRU keeps the response bytes next
        # to the payload so warm hits never re-serialize rendered outputs.
        body = json.dumps(payload).encode("utf-8")
        self._lru.put(key, (payload, body))
        return payload, body

    async def _run_compile(self, loop, sql: str, formats: tuple[str, ...]):
        """One supervised executor hop: restart the worker on crash."""
        try:
            return await loop.run_in_executor(
                self._compile_executor, self._compile_sync, sql, formats
            )
        except (BrokenExecutor, InjectedCrash):
            self._restart_compile_executor()
            raise
        except RuntimeError as error:
            # "cannot schedule new futures after (interpreter) shutdown":
            # the pool is unusable; replace it before re-raising.
            if "shutdown" in str(error):
                self._restart_compile_executor()
            raise

    @staticmethod
    def _recoverable(error: BaseException) -> bool:
        """Whether a failed compile deserves the retry/503 path (not 400/500)."""
        return isinstance(error, BrokenExecutor) or is_recoverable(error)

    def _restart_compile_executor(self) -> None:
        """Supervision: replace a crashed compile worker with a fresh one."""
        self.stats.executor_restarts += 1
        old = self._compile_executor
        self._compile_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-compile"
        )
        old.shutdown(wait=False, cancel_futures=True)

    def _compile_sync(self, sql: str, formats: tuple[str, ...]):
        # Chaos stand-in for everything that can kill a compile mid-flight
        # (worker thread death, cache IO errors surfacing as exceptions).
        fault_point("serve.compile")
        artifact = self._compiler.compile(sql, formats=formats)
        if self._compiler.bound_caches(self.config.stage_cache_bound):
            self.stats.stage_cache_clears += 1
        return artifact

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def drain(self, timeout: float = 30.0) -> bool:
        """Await completion of admitted work; ``True`` if fully drained."""
        deadline = time.monotonic() + timeout
        while self._pending or self._inflight:
            tasks = list(self._inflight.values())
            if tasks:
                remaining = max(0.0, deadline - time.monotonic())
                await asyncio.wait(tasks, timeout=remaining or None)
            else:
                await asyncio.sleep(0.01)
            if time.monotonic() >= deadline:
                return not (self._pending or self._inflight)
        return True

    def close(self) -> None:
        """Release the worker threads (idempotent)."""
        self._fp_executor.shutdown(wait=False)
        self._compile_executor.shutdown(wait=False)
