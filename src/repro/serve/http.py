"""Stdlib asyncio HTTP/1.1 front end for :class:`CompileService`.

A deliberately small HTTP server — request line, headers, Content-Length
body, keep-alive — built directly on :func:`asyncio.start_server`, because
the stdlib's ``http.server`` is thread-per-connection and cannot share the
event loop the coalescing layer lives on.  JSON in, JSON out:

=========  ======  ====================================================
path       method  body / response
=========  ======  ====================================================
/compile   POST    ``{"sql": "...", "formats": ["svg", ...]}`` →
                   fingerprint + rendered outputs (the answering cache
                   layer travels as the ``X-Repro-Served`` header)
/fingerprint POST  ``{"sql": "..."}`` → canonical fingerprint
/render    POST    ``{"sql": "...", "format": "svg"}`` → one output
/stats     GET     structured service/LRU/pipeline/disk counters
/healthz   GET     ``{"status": "ok" | "degraded" | "draining", ...}``
                   with breaker states, cache degradation and in-flight
                   depth (``draining`` answers 503; ``degraded`` still
                   200 — the replica keeps answering)
=========  ======  ====================================================

Errors map to conventional statuses: malformed JSON / SQL / formats → 400,
unknown path → 404, wrong method → 405, oversized body → 413, shed or
timed-out or draining → 503 with a ``Retry-After`` header.
"""

from __future__ import annotations

import asyncio
import inspect
import json
from typing import Any

from .service import (
    BadRequest,
    CompileService,
    ServedResponse,
    ServiceUnavailable,
)

#: Hard caps on request framing — a serving tier never buffers unbounded
#: client input (64 KiB of headers, 1 MiB of body).
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str, **headers: str) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers


class CompileServer:
    """Binds a serving façade to a TCP port with graceful drain.

    ``service`` is duck-typed: the single-process
    :class:`~repro.serve.service.CompileService` or the multi-process
    :class:`~repro.serve.supervisor.PoolService` — whose ``stats_payload``
    is a coroutine (it polls worker processes), which is why ``_dispatch``
    awaits awaitable results.
    """

    def __init__(
        self,
        service: CompileService,
        host: str = "127.0.0.1",
        port: int = 0,
        sweep_interval: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.sweep_interval = sweep_interval
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._sweeper: asyncio.Task | None = None

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 picks one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.get_running_loop().create_task(
            self._sweep_connections()
        )

    async def _sweep_connections(self) -> None:
        """Periodically prune finished handler tasks from the tracked set.

        Each task discards itself via a done callback, but a long-lived
        server must not depend on that alone: a callback that lost the
        race with ``add`` (or was suppressed by an exotic cancellation
        path) would pin the task — and its frames, locals and buffers —
        until close.  The sweep makes the tracked set self-healing under
        keep-alive churn.
        """
        while True:
            await asyncio.sleep(self.sweep_interval)
            self._connections.difference_update(
                [task for task in self._connections if task.done()]
            )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain_timeout: float = 30.0) -> bool:
        """Graceful shutdown: stop admitting, drain in-flight, close.

        Returns whether the drain completed inside ``drain_timeout``.
        """
        self.service.begin_drain()
        drained = await self.service.drain(drain_timeout)
        if self._sweeper is not None:
            self._sweeper.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # ``Server.wait_closed`` does not wait for connection handlers
        # (keep-alive clients may hold theirs open forever anyway): give
        # them a moment to finish the response they are writing, then cut
        # the stragglers so the event loop shuts down without noise.
        handlers = [task for task in self._connections if not task.done()]
        if handlers:
            _done, pending = await asyncio.wait(handlers, timeout=1.0)
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        self.service.close()
        return drained

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # Shutdown cut this (usually idle keep-alive) connection; end
            # cleanly so loop teardown has no stray cancelled tasks to log.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, path, headers = await self._read_head(request_line, reader)
        except _HttpError as error:
            await self._respond_error(writer, error, keep_alive=False)
            return False
        keep_alive = headers.get("connection", "keep-alive") != "close"
        try:
            body = await self._read_body(reader, headers)
            result = await self._dispatch(method, path, body)
            if isinstance(result, ServedResponse):
                await self._respond_raw(
                    writer,
                    200,
                    result.body,
                    keep_alive,
                    {"X-Repro-Served": result.served},
                )
            else:
                status = 503 if result.get("status") == "draining" else 200
                await self._respond(writer, status, result, keep_alive)
        except _HttpError as error:
            await self._respond_error(writer, error, keep_alive)
        except BadRequest as error:
            await self._respond_error(
                writer, _HttpError(400, str(error)), keep_alive
            )
        except ServiceUnavailable as error:
            await self._respond_error(
                writer,
                _HttpError(
                    503,
                    str(error),
                    **{"Retry-After": f"{error.retry_after:g}"},
                ),
                keep_alive,
            )
        except Exception as error:  # noqa: BLE001 — the server must survive
            self.service.stats.internal_errors += 1
            await self._respond_error(
                writer,
                _HttpError(500, f"{type(error).__name__}: {error}"),
                keep_alive,
            )
        return keep_alive

    async def _read_head(
        self, request_line: bytes, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str]]:
        try:
            parts = request_line.decode("ascii").split()
            method, path = parts[0], parts[1]
        except (UnicodeDecodeError, IndexError):
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise _HttpError(413, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        return method, path, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        return await reader.readexactly(length) if length else b""

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> "dict | ServedResponse":
        service = self.service
        path = path.split("?", 1)[0]
        if path == "/healthz":
            self._require(method, "GET")
            return await self._maybe_await(service.healthz())
        if path == "/stats":
            self._require(method, "GET")
            return await self._maybe_await(service.stats_payload())
        if path == "/compile":
            self._require(method, "POST")
            document = self._json_body(body)
            formats = document.get("formats", list(service.config.default_formats))
            if not isinstance(formats, (list, tuple)) or not all(
                isinstance(fmt, str) for fmt in formats
            ):
                service.stats.bad_requests += 1
                raise _HttpError(400, '"formats" must be a list of strings')
            return await service.compile(
                self._sql_field(document), tuple(formats)
            )
        if path == "/fingerprint":
            self._require(method, "POST")
            return await service.fingerprint(self._sql_field(self._json_body(body)))
        if path == "/render":
            self._require(method, "POST")
            document = self._json_body(body)
            fmt = document.get("format", "text")
            if not isinstance(fmt, str):
                service.stats.bad_requests += 1
                raise _HttpError(400, '"format" must be a string')
            return await service.render(self._sql_field(document), fmt)
        raise _HttpError(404, f"no such endpoint: {path}")

    @staticmethod
    async def _maybe_await(result):
        """Await a coroutine result (PoolService endpoints) or pass through."""
        if inspect.isawaitable(result):
            return await result
        return result

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}", Allow=expected)

    def _json_body(self, body: bytes) -> dict:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self.service.stats.bad_requests += 1
            raise _HttpError(400, f"body is not valid JSON: {error}") from None
        if not isinstance(document, dict):
            self.service.stats.bad_requests += 1
            raise _HttpError(400, "body must be a JSON object")
        return document

    def _sql_field(self, document: dict) -> str:
        sql = document.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self.service.stats.bad_requests += 1
            raise _HttpError(400, '"sql" must be a non-empty string')
        return sql

    # ------------------------------------------------------------------ #
    # responses
    # ------------------------------------------------------------------ #

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        await self._respond_raw(
            writer,
            status,
            json.dumps(payload).encode("utf-8"),
            keep_alive,
            extra_headers,
        )

    async def _respond_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode("ascii") + b"\r\n\r\n" + body)
        await writer.drain()

    async def _respond_error(
        self, writer: asyncio.StreamWriter, error: _HttpError, keep_alive: bool
    ) -> None:
        await self._respond(
            writer,
            error.status,
            {"error": str(error), "status": error.status},
            keep_alive,
            extra_headers=error.headers,
        )
