"""Supervised multi-process worker pool behind the asyncio front end.

A single Python process cannot serve concurrent compile-bound traffic past
one core — the GIL serializes the compile thread.  :class:`PoolService`
keeps the existing asyncio HTTP front end (:mod:`repro.serve.http`) and
moves the expensive back half into N supervised worker *processes*, each
running today's :class:`~repro.serve.service.CompileService`
(:mod:`repro.serve.pool`), connected over inherited UNIX socketpairs with
the length-prefixed frame protocol.

Dispatch — learned fingerprint affinity
=======================================

The front end never parses SQL: the canonical-key front half (lex → … →
fingerprint) is itself half the cost of a full compile, so running it
per-request on the front end would cap pool speed-up near 1×.  Instead the
front end asks the *pool* for the key: the first sight of a request text
dispatches a cheap ``fingerprint`` op round-robin to any ready worker,
concurrent duplicates of that text coalesce onto the same in-flight key
lookup, and the answer lands in the front end's bounded text → fingerprint
memo.  Every compile/render then routes by true canonical fingerprint:
``slot = fp % N``, walking forward to the next ready slot when the
preferred one is down or draining.  Equivalent queries — verbatim repeats,
the Fig. 24 spelling trio — share a fingerprint, therefore a worker,
therefore that worker's response LRU and in-flight coalescing table:
duplicate bursts still collapse to one compile even though the pool has N
independent caches.

Supervision — a worker dying is a non-event
===========================================

* **Liveness**: a monitor task pings every worker each
  ``heartbeat_interval``; a worker whose last pong is older than
  ``heartbeat_timeout``, or whose oldest in-flight dispatch exceeds
  ``request_deadline`` (a wedged compile thread answers pings happily), is
  killed and replaced.
* **Crash recovery**: worker EOF fails its in-flight dispatch futures with
  :class:`WorkerCrashed`; the dispatcher transparently retries each such
  request once on a sibling slot (``stats.failovers``) before shedding
  503.  The dead slot respawns after an exponential backoff
  (``backoff_base · 2^(consecutive-1)``, capped at ``backoff_cap``).
* **Restart-storm budget**: more than ``restart_budget`` *consecutive*
  fast deaths (a worker that never survived ``min_uptime``) marks the
  slot **broken** — no more spawns, ``/healthz`` flips to ``degraded``
  (still 200: the surviving slots keep answering) — instead of
  spin-looping fork bombs.  Death classification uses an injectable
  ``clock`` (like the circuit breakers in ``relational/backends.py``), so
  tests control it deterministically.
* **Per-worker breakers**: PR 9's engine circuit breakers are
  process-global state — which in a pool means naturally *per-worker*.
  Each heartbeat pong carries the worker's own ``healthz`` document
  (breaker states, disk degradation); ``/healthz`` aggregates the worst
  state per engine across workers plus the per-worker detail.

Zero-downtime operations
========================

* **SIGHUP hot reload** (:meth:`WorkerSupervisor.reload`): one slot at a
  time — mark the old worker draining (ready count drops to N−1, never
  lower), spawn and await its replacement, swap, then retire the old
  worker gracefully (drain op, close pipe).  A failed replacement spawn
  restores the old worker to ready; ``stats.reload_min_ready`` records
  the observed floor.
* **SIGTERM drain**: the front end stops admitting, in-flight dispatches
  finish, every worker drains its own in-flight compiles, then the pool
  closes.

The only cross-worker state is the shared multi-process-safe disk cache
(``pipeline/diskcache.py``) — a replacement worker warms from it, and a
fingerprint re-routed after a crash finds its stages precompiled.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable

from ..faults import current_plan, fault_point, InjectedFault
from ..pipeline import RENDERERS
from .pool import (
    WORKER_ENV,
    encode_frame,
    read_frame,
    service_config_to_spec,
)
from .service import (
    BadRequest,
    RequestFrontEnd,
    ServedResponse,
    ServiceConfig,
    ServiceUnavailable,
)

#: Ranking for aggregating per-worker breaker states into one per engine.
_BREAKER_SEVERITY = {"closed": 0, "half_open": 1, "open": 2}


class WorkerCrashed(Exception):
    """The worker died (EOF on its pipe) with this request in flight."""


class SpawnFailed(Exception):
    """A worker process exited or timed out before reporting ready."""


@dataclass(frozen=True)
class PoolConfig:
    """Tuning knobs of one :class:`WorkerSupervisor` (see docs/serving.md)."""

    #: Number of worker processes.
    workers: int = 2
    #: Forwarded to each worker's ``DiagramCompiler``.
    simplify: bool = True
    #: Shared persistent disk cache directory (the only cross-worker state).
    disk_cache: str | None = None
    #: ``ServiceConfig`` each worker runs under.  Admission is enforced at
    #: the front end, so workers get generous bounds by default.
    worker_service: ServiceConfig = field(
        default_factory=lambda: ServiceConfig(max_pending=1024, request_timeout=30.0)
    )
    #: Fault-plan spec (dict) forwarded to every worker — chaos runs.
    worker_fault_plan: dict | None = None
    #: Seconds between heartbeat pings.
    heartbeat_interval: float = 1.0
    #: A worker whose last pong is older than this is killed.
    heartbeat_timeout: float = 5.0
    #: Budget for a spawned worker to report ready.
    boot_timeout: float = 20.0
    #: A worker whose oldest in-flight dispatch is older than this is
    #: killed (wedged compile thread — pings alone cannot see it).
    request_deadline: float = 30.0
    #: Restart backoff: ``backoff_base * 2**(consecutive_fast_deaths-1)``…
    backoff_base: float = 0.1
    #: …capped here.
    backoff_cap: float = 5.0
    #: More than this many *consecutive* fast deaths marks the slot broken.
    restart_budget: int = 5
    #: A worker that survived at least this long resets the fast-death run.
    min_uptime: float = 1.0


@dataclass
class PoolStats:
    """Supervisor-side counters (per-worker compile counters live in the
    workers and are aggregated by ``stats_payload``)."""

    dispatched: int = 0
    worker_crashes: int = 0
    worker_restarts: int = 0
    failovers: int = 0
    heartbeat_timeouts: int = 0
    deadline_kills: int = 0
    spawn_failures: int = 0
    dispatch_faults: int = 0
    reloads: int = 0
    #: Lowest ready-worker count observed during the last reload (-1: never).
    reload_min_ready: int = -1

    def as_dict(self) -> dict:
        return {
            "dispatched": self.dispatched,
            "worker_crashes": self.worker_crashes,
            "worker_restarts": self.worker_restarts,
            "failovers": self.failovers,
            "heartbeat_timeouts": self.heartbeat_timeouts,
            "deadline_kills": self.deadline_kills,
            "spawn_failures": self.spawn_failures,
            "dispatch_faults": self.dispatch_faults,
            "reloads": self.reloads,
            "reload_min_ready": self.reload_min_ready,
        }


class _Pending:
    """One in-flight dispatch on a worker pipe.

    ``future`` becomes ``None`` when the waiting request was cancelled
    (shed/timed out at the front end): the entry stays as a *tombstone* so
    the request-deadline monitor still supervises the worker actually
    doing the work, and the eventual response is discarded.
    """

    __slots__ = ("future", "at")

    def __init__(self, future: asyncio.Future | None, at: float) -> None:
        self.future = future
        self.at = at


class WorkerHandle:
    """One live worker process and its pipe."""

    def __init__(self, slot: int, proc: subprocess.Popen, reader, writer, pid: int) -> None:
        self.slot = slot
        self.proc = proc
        self.reader: asyncio.StreamReader = reader
        self.writer: asyncio.StreamWriter = writer
        self.pid = pid
        self.pending: dict[int, _Pending] = {}
        self.ready = False
        self.draining = False
        self.retired = False  # expected exit (reload/drain/close), not a crash
        self.closed = False
        self.ready_at = 0.0
        self.last_pong = 0.0
        self.health: dict = {}
        self.reader_task: asyncio.Task | None = None

    @property
    def available(self) -> bool:
        return self.ready and not self.draining and not self.closed


class _Slot:
    """One pool position: at most one live worker plus restart bookkeeping."""

    __slots__ = ("index", "worker", "broken", "fast_deaths", "spawns", "restart_task")

    def __init__(self, index: int) -> None:
        self.index = index
        self.worker: WorkerHandle | None = None
        self.broken = False
        self.fast_deaths = 0  # consecutive deaths under min_uptime
        self.spawns = 0
        self.restart_task: asyncio.Task | None = None


class WorkerSupervisor:
    """Spawns, dispatches to, and supervises the worker processes."""

    def __init__(
        self,
        config: PoolConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or PoolConfig()
        self.stats = PoolStats()
        self.clock = clock
        self._slots = [_Slot(i) for i in range(self.config.workers)]
        self._ids = itertools.count(1)
        self._rr = itertools.count()
        self._closing = False
        self._monitor_task: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()
        # Replaced-but-not-yet-drained workers (reload) and corpse reaps
        # live outside ``_tasks``: close() must finish them, not cancel
        # them, or their processes and pipes outlive the supervisor.
        self._retiring: set[WorkerHandle] = set()
        self._reaps: set[asyncio.Future] = set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> int:
        """Spawn every slot's first worker; returns the ready count.

        A slot whose first spawn fails enters the normal backoff/restart
        machinery in the background (it may come up late or end broken);
        ``start`` itself never raises on worker failure.
        """
        await asyncio.gather(*(self._bring_up(slot) for slot in self._slots))
        self._monitor_task = asyncio.create_task(self._monitor())
        return self.ready_count()

    def ready_count(self) -> int:
        return sum(
            1
            for slot in self._slots
            if slot.worker is not None and slot.worker.available
        )

    async def drain(self, timeout: float = 30.0) -> bool:
        """Ask every live worker to drain its in-flight compiles."""
        workers = [
            slot.worker
            for slot in self._slots
            if slot.worker is not None and not slot.worker.closed
        ]
        if not workers:
            return True
        results = await asyncio.gather(
            *(self._drain_worker(worker, timeout) for worker in workers),
            return_exceptions=True,
        )
        return all(result is True for result in results)

    async def _drain_worker(self, worker: WorkerHandle, timeout: float) -> bool:
        worker.draining = True
        try:
            header, _body = await asyncio.wait_for(
                self._dispatch_to(worker, "drain", {"timeout": timeout}),
                timeout + 5.0,
            )
        except (WorkerCrashed, asyncio.TimeoutError, ServiceUnavailable):
            return False
        return bool((header.get("payload") or {}).get("drained"))

    def close(self) -> None:
        """Stop supervision and terminate every worker (idempotent)."""
        self._closing = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        for task in list(self._tasks):
            task.cancel()
        for slot in self._slots:
            if slot.restart_task is not None:
                slot.restart_task.cancel()
            worker = slot.worker
            if worker is None:
                continue
            worker.retired = True
            self._close_pipe(worker)
            self._terminate(worker.proc)
            slot.worker = None
        # Workers replaced by a reload still draining when close() lands:
        # their _retire task is cancelled above, so finish the job here.
        for worker in list(self._retiring):
            worker.retired = True
            self._close_pipe(worker)
            self._terminate(worker.proc)
        self._retiring.clear()

    @staticmethod
    def _close_pipe(worker: WorkerHandle) -> None:
        try:
            worker.writer.close()
        except RuntimeError:
            pass  # event loop already gone

    @staticmethod
    def _reap_now(proc: subprocess.Popen) -> None:
        """Kill outright and reap — for teardown paths that cannot wait."""
        try:
            proc.kill()
        except OSError:
            pass
        proc.wait(timeout=5.0)

    @staticmethod
    def _terminate(proc: subprocess.Popen) -> None:
        """Closed pipe → worker retires on EOF; escalate if it lingers."""
        try:
            proc.wait(timeout=2.0)
            return
        except subprocess.TimeoutExpired:
            pass
        proc.terminate()
        try:
            proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5.0)

    # ------------------------------------------------------------------ #
    # spawning and supervision
    # ------------------------------------------------------------------ #

    def _worker_spec(self, slot_index: int) -> dict:
        return {
            "slot": slot_index,
            "simplify": self.config.simplify,
            "disk_cache": self.config.disk_cache,
            "service": service_config_to_spec(self.config.worker_service),
            "fault_plan": self.config.worker_fault_plan,
        }

    async def _spawn_worker(self, slot: _Slot) -> WorkerHandle:
        """Spawn one worker and await its ready frame (or raise SpawnFailed)."""
        import socket as socket_mod

        parent_sock, child_sock = socket_mod.socketpair()
        env = dict(os.environ)
        env[WORKER_ENV] = json.dumps(self._worker_spec(slot.index))
        # Make ``-m repro.serve.pool`` importable regardless of the
        # child's cwd: point PYTHONPATH at the directory holding the
        # package we ourselves were imported from.
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
        # A fresh interpreter via ``-c`` rather than ``-m``: the package
        # __init__ already imports ``repro.serve.pool``, and runpy warns
        # (loudly, under -W error) when re-executing an imported module.
        entry = "import sys; from repro.serve.pool import main; sys.exit(main(sys.argv[1:]))"
        try:
            proc = subprocess.Popen(
                [sys.executable, "-c", entry, "--fd", str(child_sock.fileno())],
                pass_fds=(child_sock.fileno(),),
                env=env,
            )
        except OSError as error:
            parent_sock.close()
            child_sock.close()
            raise SpawnFailed(f"worker spawn failed: {error}") from error
        child_sock.close()
        try:
            reader, writer = await asyncio.open_connection(sock=parent_sock)
        except OSError as error:
            parent_sock.close()
            self._terminate(proc)
            raise SpawnFailed(f"worker pipe failed: {error}") from error
        except asyncio.CancelledError:
            # close() cancelled a restart mid-spawn: reap, don't leak.
            parent_sock.close()
            self._reap_now(proc)
            raise
        try:
            header, _body = await asyncio.wait_for(
                read_frame(reader), self.config.boot_timeout
            )
            if header.get("op") != "ready":
                raise SpawnFailed(f"unexpected first frame {header.get('op')!r}")
        except (asyncio.IncompleteReadError, ConnectionError) as error:
            writer.close()
            self._terminate(proc)
            raise SpawnFailed("worker exited before ready") from error
        except asyncio.TimeoutError as error:
            writer.close()
            self._terminate(proc)
            raise SpawnFailed(
                f"worker not ready within {self.config.boot_timeout:.1f}s"
            ) from error
        except asyncio.CancelledError:
            writer.close()
            self._reap_now(proc)
            raise
        worker = WorkerHandle(slot.index, proc, reader, writer, int(header.get("pid", proc.pid)))
        worker.ready = True
        worker.ready_at = self.clock()
        worker.last_pong = worker.ready_at
        slot.spawns += 1
        worker.reader_task = asyncio.create_task(self._read_worker(slot, worker))
        return worker

    async def _bring_up(self, slot: _Slot) -> bool:
        """Spawn into ``slot``, applying the fast-death budget on failure."""
        while not self._closing and not slot.broken:
            try:
                slot.worker = await self._spawn_worker(slot)
                return True
            except SpawnFailed:
                self.stats.spawn_failures += 1
                if not self._record_fast_death(slot):
                    return False
                await asyncio.sleep(self.backoff_delay(slot.fast_deaths))
        return False

    def backoff_delay(self, consecutive: int) -> float:
        """Exponential restart backoff: ``base * 2^(n-1)``, capped."""
        exponent = max(0, consecutive - 1)
        return min(self.config.backoff_base * (2**exponent), self.config.backoff_cap)

    def _record_fast_death(self, slot: _Slot) -> bool:
        """Count one fast death; ``False`` once the budget is tripped."""
        slot.fast_deaths += 1
        if slot.fast_deaths > self.config.restart_budget:
            slot.broken = True
            return False
        return True

    async def _read_worker(self, slot: _Slot, worker: WorkerHandle) -> None:
        try:
            while True:
                header, body = await read_frame(worker.reader)
                if header.get("op") == "response":
                    entry = worker.pending.pop(header.get("id"), None)
                    if entry is not None and entry.future is not None:
                        if not entry.future.done():
                            entry.future.set_result((header, body))
        except (asyncio.IncompleteReadError, ConnectionError, ValueError, OSError):
            pass
        except asyncio.CancelledError:
            return  # teardown: exit accounting is handled by close()
        self._on_worker_exit(slot, worker)

    def _on_worker_exit(self, slot: _Slot, worker: WorkerHandle) -> None:
        worker.closed = True
        worker.ready = False
        for entry in worker.pending.values():
            if entry.future is not None and not entry.future.done():
                entry.future.set_exception(
                    WorkerCrashed(f"worker {worker.pid} (slot {slot.index}) died")
                )
        worker.pending.clear()
        self._close_pipe(worker)
        loop = asyncio.get_running_loop()
        # Reap the corpse off-loop: wait() on a process that just EOF'd is
        # near-instant, but never worth stalling dispatch for.  Reaps go in
        # ``_reaps`` (never cancelled) so close() can't orphan a zombie.
        reap = loop.run_in_executor(None, self._terminate, worker.proc)
        self._reaps.add(reap)
        reap.add_done_callback(self._reaps.discard)
        if slot.worker is worker:
            slot.worker = None
        if worker.retired or self._closing or slot.broken:
            return
        self.stats.worker_crashes += 1
        uptime = self.clock() - worker.ready_at
        if uptime >= self.config.min_uptime:
            slot.fast_deaths = 0
        if not self._record_fast_death(slot):
            return
        slot.restart_task = loop.create_task(self._restart_slot(slot))

    async def _restart_slot(self, slot: _Slot) -> None:
        await asyncio.sleep(self.backoff_delay(slot.fast_deaths))
        if self._closing or slot.broken:
            return
        if await self._bring_up(slot):
            self.stats.worker_restarts += 1

    def _kill_worker(self, worker: WorkerHandle) -> None:
        """Hard-kill a live worker (liveness violation or test-injected)."""
        worker.ready = False
        try:
            worker.proc.kill()
        except OSError:
            pass
        # EOF on the pipe drives the normal exit path in _read_worker.

    def kill_slot(self, index: int) -> int | None:
        """Test/chaos hook: SIGKILL the worker in ``index``; returns its pid."""
        worker = self._slots[index].worker
        if worker is None or worker.closed:
            return None
        pid = worker.pid
        self._kill_worker(worker)
        return pid

    async def _monitor(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.config.heartbeat_interval)
            now = self.clock()
            for slot in self._slots:
                worker = slot.worker
                if worker is None or not worker.ready or worker.closed:
                    continue
                oldest = min((entry.at for entry in worker.pending.values()), default=None)
                if oldest is not None and now - oldest > self.config.request_deadline:
                    self.stats.deadline_kills += 1
                    self._kill_worker(worker)
                    continue
                if now - worker.last_pong > self.config.heartbeat_timeout:
                    self.stats.heartbeat_timeouts += 1
                    self._kill_worker(worker)
                    continue
                self._spawn_task(self._ping(worker))

    def _spawn_task(self, coro) -> None:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _ping(self, worker: WorkerHandle) -> None:
        try:
            header, _body = await asyncio.wait_for(
                self._dispatch_to(worker, "ping", {}),
                self.config.heartbeat_timeout,
            )
        except (WorkerCrashed, asyncio.TimeoutError, ServiceUnavailable):
            return  # staleness (or EOF) is handled by the monitor/reader
        except asyncio.CancelledError:
            return
        worker.last_pong = self.clock()
        worker.health = header.get("payload") or {}

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _pick_slot(self, affinity: str | None, exclude: set[int]) -> _Slot | None:
        count = len(self._slots)
        if affinity:
            start = int(affinity[:16], 16) % count
        else:
            start = next(self._rr) % count
        for offset in range(count):
            slot = self._slots[(start + offset) % count]
            if slot.index in exclude:
                continue
            worker = slot.worker
            if worker is not None and worker.available:
                return slot
        return None

    async def dispatch(
        self, op: str, fields: dict, affinity: str | None = None, body: bytes = b""
    ) -> tuple[dict, bytes, int]:
        """Send one operation to the pool; returns (header, body, slot).

        A request whose worker dies mid-flight is transparently retried
        once on a sibling slot; a second crash (or an empty pool) sheds
        with 503.  Worker-reported errors are mapped back onto the service
        error taxonomy and never retried here (the worker already applied
        its own retry policy).
        """
        if current_plan() is not None:
            # Chaos hook on the dispatch path.  ``latency`` faults sleep in
            # a thread so an injected delay never stalls the event loop;
            # other kinds surface as a shed (the dispatch never happened).
            try:
                await asyncio.to_thread(fault_point, "serve.dispatch.latency")
            except InjectedFault as error:
                self.stats.dispatch_faults += 1
                raise ServiceUnavailable(f"injected dispatch fault: {error}") from error
        tried: set[int] = set()
        for attempt in range(2):
            slot = self._pick_slot(affinity, tried)
            if slot is None:
                break
            worker = slot.worker
            assert worker is not None
            self.stats.dispatched += 1
            try:
                header, payload = await self._dispatch_to(worker, op, fields, body)
                return header, payload, slot.index
            except WorkerCrashed:
                tried.add(slot.index)
                if attempt == 0:
                    self.stats.failovers += 1
                    continue
                raise ServiceUnavailable(
                    "worker crashed twice for this request; retry later"
                ) from None
        raise ServiceUnavailable("no ready workers", retry_after=2.0)

    async def _dispatch_to(
        self, worker: WorkerHandle, op: str, fields: dict, body: bytes = b""
    ) -> tuple[dict, bytes]:
        if worker.closed:
            raise WorkerCrashed(f"worker {worker.pid} is gone")
        rid = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        entry = _Pending(future, self.clock())
        worker.pending[rid] = entry
        try:
            worker.writer.write(encode_frame({"op": op, "id": rid, **fields}, body))
            await worker.writer.drain()
        except (ConnectionError, RuntimeError, OSError) as error:
            worker.pending.pop(rid, None)
            raise WorkerCrashed(f"worker {worker.pid} pipe failed: {error}") from error
        try:
            header, response_body = await future
        except asyncio.CancelledError:
            # The waiter was shed/timed out.  Leave a tombstone: the work
            # is still running in the worker and the deadline monitor must
            # keep supervising it; its eventual response is discarded.
            if rid in worker.pending:
                entry.future = None
            raise
        if header.get("ok"):
            return header, response_body
        kind = header.get("kind")
        message = header.get("error", "worker error")
        if kind == "bad_request":
            raise BadRequest(message)
        if kind == "unavailable":
            raise ServiceUnavailable(message, retry_after=float(header.get("retry_after", 1.0)))
        raise RuntimeError(f"worker error: {message}")

    # ------------------------------------------------------------------ #
    # hot reload
    # ------------------------------------------------------------------ #

    async def reload(self) -> dict:
        """Roll every worker, one slot at a time, without dropping below N−1.

        Returns ``{"replaced": [...pids...], "failed": [...slots...]}``.
        """
        self.stats.reloads += 1
        self.stats.reload_min_ready = self.ready_count()
        replaced: list[int] = []
        failed: list[int] = []
        for slot in self._slots:
            if self._closing:
                break
            old = slot.worker
            if slot.broken or old is None or old.closed:
                # A dead/broken slot cannot lower the ready count; a reload
                # is an explicit operator action, so forgive the budget and
                # try to bring a fresh worker up.
                slot.broken = False
                slot.fast_deaths = 0
                if slot.restart_task is not None:
                    slot.restart_task.cancel()
                if await self._bring_up(slot):
                    replaced.append(self._slots[slot.index].worker.pid)  # type: ignore[union-attr]
                else:
                    failed.append(slot.index)
                self._note_reload_ready()
                continue
            old.draining = True
            self._note_reload_ready()
            try:
                replacement = await self._spawn_worker(slot)
            except SpawnFailed:
                self.stats.spawn_failures += 1
                old.draining = False  # keep serving on the old worker
                failed.append(slot.index)
                continue
            old.retired = True
            slot.worker = replacement
            slot.fast_deaths = 0
            self._note_reload_ready()
            replaced.append(replacement.pid)
            # Register before scheduling: if close() lands before the task
            # ever runs, the worker must already be visible to cleanup.
            self._retiring.add(old)
            self._spawn_task(self._retire(old))
        return {"replaced": replaced, "failed": failed}

    def _note_reload_ready(self) -> None:
        ready = self.ready_count()
        if self.stats.reload_min_ready < 0 or ready < self.stats.reload_min_ready:
            self.stats.reload_min_ready = ready

    async def _retire(self, worker: WorkerHandle) -> None:
        """Gracefully stop a replaced worker: drain, then close its pipe."""
        try:
            await asyncio.wait_for(
                self._dispatch_to(worker, "drain", {"timeout": 10.0}), 15.0
            )
        except (WorkerCrashed, asyncio.TimeoutError, ServiceUnavailable, RuntimeError):
            pass
        finally:
            self._close_pipe(worker)
            self._retiring.discard(worker)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def slots_snapshot(self) -> list[dict]:
        snapshot = []
        for slot in self._slots:
            worker = slot.worker
            if slot.broken:
                state = "broken"
            elif worker is None:
                state = "restarting"
            elif worker.draining:
                state = "draining"
            elif worker.available:
                state = "ready"
            else:
                state = "down"
            entry: dict = {
                "slot": slot.index,
                "state": state,
                "spawns": slot.spawns,
                "fast_deaths": slot.fast_deaths,
            }
            if worker is not None:
                entry["pid"] = worker.pid
                entry["in_flight"] = len(worker.pending)
                health = worker.health
                if health:
                    entry["worker_status"] = health.get("status")
                    entry["disk_degraded"] = health.get("disk_degraded")
                    entry["engine_breakers"] = health.get("engine_breakers")
            snapshot.append(entry)
        return snapshot

    def aggregated_breakers(self) -> dict[str, str]:
        """Worst observed breaker state per engine across all workers."""
        merged: dict[str, str] = {}
        for slot in self._slots:
            worker = slot.worker
            if worker is None:
                continue
            for mode, state in (worker.health.get("engine_breakers") or {}).items():
                best = merged.get(mode)
                if best is None or _BREAKER_SEVERITY.get(state, 0) > _BREAKER_SEVERITY.get(best, 0):
                    merged[mode] = state
        return merged


class PoolService(RequestFrontEnd):
    """Duck-types :class:`CompileService` for :class:`CompileServer`,
    backed by the supervised worker pool.

    The front half here is deliberately parse-free: admission control and
    the text → fingerprint memo run on the event loop, and everything that
    touches SQL — fingerprinting included — runs in the workers.  A text
    seen for the first time costs one extra (cheap, round-robin) worker
    round trip for its key; after that every request routes by true
    canonical fingerprint.  ``X-Repro-Served`` values gain a ``@wN``
    suffix naming the answering slot.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        pool_config: PoolConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(config=config)
        self.pool_config = pool_config or PoolConfig()
        self.supervisor = WorkerSupervisor(self.pool_config, clock=clock)
        # In-flight key lookups: concurrent first sights of the same text
        # share one worker ``fingerprint`` round trip.
        self._key_inflight: dict[str, asyncio.Task] = {}

    async def start(self) -> int:
        return await self.supervisor.start()

    # ------------------------------------------------------------------ #
    # routing identity
    # ------------------------------------------------------------------ #

    async def _affinity_key(self, sql: str) -> tuple[str, str]:
        """(text, fingerprint) for routing: memo → pooled key lookup."""
        text = self.request_text(sql)
        fingerprint = self._text_keys.get(text)
        if fingerprint is not None:
            return text, fingerprint
        task = self._key_inflight.get(text)
        if task is None:
            task = asyncio.get_running_loop().create_task(self._fetch_key(text))
            self._key_inflight[text] = task

            def _on_done(done: asyncio.Task) -> None:
                self._key_inflight.pop(text, None)
                if not done.cancelled():
                    done.exception()

            task.add_done_callback(_on_done)
        try:
            # Shielded: a shed waiter must not cancel the lookup that
            # concurrent duplicates (and the memo) are waiting on.
            return text, await asyncio.shield(task)
        except BadRequest:
            self.stats.bad_requests += 1
            raise

    async def _fetch_key(self, text: str) -> str:
        header, _body, _slot = await self.supervisor.dispatch(
            "fingerprint", {"sql": text}
        )
        fingerprint = str((header.get("payload") or {}).get("fingerprint", ""))
        self._text_keys.put(text, fingerprint)
        return fingerprint

    # ------------------------------------------------------------------ #
    # endpoints (same shapes as CompileService)
    # ------------------------------------------------------------------ #

    async def fingerprint(self, sql: str) -> ServedResponse:
        self.stats.count("fingerprint")

        async def _fingerprint() -> ServedResponse:
            _text, fingerprint = await self._affinity_key(sql)
            return ServedResponse.encode(
                {"fingerprint": fingerprint}, "fingerprint"
            )

        return await self._admitted(_fingerprint())

    async def compile(self, sql: str, formats: tuple[str, ...]) -> ServedResponse:
        self.stats.count("compile")
        return await self._admitted(self._dispatch_compile(sql, formats))

    async def render(self, sql: str, fmt: str) -> ServedResponse:
        self.stats.count("render")

        async def _render() -> ServedResponse:
            if fmt not in RENDERERS:
                self.stats.bad_requests += 1
                raise BadRequest(f"unknown format {fmt!r}; known: {sorted(RENDERERS)}")
            text, fingerprint = await self._affinity_key(sql)
            header, body, slot = await self.supervisor.dispatch(
                "render", {"sql": text, "format": fmt}, affinity=fingerprint
            )
            return ServedResponse({}, body, f"{header.get('served', '?')}@w{slot}")

        return await self._admitted(_render())

    async def _dispatch_compile(self, sql: str, formats: tuple[str, ...]) -> ServedResponse:
        for fmt in formats:
            if fmt not in RENDERERS:
                self.stats.bad_requests += 1
                raise BadRequest(f"unknown format {fmt!r}; known: {sorted(RENDERERS)}")
        text, fingerprint = await self._affinity_key(sql)
        header, body, slot = await self.supervisor.dispatch(
            "compile", {"sql": text, "formats": list(formats)}, affinity=fingerprint
        )
        return ServedResponse({}, body, f"{header.get('served', '?')}@w{slot}")

    def healthz(self) -> dict:
        """Aggregated pool health; stays synchronous (cached heartbeat data).

        ``degraded`` — a broken/restarting slot, a degraded worker, or a
        non-closed breaker anywhere in the pool — still answers 200; only
        ``draining`` is 503, exactly as in single-process mode.
        """
        self.stats.count("healthz")
        slots = self.supervisor.slots_snapshot()
        ready = self.supervisor.ready_count()
        breakers = self.supervisor.aggregated_breakers()
        workers_degraded = any(
            entry.get("worker_status") == "degraded" or entry.get("disk_degraded")
            for entry in slots
        )
        if self._draining:
            status = "draining"
        elif (
            ready < self.pool_config.workers
            or workers_degraded
            or any(state != "closed" for state in breakers.values())
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "mode": "pool",
            "workers": self.pool_config.workers,
            "ready_workers": ready,
            "broken_slots": [s["slot"] for s in slots if s["state"] == "broken"],
            "pending": self._pending,
            "in_flight": sum(s.get("in_flight", 0) for s in slots),
            "worker_restarts": self.supervisor.stats.worker_restarts,
            "worker_crashes": self.supervisor.stats.worker_crashes,
            "failovers": self.supervisor.stats.failovers,
            "disk_degraded": any(bool(s.get("disk_degraded")) for s in slots),
            "engine_breakers": breakers,
            "slots": slots,
        }

    async def stats_payload(self) -> dict:
        """The /stats document: front-end, supervisor and per-worker counters."""
        self.stats.count("stats")
        workers_stats: list[dict] = []
        totals = {"compiles": 0, "lru_hits": 0, "coalesced": 0, "shed": 0, "timeouts": 0}
        for slot in self.supervisor._slots:
            worker = slot.worker
            if worker is None or not worker.ready:
                continue
            try:
                header, _body = await asyncio.wait_for(
                    self.supervisor._dispatch_to(worker, "stats", {}), 5.0
                )
            except (WorkerCrashed, asyncio.TimeoutError, ServiceUnavailable, RuntimeError):
                continue
            payload = header.get("payload") or {}
            payload["slot"] = slot.index
            workers_stats.append(payload)
            for key in totals:
                totals[key] += int(payload.get(key, 0))
        return {
            "mode": "pool",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "workers": self.pool_config.workers,
            "ready_workers": self.supervisor.ready_count(),
            "pending": self._pending,
            "requests": dict(self.stats.requests),
            # Worker-side totals: the pool-wide view of the cache hierarchy.
            **totals,
            "bad_requests": self.stats.bad_requests,
            "internal_errors": self.stats.internal_errors,
            "front_shed": self.stats.shed,
            "front_timeouts": self.stats.timeouts,
            "stage_cache_clears": self.stats.stage_cache_clears,
            "pool": self.supervisor.stats.as_dict(),
            "workers_stats": workers_stats,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def reload(self) -> dict:
        """SIGHUP entry point: roll the workers one at a time."""
        return await self.supervisor.reload()

    async def drain(self, timeout: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout
        while self._pending and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        remaining = max(1.0, deadline - time.monotonic())
        drained = await self.supervisor.drain(remaining)
        return drained and not self._pending

    def close(self) -> None:
        self.supervisor.close()


def worker_pids(service: PoolService) -> list[int]:
    """Live worker pids (CLI/diagnostics helper)."""
    return [
        slot.worker.pid
        for slot in service.supervisor._slots
        if slot.worker is not None and not slot.worker.closed
    ]

