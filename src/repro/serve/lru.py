"""Bounded in-memory LRU for the serving tier.

The pipeline's own stage caches are *unbounded* dictionaries — correct for
a batch run over a known corpus, wrong for a server that must survive
unbounded distinct traffic.  :class:`LRUCache` is the serving tier's
memory bound: a fixed number of fully rendered response payloads, evicting
least-recently-served entries.  Anything evicted is still one disk-cache
(or stage-cache) probe away, so eviction costs latency, never correctness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass
class LRUStats:
    """Counters for one :class:`LRUCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class LRUCache:
    """A fixed-capacity mapping with least-recently-used eviction.

    ``max_entries <= 0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — useful for measuring a truly cold server.
    """

    def __init__(self, max_entries: int) -> None:
        self.max_entries = max_entries
        self.stats = LRUStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (refreshed to most-recent), else ``default``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the oldest entry when full."""
        if self.max_entries <= 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        while len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
