"""Long-running diagram-compilation serving tier.

Everything below :mod:`repro.pipeline` is batch-oriented: a process starts,
compiles a corpus, and exits.  This package turns those caches into a
*serving* tier — a long-running asyncio HTTP server in front of
:class:`~repro.pipeline.DiagramCompiler`:

* :mod:`repro.serve.lru` — the bounded in-memory LRU that caps the serving
  tier's memory no matter how many distinct queries traffic brings;
* :mod:`repro.serve.service` — the transport-free application core:
  request coalescing keyed by canonical fingerprint (N concurrent requests
  for equivalent SQL await one compile), the LRU → stage-cache → disk-cache
  hierarchy, overload shedding and structured counters;
* :mod:`repro.serve.http` — the stdlib asyncio HTTP/1.1 layer exposing
  ``/compile``, ``/fingerprint``, ``/render``, ``/stats`` and ``/healthz``
  as JSON endpoints, plus graceful drain on shutdown;
* :mod:`repro.serve.supervisor` / :mod:`repro.serve.pool` — the
  multi-process worker pool: a supervisor that spawns N worker processes
  (each running a :class:`CompileService`), dispatches with
  fingerprint-affinity routing, restarts crashed workers with exponential
  backoff, and hot-reloads them one at a time on SIGHUP
  (``repro serve --workers N``).

``repro serve`` runs the server; ``repro bench-serve``
(:mod:`repro.workloads.servebench`) load-tests it.  See ``docs/serving.md``.
"""

from .http import CompileServer
from .lru import LRUCache
from .service import (
    BadRequest,
    CompileService,
    ServedResponse,
    ServiceConfig,
    ServiceStats,
    ServiceUnavailable,
)
from .supervisor import (
    PoolConfig,
    PoolService,
    PoolStats,
    WorkerCrashed,
    WorkerSupervisor,
)

__all__ = [
    "BadRequest",
    "CompileServer",
    "CompileService",
    "LRUCache",
    "PoolConfig",
    "PoolService",
    "PoolStats",
    "ServedResponse",
    "ServiceConfig",
    "ServiceStats",
    "ServiceUnavailable",
    "WorkerCrashed",
    "WorkerSupervisor",
]
