"""Worker side of the multi-process serving pool + its wire protocol.

One pool worker is an ordinary OS process running today's
:class:`~repro.serve.service.CompileService` — the same coalescing,
cache-layered compile core the single-process server uses — connected to
the supervisor (:mod:`repro.serve.supervisor`) over an inherited UNIX
socketpair.  Workers are spawned with ``python -m repro.serve.pool --fd N``
(a fresh interpreter, not a fork: the parent runs an event loop and
threads, which do not survive ``fork()`` safely) and receive their
configuration as JSON in the ``REPRO_POOL_WORKER`` environment variable.

Frame protocol
==============

Both directions speak length-prefixed frames::

    4-byte big-endian header length
    header bytes            (UTF-8 JSON object)
    header["body_len"] raw body bytes   (optional, default 0)

The raw body tail exists so rendered responses — the encoded JSON bytes a
:class:`~repro.serve.service.ServedResponse` already carries — cross the
pipe verbatim and are written to the client socket verbatim, without a
decode/re-encode round trip per request.

Supervisor → worker operations (each carries a unique ``id``):

=============  =======================================================
op             meaning
=============  =======================================================
``ping``       heartbeat; the reply payload is the worker's health
               document (pid + ``healthz`` incl. its *own* process's
               engine breaker states — per-worker isolation for free)
``fingerprint``  ``{"sql"}`` → reply payload ``{"fingerprint"}``; the
               front end's key lookup for first-sight texts (learned
               fingerprint affinity — the front end never parses SQL)
``compile``    ``{"sql", "formats"}`` → response frame whose body is
               the encoded /compile answer
``render``     ``{"sql", "format"}`` → response frame, /render answer
``stats``      reply payload is the worker's full /stats document
``drain``      stop admitting, await in-flight work, reply when done
=============  =======================================================

Worker → supervisor: one ``{"op": "ready", "pid": ...}`` frame after
boot, then one ``{"op": "response", "id": ...}`` frame per operation —
``ok: true`` with a payload or body, or ``ok: false`` with an error
``kind`` (``bad_request`` / ``unavailable`` / ``internal``) the
supervisor maps back onto the HTTP error taxonomy.

Fault points (see docs/robustness.md):

* ``serve.worker.boot`` — fires before the service is built; an injected
  ``crash`` makes the process exit immediately, which is how the
  restart-storm tests manufacture a worker that can never come up.
* ``serve.worker.crash`` — fires per compile/render operation; an
  injected ``crash`` is escalated to ``os._exit(9)``, a *hard* process
  death with requests in flight — the failure the supervisor's sibling
  retry exists for.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import socket
import struct
import sys

from ..faults import (
    FaultPlan,
    InjectedCrash,
    fault_point,
    install_plan,
    install_plan_from_env,
)
from .service import (
    BadRequest,
    CompileService,
    ServiceConfig,
    ServiceUnavailable,
)

#: Environment variable carrying the worker's JSON configuration.
WORKER_ENV = "REPRO_POOL_WORKER"

#: Hard cap on one frame (header or body); a frame larger than this is a
#: protocol bug, not a big response.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


def encode_frame(header: dict, body: bytes = b"") -> bytes:
    """Encode one frame; ``body_len`` is stamped into the header."""
    if body:
        header = {**header, "body_len": len(body)}
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(head) > MAX_FRAME_BYTES or len(body) > MAX_FRAME_BYTES:
        raise ValueError("frame exceeds protocol bound")
    return _LEN.pack(len(head)) + head + body


async def read_frame(reader: asyncio.StreamReader) -> tuple[dict, bytes]:
    """Read one frame; raises ``IncompleteReadError`` on EOF."""
    (head_len,) = _LEN.unpack(await reader.readexactly(_LEN.size))
    if head_len > MAX_FRAME_BYTES:
        raise ValueError(f"frame header of {head_len} bytes exceeds bound")
    header = json.loads(await reader.readexactly(head_len))
    body_len = int(header.get("body_len", 0))
    if body_len > MAX_FRAME_BYTES:
        raise ValueError(f"frame body of {body_len} bytes exceeds bound")
    body = await reader.readexactly(body_len) if body_len else b""
    return header, body


def service_config_from_spec(spec: dict) -> ServiceConfig:
    """Rebuild a :class:`ServiceConfig` from its JSON form."""
    fields = dict(spec)
    if "default_formats" in fields:
        fields["default_formats"] = tuple(fields["default_formats"])
    return ServiceConfig(**fields)


def service_config_to_spec(config: ServiceConfig) -> dict:
    return {
        "lru_entries": config.lru_entries,
        "max_pending": config.max_pending,
        "request_timeout": config.request_timeout,
        "stage_cache_bound": config.stage_cache_bound,
        "default_formats": list(config.default_formats),
    }


def _worker_health(service: CompileService, slot: int) -> dict:
    return {"pid": os.getpid(), "slot": slot, **service.healthz()}


async def _send(
    writer: asyncio.StreamWriter,
    lock: asyncio.Lock,
    header: dict,
    body: bytes = b"",
) -> None:
    # One frame per write under the lock: response frames from concurrent
    # handler tasks must never interleave on the shared pipe.
    frame = encode_frame(header, body)
    async with lock:
        writer.write(frame)
        await writer.drain()


async def _handle(
    service: CompileService,
    writer: asyncio.StreamWriter,
    lock: asyncio.Lock,
    slot: int,
    header: dict,
    body: bytes,
) -> None:
    rid = header.get("id")
    op = header.get("op")
    try:
        if op == "ping":
            payload: dict = _worker_health(service, slot)
            await _send(
                writer, lock, {"op": "response", "id": rid, "ok": True, "payload": payload}
            )
            return
        if op == "stats":
            payload = service.stats_payload()
            payload["pid"] = os.getpid()
            await _send(
                writer, lock, {"op": "response", "id": rid, "ok": True, "payload": payload}
            )
            return
        if op == "fingerprint":
            response = await service.fingerprint(header["sql"])
            await _send(
                writer,
                lock,
                {"op": "response", "id": rid, "ok": True, "payload": response.payload},
            )
            return
        if op == "drain":
            service.begin_drain()
            drained = await service.drain(float(header.get("timeout", 30.0)))
            await _send(
                writer,
                lock,
                {"op": "response", "id": rid, "ok": True, "payload": {"drained": drained}},
            )
            return
        if op in ("compile", "render"):
            # The chaos stand-in for this whole *process* dying mid-request
            # (OOM kill, segfault, kill -9).  A hard exit, not an exception:
            # the supervisor must observe EOF with requests in flight.
            try:
                fault_point("serve.worker.crash")
            except InjectedCrash:
                os._exit(9)
            if op == "compile":
                response = await service.compile(
                    header["sql"], tuple(header.get("formats") or ())
                )
            else:
                response = await service.render(header["sql"], header.get("format", "text"))
            await _send(
                writer,
                lock,
                {"op": "response", "id": rid, "ok": True, "served": response.served},
                response.body,
            )
            return
        await _send(
            writer,
            lock,
            {
                "op": "response",
                "id": rid,
                "ok": False,
                "kind": "internal",
                "error": f"unknown op {op!r}",
            },
        )
    except BadRequest as error:
        await _send(
            writer,
            lock,
            {"op": "response", "id": rid, "ok": False, "kind": "bad_request", "error": str(error)},
        )
    except ServiceUnavailable as error:
        await _send(
            writer,
            lock,
            {
                "op": "response",
                "id": rid,
                "ok": False,
                "kind": "unavailable",
                "error": str(error),
                "retry_after": error.retry_after,
            },
        )
    except Exception as error:  # noqa: BLE001 — a worker must survive one bad request
        await _send(
            writer,
            lock,
            {
                "op": "response",
                "id": rid,
                "ok": False,
                "kind": "internal",
                "error": f"{type(error).__name__}: {error}",
            },
        )


async def _worker_main(fd: int, spec: dict) -> None:
    sock = socket.socket(fileno=fd)
    reader, writer = await asyncio.open_connection(sock=sock)
    lock = asyncio.Lock()
    slot = int(spec.get("slot", 0))
    service = CompileService(
        simplify=bool(spec.get("simplify", True)),
        disk_cache=spec.get("disk_cache"),
        config=service_config_from_spec(spec.get("service") or {}),
    )
    tasks: set[asyncio.Task] = set()
    try:
        await _send(writer, lock, {"op": "ready", "pid": os.getpid(), "slot": slot})
        while True:
            try:
                header, body = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                break  # supervisor closed the pipe: retire
            task = asyncio.get_running_loop().create_task(
                _handle(service, writer, lock, slot, header, body)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        service.close()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serve.pool")
    parser.add_argument("--fd", type=int, required=True, help="inherited socketpair fd")
    options = parser.parse_args(argv)
    spec = json.loads(os.environ.get(WORKER_ENV, "{}"))
    plan_spec = spec.get("fault_plan")
    if plan_spec:
        install_plan(FaultPlan.from_spec(plan_spec))
    else:
        # Inherited environment plan (how CI's chaos legs reach
        # subprocesses); an explicit spec plan takes precedence.
        install_plan_from_env()
    try:
        fault_point("serve.worker.boot")
    except InjectedCrash:
        # The restart-storm scenario: die before ever reporting ready,
        # quietly (no traceback noise in supervised test runs).
        print("pool worker: injected boot crash", file=sys.stderr)
        return 3
    asyncio.run(_worker_main(options.fd, spec))
    return 0


if __name__ == "__main__":
    sys.exit(main())
