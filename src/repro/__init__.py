"""QueryVis reproduction: logic-based diagrams for SQL queries.

This package reproduces the system described in "QueryVis: Logic-based
diagrams help users understand complicated SQL queries faster" (SIGMOD 2020):

* :func:`queryvis` — the one-call pipeline SQL text → QueryVis diagram;
* :mod:`repro.sql` — parser and formatter for the supported SQL fragment;
* :mod:`repro.logic` — Logic Trees, TRC rendering, the ∄∄ → ∀∃ simplification;
* :mod:`repro.diagram` — diagram construction, recovery (unambiguity) and
  pattern signatures;
* :mod:`repro.pipeline` — the staged diagram compiler: per-stage caches,
  canonical fingerprints (Fig. 24 dedup) and corpus-scale batch rendering
  (:class:`repro.pipeline.DiagramBatchCompiler`);
* :mod:`repro.render` — DOT / SVG / text renderers;
* :mod:`repro.relational` — an in-memory engine used to verify semantics,
  with a plan-based executor (pushdown, hash joins, semi-joins) and a batch
  pipeline API (:class:`repro.relational.BatchExecutor`);
* :mod:`repro.study` and :mod:`repro.stats` — the user-study simulation and
  the pre-registered analysis pipeline of Section 6.
"""

from __future__ import annotations

from .catalog import Schema
from .diagram.build import sql_to_diagram
from .diagram.model import Diagram
from .logic.simplify import simplify_logic_tree
from .logic.translate import sql_to_logic_tree
from .pipeline import (
    CompiledDiagram,
    DiagramBatchCompiler,
    DiagramCompiler,
    compile_sql,
    fingerprint_sql,
)
from .sql.ast import SelectQuery
from .sql.parser import parse

__version__ = "1.1.0"


def queryvis(
    sql: str | SelectQuery,
    schema: Schema | None = None,
    simplify: bool = True,
) -> Diagram:
    """Translate an SQL query into its QueryVis diagram.

    Parameters
    ----------
    sql:
        SQL text (or an already-parsed :class:`~repro.sql.ast.SelectQuery`)
        in the supported fragment: nested conjunctive queries with
        inequalities, optionally with a GROUP BY clause.
    schema:
        Optional schema used to resolve unqualified column references.
    simplify:
        Apply the ∄∄ → ∀∃ simplification (Section 4.7) before drawing, which
        replaces double negation by universal quantification — the Fig. 2c
        form of a query.  Pass ``False`` for the literal NOT EXISTS form
        (Fig. 2b).

    Returns
    -------
    Diagram
        The QueryVis diagram; render it with
        :func:`repro.render.diagram_to_dot`, :func:`repro.render.diagram_to_svg`
        or :func:`repro.render.diagram_to_text`.
    """
    return compile_sql(sql, schema=schema, simplify=simplify, formats=()).diagram


__all__ = [
    "CompiledDiagram",
    "Diagram",
    "DiagramBatchCompiler",
    "DiagramCompiler",
    "Schema",
    "SelectQuery",
    "__version__",
    "compile_sql",
    "fingerprint_sql",
    "parse",
    "queryvis",
    "simplify_logic_tree",
    "sql_to_diagram",
    "sql_to_logic_tree",
]
