"""The pre-registered analysis pipeline (Section 6.2) on simulated responses.

For every legitimate participant we compute their mean time per question and
their error rate in each of the three conditions.  Across participants we
report, per condition, the *median* of the per-participant mean times and the
*mean* of the error rates with 95 % BCa bootstrap confidence intervals
(Fig. 7, top row).  The hypotheses

* H-time-1:  time_QV   < time_SQL
* H-time-2:  time_Both < time_SQL
* H-err-1:   err_QV    < err_SQL
* H-err-2:   err_Both  < err_SQL

are tested with one-tailed Wilcoxon signed-rank tests on the
within-participant differences, and the two time p-values and the two error
p-values are adjusted (separately, as in the paper) with the
Benjamini–Hochberg procedure.  The per-participant difference distributions
of Figs. 20/21 are summarised by their mean, median and the fraction of
participants faster (respectively making fewer errors) with the treatment.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..stats.bootstrap import ConfidenceInterval, bca_interval
from ..stats.multiple_testing import benjamini_hochberg
from ..stats.wilcoxon import wilcoxon_signed_rank
from .simulate import ResponseRecord
from .stimuli import Condition


@dataclass(frozen=True)
class ParticipantConditionSummary:
    """One participant's performance in one condition."""

    participant_id: int
    condition: Condition
    mean_time: float
    error_rate: float
    n_questions: int


@dataclass(frozen=True)
class ComparisonResult:
    """A treatment-vs-SQL comparison for one measure (time or error)."""

    measure: str  # "time" | "error"
    treatment: Condition
    baseline_value: float
    treatment_value: float
    percent_change: float
    p_value_raw: float
    p_value_adjusted: float
    differences: tuple[float, ...]  # per-participant treatment − SQL

    @property
    def mean_difference(self) -> float:
        return statistics.fmean(self.differences)

    @property
    def median_difference(self) -> float:
        return statistics.median(self.differences)

    @property
    def fraction_improved(self) -> float:
        """Share of participants better off with the treatment (difference < 0)."""
        return sum(1 for d in self.differences if d < 0) / len(self.differences)

    @property
    def fraction_worse(self) -> float:
        return sum(1 for d in self.differences if d > 0) / len(self.differences)

    @property
    def fraction_tied(self) -> float:
        return sum(1 for d in self.differences if d == 0) / len(self.differences)


@dataclass(frozen=True)
class StudyResults:
    """Everything needed to print Figs. 7 and 19–21."""

    n_participants: int
    n_questions: int
    median_time: dict[Condition, float]
    mean_error: dict[Condition, float]
    time_intervals: dict[Condition, ConfidenceInterval]
    error_intervals: dict[Condition, ConfidenceInterval]
    time_comparisons: tuple[ComparisonResult, ...]
    error_comparisons: tuple[ComparisonResult, ...]

    def comparison(self, measure: str, treatment: Condition) -> ComparisonResult:
        pool = self.time_comparisons if measure == "time" else self.error_comparisons
        for comparison in pool:
            if comparison.treatment is treatment:
                return comparison
        raise KeyError(f"no {measure} comparison for {treatment}")


# ---------------------------------------------------------------------- #
# per-participant aggregation
# ---------------------------------------------------------------------- #


def participant_condition_summaries(
    responses: Iterable[ResponseRecord],
) -> list[ParticipantConditionSummary]:
    """Aggregate raw responses into per-participant per-condition summaries."""
    grouped: dict[tuple[int, Condition], list[ResponseRecord]] = {}
    for record in responses:
        grouped.setdefault((record.participant_id, record.condition), []).append(record)
    summaries = []
    for (participant_id, condition), records in sorted(
        grouped.items(), key=lambda item: (item[0][0], item[0][1].value)
    ):
        times = [r.time_seconds for r in records]
        errors = [0.0 if r.correct else 1.0 for r in records]
        summaries.append(
            ParticipantConditionSummary(
                participant_id=participant_id,
                condition=condition,
                mean_time=statistics.fmean(times),
                error_rate=statistics.fmean(errors),
                n_questions=len(records),
            )
        )
    return summaries


def _per_condition(
    summaries: Sequence[ParticipantConditionSummary], condition: Condition
) -> dict[int, ParticipantConditionSummary]:
    return {s.participant_id: s for s in summaries if s.condition is condition}


# ---------------------------------------------------------------------- #
# the main analysis
# ---------------------------------------------------------------------- #


def analyze_study(
    responses: Iterable[ResponseRecord],
    n_bootstrap: int = 2000,
    seed: int = 7,
) -> StudyResults:
    """Run the complete pre-registered analysis on ``responses``."""
    summaries = participant_condition_summaries(responses)
    if not summaries:
        raise ValueError("no responses to analyse")
    by_condition = {condition: _per_condition(summaries, condition) for condition in Condition}
    participants = sorted(
        set.intersection(*(set(by_condition[c]) for c in Condition))
    )
    if not participants:
        raise ValueError("no participant has data in all three conditions")

    median_time = {}
    mean_error = {}
    time_intervals = {}
    error_intervals = {}
    for condition in Condition:
        times = [by_condition[condition][p].mean_time for p in participants]
        errors = [by_condition[condition][p].error_rate for p in participants]
        median_time[condition] = statistics.median(times)
        mean_error[condition] = statistics.fmean(errors)
        time_intervals[condition] = bca_interval(
            times, lambda x: float(np.median(x)), n_resamples=n_bootstrap, seed=seed
        )
        error_intervals[condition] = bca_interval(
            errors, lambda x: float(np.mean(x)), n_resamples=n_bootstrap, seed=seed
        )

    time_comparisons = _comparisons(
        "time", by_condition, participants, median_time, value_of=lambda s: s.mean_time
    )
    error_comparisons = _comparisons(
        "error", by_condition, participants, mean_error, value_of=lambda s: s.error_rate
    )

    n_questions = sum(
        by_condition[condition][participants[0]].n_questions for condition in Condition
    )
    return StudyResults(
        n_participants=len(participants),
        n_questions=n_questions,
        median_time=median_time,
        mean_error=mean_error,
        time_intervals=time_intervals,
        error_intervals=error_intervals,
        time_comparisons=time_comparisons,
        error_comparisons=error_comparisons,
    )


def _comparisons(
    measure: str,
    by_condition: dict[Condition, dict[int, ParticipantConditionSummary]],
    participants: Sequence[int],
    point_estimates: dict[Condition, float],
    value_of,
) -> tuple[ComparisonResult, ...]:
    treatments = (Condition.QV, Condition.BOTH)
    raw_p_values = []
    differences_per_treatment = []
    for treatment in treatments:
        differences = tuple(
            value_of(by_condition[treatment][p]) - value_of(by_condition[Condition.SQL][p])
            for p in participants
        )
        differences_per_treatment.append(differences)
        raw_p_values.append(wilcoxon_signed_rank(differences, alternative="less").p_value)
    adjusted = benjamini_hochberg(raw_p_values)
    results = []
    for treatment, differences, raw, adj in zip(
        treatments, differences_per_treatment, raw_p_values, adjusted
    ):
        baseline_value = point_estimates[Condition.SQL]
        treatment_value = point_estimates[treatment]
        percent = (
            (treatment_value - baseline_value) / baseline_value
            if baseline_value
            else float("nan")
        )
        results.append(
            ComparisonResult(
                measure=measure,
                treatment=treatment,
                baseline_value=baseline_value,
                treatment_value=treatment_value,
                percent_change=percent,
                p_value_raw=raw,
                p_value_adjusted=adj,
                differences=differences,
            )
        )
    return tuple(results)
