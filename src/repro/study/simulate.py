"""Response simulation: the substitute for running the study on AMT.

Given a participant population (:mod:`repro.study.participants`), a question
list (:mod:`repro.study.stimuli`) and the Latin-square design
(:mod:`repro.study.design`), this module produces one response record per
participant × question: the condition seen, the time spent and whether the
chosen interpretation was correct.  The generative model is deliberately
simple — multiplicative per-question difficulty, per-participant speed and
per-condition effects with log-normal noise — but it exercises the entire
downstream pipeline (exclusion, Wilcoxon, BH, BCa) exactly as real data
would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .design import assign
from .participants import (
    ParticipantKind,
    ParticipantProfile,
    PopulationConfig,
    generate_population,
)
from .stimuli import Category, Complexity, Condition, StudyQuestion, test_questions

#: Multiplicative time/difficulty factors per complexity tier.
_COMPLEXITY_FACTOR = {
    Complexity.SIMPLE: 0.90,
    Complexity.MEDIUM: 1.00,
    Complexity.COMPLEX: 1.15,
}

#: Extra difficulty for categories known to cause more errors (Appendix C.3).
_CATEGORY_ERROR_FACTOR = {
    Category.CONJUNCTIVE: 0.85,
    Category.SELF_JOIN: 1.05,
    Category.GROUPING: 1.00,
    Category.NESTED: 1.25,
}

#: Random guessing over 4 choices: error probability of a speeder.
_GUESS_ERROR_RATE = 0.75


@dataclass(frozen=True)
class ResponseRecord:
    """One answered question."""

    participant_id: int
    question_id: str
    question_index: int
    condition: Condition
    time_seconds: float
    correct: bool


@dataclass(frozen=True)
class SimulatedStudy:
    """The full raw output of one simulated study run."""

    participants: tuple[ParticipantProfile, ...]
    questions: tuple[StudyQuestion, ...]
    responses: tuple[ResponseRecord, ...]
    config: PopulationConfig = field(default_factory=PopulationConfig)

    def responses_of(self, participant_id: int) -> tuple[ResponseRecord, ...]:
        return tuple(r for r in self.responses if r.participant_id == participant_id)

    def participant(self, participant_id: int) -> ParticipantProfile:
        for profile in self.participants:
            if profile.participant_id == participant_id:
                return profile
        raise KeyError(f"no participant {participant_id}")


#: Default seed of the headline run reported in EXPERIMENTS.md.  Like any
#: single study, one simulated run is one draw from the population; the
#: study benchmarks also report across-seed variability.
DEFAULT_SEED = 2002


def simulate_study(
    config: PopulationConfig | None = None,
    questions: tuple[StudyQuestion, ...] | None = None,
    seed: int = DEFAULT_SEED,
) -> SimulatedStudy:
    """Run one full simulated study (population generation + responses)."""
    config = config or PopulationConfig()
    questions = questions or test_questions()
    participants = generate_population(config, seed=seed)
    rng = np.random.default_rng(seed + 1)
    responses: list[ResponseRecord] = []
    for profile in participants:
        assignment = assign(profile.participant_id, len(questions))
        records = _simulate_participant(profile, questions, assignment.conditions, config, rng)
        responses.extend(records)
    return SimulatedStudy(
        participants=tuple(participants),
        questions=tuple(questions),
        responses=tuple(responses),
        config=config,
    )


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _simulate_participant(
    profile: ParticipantProfile,
    questions: tuple[StudyQuestion, ...],
    conditions: tuple[Condition, ...],
    config: PopulationConfig,
    rng: np.random.Generator,
) -> list[ResponseRecord]:
    if profile.kind is ParticipantKind.LEGITIMATE:
        return [
            _legitimate_response(profile, question, index, conditions[index], config, rng)
            for index, question in enumerate(questions)
        ]
    return _illegitimate_responses(profile, questions, conditions, rng)


def _legitimate_response(
    profile: ParticipantProfile,
    question: StudyQuestion,
    index: int,
    condition: Condition,
    config: PopulationConfig,
    rng: np.random.Generator,
) -> ResponseRecord:
    difficulty = _COMPLEXITY_FACTOR[question.complexity]
    noise = float(np.exp(0.22 * rng.standard_normal()))
    time_seconds = (
        profile.base_time * difficulty * profile.time_multipliers[condition] * noise
    )
    error_probability = (
        config.base_error_rate
        * _COMPLEXITY_FACTOR[question.complexity]
        * _CATEGORY_ERROR_FACTOR[question.category]
        * profile.skill
        * profile.error_multipliers[condition]
    )
    error_probability = float(np.clip(error_probability, 0.02, _GUESS_ERROR_RATE))
    correct = bool(rng.random() >= error_probability)
    return ResponseRecord(
        participant_id=profile.participant_id,
        question_id=question.question_id,
        question_index=index,
        condition=condition,
        time_seconds=float(time_seconds),
        correct=correct,
    )


def _illegitimate_responses(
    profile: ParticipantProfile,
    questions: tuple[StudyQuestion, ...],
    conditions: tuple[Condition, ...],
    rng: np.random.Generator,
) -> list[ResponseRecord]:
    """Speeders and cheaters, including the two tricky sub-behaviours of Fig. 18.

    A small share of cheaters stall on a single question (which pushes their
    *mean* time above the 30 s cut-off), and a small share of speeders answer
    the first half of the test normally before giving up — both must still be
    caught by the exclusion heuristics.
    """
    records: list[ResponseRecord] = []
    stalls_once = profile.kind is ParticipantKind.CHEATER and rng.random() < 0.12
    gives_up = profile.kind is ParticipantKind.SPEEDER and rng.random() < 0.12
    stall_index = int(rng.integers(0, len(questions))) if stalls_once else -1
    give_up_from = len(questions) // 2 if gives_up else 0
    error_rate = _GUESS_ERROR_RATE if profile.kind is ParticipantKind.SPEEDER else 0.03
    for index, question in enumerate(questions):
        time_seconds = profile.base_time * float(rng.uniform(0.6, 1.4))
        if index == stall_index:
            time_seconds += float(rng.uniform(350.0, 500.0))
        if gives_up and index < give_up_from:
            time_seconds = float(rng.uniform(60.0, 120.0))
        correct = bool(rng.random() >= error_rate)
        if gives_up and index < give_up_from:
            correct = bool(rng.random() >= 0.35)
        records.append(
            ResponseRecord(
                participant_id=profile.participant_id,
                question_id=question.question_id,
                question_index=index,
                condition=conditions[index],
                time_seconds=time_seconds,
                correct=correct,
            )
        )
    return records
