"""The user-study stimuli (Appendix D and Appendix F).

The study used one database schema (Chinook) for all questions.  Participants
first had to pass a 6-question SQL qualification exam (Appendix D), then
answered 12 multiple-choice test questions (Appendix F) split into four
categories — conjunctive without self-joins, conjunctive with self-joins,
nested, and GROUP BY — with one simple, one medium and one complex query per
category.  The main-paper analysis (Fig. 7) uses the 9 questions without
GROUP BY; the appendix analysis (Fig. 19) uses all 12.

The SQL text below follows the appendix verbatim, with two mechanical fixes:
the typo ``I.InvocieId`` in Q7 is spelled ``I.InvoiceId``, and the shorthand
``'ACC audio file'`` / ``'AAC audio file'`` spellings are kept exactly as the
paper prints them per question.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..catalog.chinook import chinook_schema
from ..sql.ast import SelectQuery
from ..sql.parser import parse


class Condition(enum.Enum):
    """The three presentation conditions of the study (Section 6.1)."""

    SQL = "SQL"
    QV = "QV"
    BOTH = "Both"


class Category(enum.Enum):
    """Query categories of the stimuli (Appendix C.3)."""

    CONJUNCTIVE = "conjunctive"
    SELF_JOIN = "self_join"
    GROUPING = "grouping"
    NESTED = "nested"


class Complexity(enum.Enum):
    """Per-category complexity tiers (number of joins / aliases)."""

    SIMPLE = "simple"
    MEDIUM = "medium"
    COMPLEX = "complex"


@dataclass(frozen=True)
class StudyQuestion:
    """One multiple-choice question of the study."""

    question_id: str
    category: Category
    complexity: Complexity
    sql: str
    choices: tuple[str, ...]
    correct_choice: int  # index into ``choices``

    @property
    def uses_grouping(self) -> bool:
        return self.category is Category.GROUPING

    def parsed(self) -> SelectQuery:
        """Parse the question's SQL (cached parsing is unnecessary here)."""
        return parse(self.sql)


# ---------------------------------------------------------------------- #
# the 12 test questions (Appendix F)
# ---------------------------------------------------------------------- #

_Q1_SQL = """
SELECT A.Name
FROM Artist A, Album AL, Track T
WHERE AL.AlbumId = T.AlbumId
AND A.ArtistId = AL.ArtistId
AND A.Name = T.Composer;
"""

_Q2_SQL = """
SELECT E1.EmployeeId
FROM Employee E1, Employee E2, Customer C, Invoice I, InvoiceLine IL, Track T, Genre G
WHERE E1.ReportsTo = E2.EmployeeId
AND E1.Country <> E2.Country
AND E2.EmployeeId = C.SupportRepId
AND I.CustomerId = C.CustomerId
AND I.InvoiceId = IL.InvoiceId
AND T.TrackId = IL.TrackId
AND T.GenreId = G.GenreId
AND G.Name = 'Rock';
"""

_Q3_SQL = """
SELECT A.Name
FROM Artist A, Album AL, Track T,
     PlaylistTrack PT, Playlist P, MediaType MT, Genre G,
     InvoiceLine IL, Invoice I, Customer C
WHERE AL.ArtistId = A.ArtistId
AND AL.AlbumId = T.AlbumId
AND T.TrackId = PT.TrackId
AND P.PlaylistId = PT.PlaylistId
AND T.MediaTypeId = MT.MediaTypeId
AND G.GenreId = T.GenreId
AND T.TrackId = IL.TrackId
AND I.InvoiceId = IL.InvoiceId
AND I.CustomerId = C.CustomerId
AND MT.Name = 'AAC audio file'
AND G.Name = 'Rock';
"""

_Q4_SQL = """
SELECT A.ArtistId, A.Name
FROM Artist A, Album AL1, Album AL2, Track T1, Track T2, Genre G1, Genre G2,
     PlaylistTrack PT1, PlaylistTrack PT2
WHERE A.ArtistId = AL1.ArtistId
AND A.ArtistId = AL2.ArtistId
AND AL1.AlbumId = T1.AlbumId
AND AL2.AlbumId = T2.AlbumId
AND T1.GenreId = G1.GenreId
AND T2.GenreId = G2.GenreId
AND PT1.PlaylistId = PT2.PlaylistId
AND PT1.TrackId = T1.TrackId
AND PT2.TrackId = T2.TrackId
AND G1.Name = 'Rock'
AND G2.Name = 'Pop';
"""

_Q5_SQL = """
SELECT C.CustomerId, C.FirstName, C.LastName
FROM Customer C, Invoice I1, Invoice I2
WHERE C.State = 'Michigan'
AND C.CustomerId = I1.CustomerId
AND C.CustomerId = I2.CustomerId
AND I1.BillingState <> I2.BillingState;
"""

_Q6_SQL = """
SELECT P.PlaylistId, P.Name
FROM Playlist P, PlaylistTrack PT1, PlaylistTrack PT2, PlaylistTrack PT3,
     Track T1, Track T2, Track T3
WHERE P.PlaylistId = PT1.PlaylistId
AND P.PlaylistId = PT2.PlaylistId
AND P.PlaylistId = PT3.PlaylistId
AND PT1.TrackId <> PT2.TrackId
AND PT2.TrackId <> PT3.TrackId
AND PT1.TrackId <> PT3.TrackId
AND PT1.TrackId = T1.TrackId
AND PT2.TrackId = T2.TrackId
AND PT3.TrackId = T3.TrackId
AND T1.AlbumId = T2.AlbumId
AND T2.AlbumId = T3.AlbumId
AND T2.Composer = T3.Composer;
"""

_Q7_SQL = """
SELECT I.CustomerId, SUM(IL.Quantity)
FROM Artist A, Album AL, Track T, InvoiceLine IL, Invoice I
WHERE A.ArtistId = AL.ArtistId
AND AL.AlbumId = T.AlbumId
AND T.TrackId = IL.TrackId
AND IL.InvoiceId = I.InvoiceId
AND A.Name = 'Carlos'
GROUP BY I.CustomerId;
"""

_Q8_SQL = """
SELECT T.AlbumId, MAX(T.Milliseconds)
FROM Track T, Playlist P, PlaylistTrack PT, Genre G
WHERE T.TrackId = PT.TrackId
AND P.PlaylistId = PT.PlaylistId
AND T.GenreId = G.GenreId
AND G.Name = 'Classical'
GROUP BY T.AlbumId;
"""

_Q9_SQL = """
SELECT G.Name, MAX(T.Milliseconds)
FROM Playlist P, PlaylistTrack PT, Track T, Genre G, InvoiceLine IL, Invoice I, Customer C
WHERE T.GenreId = G.GenreId
AND T.TrackId = IL.TrackId
AND IL.InvoiceId = I.InvoiceId
AND I.CustomerId = C.CustomerId
AND PT.TrackId = T.TrackId
AND P.PlaylistId = PT.PlaylistId
AND P.Name = 'workout'
AND C.Country = 'France'
GROUP BY G.Name;
"""

_Q10_SQL = """
SELECT A.ArtistId, A.Name
FROM Artist A
WHERE NOT EXISTS
   (SELECT *
    FROM Album AL, Track T
    WHERE A.ArtistId = AL.ArtistId
    AND AL.AlbumId = T.AlbumId
    AND T.Composer = A.Name);
"""

_Q11_SQL = """
SELECT A.ArtistId, A.Name
FROM Artist A, Album AL1, Album AL2
WHERE A.ArtistId = AL1.ArtistId
AND A.ArtistId = AL2.ArtistId
AND AL1.AlbumId <> AL2.AlbumId
AND NOT EXISTS
   (SELECT *
    FROM Track T1, Genre G1
    WHERE AL1.AlbumId = T1.AlbumId
    AND T1.GenreId = G1.GenreId
    AND G1.Name = 'Rock')
AND NOT EXISTS
   (SELECT *
    FROM Track T2
    WHERE AL2.AlbumId = T2.AlbumId
    AND T2.Milliseconds < 270000);
"""

_Q12_SQL = """
SELECT A.ArtistId, A.Name
FROM Artist A, Album AL
WHERE A.ArtistId = AL.ArtistId
AND NOT EXISTS
   (SELECT *
    FROM Track T, Genre G
    WHERE AL.AlbumId = T.AlbumId
    AND T.GenreId = G.GenreId
    AND G.Name = 'Jazz'
    AND NOT EXISTS
       (SELECT *
        FROM Playlist P, PlaylistTrack PT
        WHERE P.PlaylistId = PT.PlaylistId
        AND PT.TrackId = T.TrackId)
   );
"""


def test_questions() -> tuple[StudyQuestion, ...]:
    """All 12 test questions of the study, in presentation order Q1–Q12."""
    return (
        StudyQuestion(
            question_id="Q1",
            category=Category.CONJUNCTIVE,
            complexity=Complexity.SIMPLE,
            sql=_Q1_SQL,
            choices=(
                "Find artists who have an album with a track that is composed by themselves.",
                "Find artists who have an album with a track whose composer has the same "
                "name as the artists themselves.",
                "Find artists whose names are the same as the composer of some track in "
                "some album.",
                "Find artists whose names are the same as the composer of some track in an "
                "album by an artist other than themselves.",
            ),
            correct_choice=1,
        ),
        StudyQuestion(
            question_id="Q2",
            category=Category.CONJUNCTIVE,
            complexity=Complexity.MEDIUM,
            sql=_Q2_SQL,
            choices=(
                "Find employees who report to an employee in a different country and the "
                "former employee supports at least one customer that has bought a 'Rock' track.",
                "Find employees who report to an employee in a different country and the "
                "former employee only supports customers that have bought a 'Rock' track.",
                "Find employees who report to an employee in a different country and the "
                "latter employee only supports customers that have bought a 'Rock' track.",
                "Find employees who report to an employee in a different country and the "
                "latter employee supports at least one customer that has bought a 'Rock' track.",
            ),
            correct_choice=3,
        ),
        StudyQuestion(
            question_id="Q3",
            category=Category.CONJUNCTIVE,
            complexity=Complexity.COMPLEX,
            sql=_Q3_SQL,
            choices=(
                "Find artists who have an album that has a 'Rock' track that is available "
                "as 'AAC audio file', and the album has a track that is in a playlist and "
                "was purchased by a customer.",
                "Find artists who have an album that has a 'Rock' track that is available "
                "as 'AAC audio file', is in a playlist, and was purchased by a customer.",
                "Find artists who have an album that has a track that is in a playlist and "
                "was purchased by a customer, and a 'Rock' track that is available as "
                "'AAC audio file'.",
                "Find artists who have an album that has a track that is in a playlist, is "
                "available as 'AAC audio file', and was purchased by a customer who also "
                "bought a 'Rock' track from the same artist.",
            ),
            correct_choice=1,
        ),
        StudyQuestion(
            question_id="Q4",
            category=Category.SELF_JOIN,
            complexity=Complexity.COMPLEX,
            sql=_Q4_SQL,
            choices=(
                "Find artists who have an album with a 'Pop' track and an album with a "
                "'Rock' track and both tracks are in the same playlist.",
                "Find artists who have an album with a 'Pop' track and a 'Rock' track and "
                "each track is in at least one playlist.",
                "Find artists who have an album with a 'Pop' track and an album with a "
                "'Rock' track and each track is in at least one playlist.",
                "Find artists who have an album with a 'Pop' track and a 'Rock' track and "
                "both tracks are in the same playlist.",
            ),
            correct_choice=0,
        ),
        StudyQuestion(
            question_id="Q5",
            category=Category.SELF_JOIN,
            complexity=Complexity.SIMPLE,
            sql=_Q5_SQL,
            choices=(
                "Find customers from 'Michigan' that have two invoices billed at two "
                "different states where one of them is 'Michigan'.",
                "Find customers from 'Michigan' that have two invoices billed at two "
                "different states where none of them is 'Michigan'.",
                "Find customers from 'Michigan' that have two invoices billed at two "
                "different states.",
                "Find customers from 'Michigan' that have two invoices billed at 'Michigan'.",
            ),
            correct_choice=2,
        ),
        StudyQuestion(
            question_id="Q6",
            category=Category.SELF_JOIN,
            complexity=Complexity.MEDIUM,
            sql=_Q6_SQL,
            choices=(
                "Find playlists that have at least 3 different tracks that are in the same "
                "album and they are all made by the same composer.",
                "Find playlists that have at least 3 different tracks so that at least 2 of "
                "them are in the same album but all 3 tracks are made by the same composer.",
                "Find playlists that have at least 3 different tracks so that at least 2 of "
                "them are in the same album and made by the same composer.",
                "Find playlists that have at least 3 different tracks that are in the same "
                "album and at least 2 of them are made by the same composer.",
            ),
            correct_choice=3,
        ),
        StudyQuestion(
            question_id="Q7",
            category=Category.GROUPING,
            complexity=Complexity.SIMPLE,
            sql=_Q7_SQL,
            choices=(
                "For each customer who bought a track from an artist named 'Carlos', find "
                "the number of tracks they bought that are by that same artist named 'Carlos'.",
                "For each customer who bought a track from an artist named 'Carlos', find "
                "the number of tracks they bought that are part of invoices that include a "
                "track by that same artist named 'Carlos'.",
                "For each customer who bought a track from an artist named 'Carlos', find "
                "the total number of tracks that customer has purchased.",
                "For each customer who bought a track from an artist named 'Carlos', find "
                "the total number of invoices they have.",
            ),
            correct_choice=0,
        ),
        StudyQuestion(
            question_id="Q8",
            category=Category.GROUPING,
            complexity=Complexity.MEDIUM,
            sql=_Q8_SQL,
            choices=(
                "For each album that has a 'Classical' track, find the maximum duration of "
                "any track that is listed in at least one playlist.",
                "For each album that has a 'Classical' track, find the maximum duration of "
                "any track that is listed in some playlist that includes a 'Classical' track.",
                "For each album that has a 'Classical' track, find the maximum duration of "
                "any 'Classical' track that is listed in at least one playlist.",
                "For each album that has a 'Classical' track listed in at least one "
                "playlist, find the maximum duration of any track in that album.",
            ),
            correct_choice=2,
        ),
        StudyQuestion(
            question_id="Q9",
            category=Category.GROUPING,
            complexity=Complexity.COMPLEX,
            sql=_Q9_SQL,
            choices=(
                "For each genre, find the maximum duration of any track that is sold to at "
                "least one customer from France who bought some track that is listed in a "
                "playlist named 'workout'.",
                "For each genre, find the maximum duration of any track that is sold to at "
                "least one customer from France and is listed in a playlist named 'workout'.",
                "For each genre that has a track listed in a playlist named 'workout', find "
                "the maximum duration of any track that is sold to at least one customer "
                "from France.",
                "For each genre that has a track sold to at least one customer from France, "
                "find the maximum duration of any track that is listed in a playlist named "
                "'workout'.",
            ),
            correct_choice=1,
        ),
        StudyQuestion(
            question_id="Q10",
            category=Category.NESTED,
            complexity=Complexity.SIMPLE,
            sql=_Q10_SQL,
            choices=(
                "Find artists who do not have any album that has a track that is composed "
                "by someone with the same name as the artist.",
                "Find artists who have an album that does not have any track that is "
                "composed by someone with the same name as the artist.",
                "Find artists who do not have any album where all its tracks are composed "
                "by someone with the same name as the artist.",
                "Find artists so that all their albums have a track that is not composed by "
                "someone with the same name as the artist.",
            ),
            correct_choice=0,
        ),
        StudyQuestion(
            question_id="Q11",
            category=Category.NESTED,
            complexity=Complexity.MEDIUM,
            sql=_Q11_SQL,
            choices=(
                "Find artists that have at least two albums such that they both do not have "
                "any track in the 'Rock' genre and all their tracks are shorter than 270000 "
                "milliseconds.",
                "Find artists that have at least two albums such that one of their albums "
                "does not have any track in the 'Rock' genre and another of their albums "
                "only has tracks shorter than 270000 milliseconds.",
                "Find artists that have at least two albums such that they both do not have "
                "any track in the 'Rock' genre and none of their track is shorter than "
                "270000 milliseconds.",
                "Find artists that have at least two albums such that one of their albums "
                "does not have any track in the 'Rock' genre and another of their albums "
                "does not have any track shorter than 270000 milliseconds.",
            ),
            correct_choice=3,
        ),
        StudyQuestion(
            question_id="Q12",
            category=Category.NESTED,
            complexity=Complexity.COMPLEX,
            sql=_Q12_SQL,
            choices=(
                "Find artists that have an album such that none of its tracks that are in "
                "the 'Jazz' genre are individually in at least one playlist.",
                "Find artists that have an album such that at least one of its tracks that "
                "are in the 'Jazz' genre are in all playlists.",
                "Find artists that have an album such that each its tracks that are in the "
                "'Jazz' genre are in all playlists.",
                "Find artists that have an album such that each of its tracks that are in "
                "the 'Jazz' genre are individually in at least one playlist.",
            ),
            correct_choice=3,
        ),
    )


def questions_without_grouping() -> tuple[StudyQuestion, ...]:
    """The 9 questions analysed in the main paper (Fig. 7): no GROUP BY."""
    return tuple(q for q in test_questions() if not q.uses_grouping)


# ---------------------------------------------------------------------- #
# the 6 qualification questions (Appendix D)
# ---------------------------------------------------------------------- #

_QUAL_SQL = {
    "QA1": """
SELECT P.PlaylistId, P.Name
FROM Playlist P, PlaylistTrack PT, Track T, Album AL, Artist A
WHERE P.PlaylistId = PT.PlaylistId
AND PT.TrackId = T.TrackId
AND T.AlbumId = AL.AlbumId
AND AL.ArtistId = A.ArtistId
AND A.Name = 'AC/DC';
""",
    "QA2": """
SELECT C.CustomerId, C.FirstName, C.LastName
FROM Customer C, Invoice I, InvoiceLine IL1, InvoiceLine IL2, Track T1, Track T2
WHERE C.CustomerId = I.CustomerId
AND I.InvoiceId = IL1.InvoiceId
AND I.InvoiceId = IL2.InvoiceId
AND IL1.TrackId = T1.TrackId
AND IL2.TrackId = T2.TrackId
AND T1.GenreId <> T2.GenreId;
""",
    "QA3": """
SELECT P.PlaylistId, G.Name, COUNT(T.TrackId)
FROM Playlist P, PlaylistTrack PT, Track T, Genre G
WHERE P.PlaylistId = PT.PlaylistId
AND PT.TrackId = T.TrackId
AND T.GenreId = G.GenreId
GROUP BY P.PlaylistId, G.Name;
""",
    "QA4": """
SELECT A.ArtistId, A.Name
FROM Artist A
WHERE NOT EXISTS
   (SELECT *
    FROM Album AL
    WHERE AL.ArtistId = A.ArtistId
    AND NOT EXISTS
       (SELECT *
        FROM Track T, MediaType MT
        WHERE AL.AlbumId = T.AlbumId
        AND T.MediaTypeId = MT.MediaTypeId
        AND MT.Name = 'ACC audio file')
   );
""",
    "QA5": """
SELECT C1.CustomerId, C1.FirstName, C1.LastName
FROM Customer C1, Invoice I1, InvoiceLine IL1, Track T1, Album AL1, Artist A1
WHERE C1.CustomerId = I1.CustomerId
AND I1.InvoiceId = IL1.InvoiceId
AND IL1.TrackId = T1.TrackId
AND T1.AlbumId = AL1.AlbumId
AND AL1.ArtistId = A1.ArtistId
AND A1.Name = 'AC/DC'
AND NOT EXISTS
   (SELECT *
    FROM Customer C2, Invoice I2, InvoiceLine IL2, Track T2, Album AL2, Artist A2
    WHERE C2.CustomerId <> C1.CustomerId
    AND C1.City = C2.City
    AND C2.CustomerId = I2.CustomerId
    AND I2.InvoiceId = IL2.InvoiceId
    AND IL2.TrackId = T2.TrackId
    AND T2.AlbumId = AL2.AlbumId
    AND AL2.ArtistId = A2.ArtistId
    AND A2.Name = 'AC/DC');
""",
    "QA6": """
SELECT E1.EmployeeId, COUNT(C.CustomerId), AVG(I.Total)
FROM Employee E1, Employee E2, Customer C, Invoice I
WHERE E1.ReportsTo = E2.EmployeeId
AND E1.Country <> E2.Country
AND E1.EmployeeId = C.SupportRepId
AND E1.Country = C.Country
AND C.CustomerId = I.CustomerId
GROUP BY E1.EmployeeId;
""",
}


@dataclass(frozen=True)
class QualificationQuestion:
    """One question of the SQL qualification exam (Appendix D)."""

    question_id: str
    sql: str
    correct_interpretation: str

    def parsed(self) -> SelectQuery:
        return parse(self.sql)


def qualification_questions() -> tuple[QualificationQuestion, ...]:
    """The 6 qualification questions (workers needed at least 4/6 correct)."""
    interpretations = {
        "QA1": "Playlists that have at least one track from an album by an artist "
        "named 'AC/DC'.",
        "QA2": "Customers who have an invoice with at least two tracks of different "
        "genres.",
        "QA3": "For each playlist, the number of tracks per genre.",
        "QA4": "Artists where all their albums have a track that is available in "
        "'ACC audio file' type.",
        "QA5": "Customers who were the only ones in their city to buy a track from an "
        "album by an artist named 'AC/DC'.",
        "QA6": "For each employee reporting to an employee in another country, the "
        "number of customers they support in their own country and the average "
        "invoice total of those customers.",
    }
    return tuple(
        QualificationQuestion(
            question_id=question_id,
            sql=sql,
            correct_interpretation=interpretations[question_id],
        )
        for question_id, sql in _QUAL_SQL.items()
    )


def study_schema():
    """The schema all stimuli are written against (Chinook)."""
    return chinook_schema()
