"""User-study substrate: stimuli, design, simulation, exclusion and analysis."""

from .analysis import (
    ComparisonResult,
    ParticipantConditionSummary,
    StudyResults,
    analyze_study,
    participant_condition_summaries,
)
from .design import (
    SEQUENCES,
    Assignment,
    assign,
    condition_counts,
    conditions_for_sequence,
    is_balanced,
    sequence_for_participant,
)
from .exclusion import (
    DEFAULT_THRESHOLD_SECONDS,
    ExclusionReport,
    ParticipantStats,
    apply_exclusion,
    exclusion_accuracy,
    legitimate_responses,
    participant_stats,
)
from .participants import (
    ParticipantKind,
    ParticipantProfile,
    PopulationConfig,
    generate_population,
)
from .report import format_fig7, format_fig18, format_participant_deltas
from .simulate import DEFAULT_SEED, ResponseRecord, SimulatedStudy, simulate_study
from .stimuli import (
    Category,
    Complexity,
    Condition,
    QualificationQuestion,
    StudyQuestion,
    qualification_questions,
    questions_without_grouping,
    study_schema,
    test_questions,
)

__all__ = [
    "Assignment",
    "Category",
    "ComparisonResult",
    "Complexity",
    "Condition",
    "DEFAULT_SEED",
    "DEFAULT_THRESHOLD_SECONDS",
    "ExclusionReport",
    "ParticipantConditionSummary",
    "ParticipantKind",
    "ParticipantProfile",
    "ParticipantStats",
    "PopulationConfig",
    "QualificationQuestion",
    "ResponseRecord",
    "SEQUENCES",
    "SimulatedStudy",
    "StudyQuestion",
    "StudyResults",
    "analyze_study",
    "apply_exclusion",
    "assign",
    "condition_counts",
    "conditions_for_sequence",
    "exclusion_accuracy",
    "format_fig18",
    "format_fig7",
    "format_participant_deltas",
    "generate_population",
    "is_balanced",
    "legitimate_responses",
    "participant_condition_summaries",
    "participant_stats",
    "qualification_questions",
    "questions_without_grouping",
    "sequence_for_participant",
    "simulate_study",
    "study_schema",
    "test_questions",
]
