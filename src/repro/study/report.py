"""Plain-text reports mirroring the figures of the evaluation section.

Each ``format_*`` function prints the same rows/series as the corresponding
paper figure so benchmark output can be compared side by side with the paper
(EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

from .analysis import StudyResults
from .exclusion import ExclusionReport
from .stimuli import Condition


def format_fig7(results: StudyResults, title: str = "Fig. 7 — main results") -> str:
    """Median time / mean error per condition, deltas and adjusted p-values."""
    lines = [title, "=" * len(title)]
    lines.append(
        f"n = {results.n_participants} legitimate participants, "
        f"{results.n_questions} questions per participant"
    )
    lines.append("")
    lines.append("Median time per question [sec] (95% BCa CI):")
    for condition in (Condition.SQL, Condition.QV, Condition.BOTH):
        interval = results.time_intervals[condition]
        lines.append(
            f"  {condition.value:<5} {results.median_time[condition]:7.1f}  "
            f"[{interval.low:6.1f}, {interval.high:6.1f}]"
        )
    lines.append("")
    lines.append("Mean error per question (95% BCa CI):")
    for condition in (Condition.SQL, Condition.QV, Condition.BOTH):
        interval = results.error_intervals[condition]
        lines.append(
            f"  {condition.value:<5} {results.mean_error[condition]:7.3f}  "
            f"[{interval.low:6.3f}, {interval.high:6.3f}]"
        )
    lines.append("")
    lines.append("Hypothesis tests (one-tailed Wilcoxon signed-rank, BH-adjusted):")
    for comparison in results.time_comparisons:
        lines.append(
            f"  time  {comparison.treatment.value:<5} vs SQL: "
            f"{comparison.percent_change:+6.1%}  p = {comparison.p_value_adjusted:.3g}"
        )
    for comparison in results.error_comparisons:
        lines.append(
            f"  error {comparison.treatment.value:<5} vs SQL: "
            f"{comparison.percent_change:+6.1%}  p = {comparison.p_value_adjusted:.3g}"
        )
    return "\n".join(lines)


def format_participant_deltas(
    results: StudyResults, title: str = "Fig. 20 — per-participant QV−SQL differences"
) -> str:
    """The per-participant difference summaries of Figs. 20/21."""
    time_comparison = results.comparison("time", Condition.QV)
    error_comparison = results.comparison("error", Condition.QV)
    lines = [title, "=" * len(title)]
    lines.append("QV − SQL time differences (seconds):")
    lines.append(f"  mean Δ   = {time_comparison.mean_difference:+.1f} s")
    lines.append(f"  median Δ = {time_comparison.median_difference:+.1f} s")
    lines.append(
        f"  {time_comparison.fraction_improved:5.0%} of participants faster with QV, "
        f"{time_comparison.fraction_worse:5.0%} faster with SQL"
    )
    lines.append("")
    lines.append("QV − SQL error-rate differences:")
    lines.append(f"  mean Δ   = {error_comparison.mean_difference:+.2f}")
    lines.append(f"  median Δ = {error_comparison.median_difference:+.2f}")
    lines.append(
        f"  {error_comparison.fraction_improved:5.0%} fewer errors with QV, "
        f"{error_comparison.fraction_worse:5.0%} more errors with QV, "
        f"{error_comparison.fraction_tied:5.0%} unchanged"
    )
    return "\n".join(lines)


def format_fig18(report: ExclusionReport, title: str = "Fig. 18 — exclusion") -> str:
    """Participant counts and the speeders/cheaters scatter as text."""
    lines = [title, "=" * len(title)]
    lines.append(
        f"{report.n_total} workers started the test; "
        f"{report.n_excluded} excluded (speeders/cheaters), "
        f"{report.n_legitimate} legitimate participants remain"
    )
    lines.append(f"threshold: {report.threshold_seconds:.0f} s mean time per question")
    lines.append("")
    lines.append("participant  mean-time  median-time  mistakes  excluded  reason")
    for stats in sorted(report.stats, key=lambda s: s.mean_time):
        lines.append(
            f"  {stats.participant_id:>9}  {stats.mean_time:9.1f}  {stats.median_time:11.1f}  "
            f"{stats.mistakes:8d}  {str(stats.excluded):>8}  {stats.reason}"
        )
    return "\n".join(lines)
