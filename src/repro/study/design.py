"""The Latin-square within-subjects design of the study (Section 6.1).

Every participant answers the same questions in the same order, but the
*condition* (SQL, QV or Both) under which each question is shown depends on
the participant's sequence number.  There are six sequences — one per
permutation of the condition triplet — and the permutation repeats every
three questions, so each participant sees each condition on exactly one third
of the questions.  Participants are assigned to sequences round-robin, which
keeps the sequences balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from .stimuli import Condition

#: The six condition sequences S1…S6 (all permutations of SQL/QV/Both).
SEQUENCES: tuple[tuple[Condition, ...], ...] = tuple(
    permutations((Condition.SQL, Condition.QV, Condition.BOTH))
)


@dataclass(frozen=True)
class Assignment:
    """The condition assignment of one participant."""

    participant_id: int
    sequence_number: int  # 0..5
    conditions: tuple[Condition, ...]  # one condition per question


def sequence_for_participant(participant_id: int) -> int:
    """Sequence number for a participant (round-robin assignment)."""
    if participant_id < 0:
        raise ValueError("participant_id must be non-negative")
    return participant_id % len(SEQUENCES)


def conditions_for_sequence(sequence_number: int, n_questions: int) -> tuple[Condition, ...]:
    """Condition of each question for one sequence (triplet repeats)."""
    if not 0 <= sequence_number < len(SEQUENCES):
        raise ValueError(f"sequence_number must be in [0, {len(SEQUENCES)})")
    triplet = SEQUENCES[sequence_number]
    return tuple(triplet[i % 3] for i in range(n_questions))


def assign(participant_id: int, n_questions: int) -> Assignment:
    """Full Latin-square assignment for one participant."""
    sequence_number = sequence_for_participant(participant_id)
    return Assignment(
        participant_id=participant_id,
        sequence_number=sequence_number,
        conditions=conditions_for_sequence(sequence_number, n_questions),
    )


def is_balanced(n_participants: int) -> bool:
    """True when participants split evenly over the six sequences.

    The paper rounded its power-analysis sample size up to a multiple of six
    for exactly this reason.
    """
    return n_participants % len(SEQUENCES) == 0


def condition_counts(assignment: Assignment) -> dict[Condition, int]:
    """How many questions a participant answers under each condition."""
    counts = {condition: 0 for condition in Condition}
    for condition in assignment.conditions:
        counts[condition] += 1
    return counts
