"""Simulated participant population (substitute for the AMT workers).

The paper recruited workers on Amazon Mechanical Turk; 80 started the test,
38 were excluded as speeders or cheaters, and 42 legitimate participants
remain in the analysis.  We cannot recruit workers, so we model them: each
legitimate participant has

* a base reading speed (log-normally distributed across the population, which
  is what makes the timing data non-normal and drives the choice of
  non-parametric tests in Section 6.2);
* per-condition *time multipliers* — centred at 1.0 for SQL, ≈ 0.80 for QV
  and ≈ 0.99 for Both, with individual variation so that roughly 71 % of
  participants end up faster with QV (Fig. 20);
* per-condition *error multipliers* — centred at 1.0 for SQL, ≈ 0.79 for QV
  and ≈ 0.83 for Both (the −21 % / −17 % error effects of Fig. 7);
* a skill factor scaling their error probability.

Speeders answer nearly instantly and mostly at random; cheaters answer nearly
instantly and almost always correctly (they obtained the answers elsewhere) —
the two behaviours that populate the left side of Fig. 18.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .stimuli import Condition


class ParticipantKind(enum.Enum):
    """Ground-truth behaviour class of a simulated worker."""

    LEGITIMATE = "legitimate"
    SPEEDER = "speeder"
    CHEATER = "cheater"


@dataclass(frozen=True)
class ParticipantProfile:
    """Latent parameters of one simulated participant."""

    participant_id: int
    kind: ParticipantKind
    base_time: float  # seconds per question in the SQL condition, before difficulty
    skill: float  # error-probability multiplier (lower = better)
    time_multipliers: dict[Condition, float]
    error_multipliers: dict[Condition, float]


@dataclass(frozen=True)
class PopulationConfig:
    """Calibration of the simulated population.

    The default values are calibrated so the downstream analysis reproduces
    the shape of the paper's results: median SQL time around 90 s/question,
    QV ≈ 20 % faster, Both ≈ SQL, error reductions of ≈ 20 % with QV.
    """

    n_legitimate: int = 42
    n_speeders: int = 20
    n_cheaters: int = 18
    base_time_median: float = 88.0
    base_time_sigma: float = 0.38
    qv_time_effect: float = 0.75
    qv_time_sigma: float = 0.16
    both_time_effect: float = 0.98
    both_time_sigma: float = 0.10
    base_error_rate: float = 0.27
    qv_error_effect: float = 0.82
    both_error_effect: float = 0.86
    error_effect_sigma: float = 0.25
    skill_sigma: float = 0.35

    @property
    def n_total(self) -> int:
        return self.n_legitimate + self.n_speeders + self.n_cheaters


def generate_population(
    config: PopulationConfig, seed: int = 2020
) -> list[ParticipantProfile]:
    """Generate the full worker population (legitimate + illegitimate).

    The population is shuffled so that illegitimate workers are interleaved
    with legitimate ones, as they were in the real study.
    """
    rng = np.random.default_rng(seed)
    profiles: list[ParticipantProfile] = []
    kinds = (
        [ParticipantKind.LEGITIMATE] * config.n_legitimate
        + [ParticipantKind.SPEEDER] * config.n_speeders
        + [ParticipantKind.CHEATER] * config.n_cheaters
    )
    rng.shuffle(kinds)  # type: ignore[arg-type]
    for participant_id, kind in enumerate(kinds):
        if kind is ParticipantKind.LEGITIMATE:
            profiles.append(_legitimate_profile(participant_id, config, rng))
        else:
            profiles.append(_illegitimate_profile(participant_id, kind, rng))
    return profiles


def _legitimate_profile(
    participant_id: int, config: PopulationConfig, rng: np.random.Generator
) -> ParticipantProfile:
    base_time = float(
        np.exp(np.log(config.base_time_median) + config.base_time_sigma * rng.standard_normal())
    )
    skill = float(np.exp(config.skill_sigma * rng.standard_normal()))
    time_multipliers = {
        Condition.SQL: 1.0,
        Condition.QV: float(
            np.exp(np.log(config.qv_time_effect) + config.qv_time_sigma * rng.standard_normal())
        ),
        Condition.BOTH: float(
            np.exp(
                np.log(config.both_time_effect) + config.both_time_sigma * rng.standard_normal()
            )
        ),
    }
    error_multipliers = {
        Condition.SQL: 1.0,
        Condition.QV: float(
            np.exp(
                np.log(config.qv_error_effect)
                + config.error_effect_sigma * rng.standard_normal()
            )
        ),
        Condition.BOTH: float(
            np.exp(
                np.log(config.both_error_effect)
                + config.error_effect_sigma * rng.standard_normal()
            )
        ),
    }
    return ParticipantProfile(
        participant_id=participant_id,
        kind=ParticipantKind.LEGITIMATE,
        base_time=base_time,
        skill=skill,
        time_multipliers=time_multipliers,
        error_multipliers=error_multipliers,
    )


def _illegitimate_profile(
    participant_id: int, kind: ParticipantKind, rng: np.random.Generator
) -> ParticipantProfile:
    base_time = float(rng.uniform(6.0, 22.0))
    if kind is ParticipantKind.SPEEDER:
        skill = 4.0  # answers are mostly random guesses
    else:  # cheater
        skill = 0.03  # almost always "correct"
    unit = {Condition.SQL: 1.0, Condition.QV: 1.0, Condition.BOTH: 1.0}
    return ParticipantProfile(
        participant_id=participant_id,
        kind=kind,
        base_time=base_time,
        skill=skill,
        time_multipliers=dict(unit),
        error_multipliers=dict(unit),
    )
