"""Speeder / cheater exclusion (Section 6.3, Appendix C.4, Fig. 18).

Of the 80 workers who started the real study, 38 were excluded: *speeders*
answered very fast and mostly at random, *cheaters* answered very fast and
almost always correctly.  The published criterion is a 30-seconds-per-question
cut-off on the mean time, complemented by a manual inspection that caught four
additional workers — two cheaters who stalled on a single question (pushing
their mean above the cut-off) and two speeders who gave up half-way through
the test.  We encode those secondary checks as explicit heuristics: a
participant is also excluded when their *median* time per question is below
the cut-off, or when at least half of their answers took under half the
cut-off.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from .participants import ParticipantKind
from .simulate import ResponseRecord, SimulatedStudy

#: The published cut-off (seconds per question).
DEFAULT_THRESHOLD_SECONDS = 30.0


@dataclass(frozen=True)
class ParticipantStats:
    """Per-participant behaviour summary (the axes of Fig. 18)."""

    participant_id: int
    mean_time: float
    median_time: float
    mistakes: int
    n_questions: int
    excluded: bool
    reason: str  # "", "mean-time", "median-time", "fast-majority", "gave-up"


@dataclass(frozen=True)
class ExclusionReport:
    """Outcome of the exclusion filter over one simulated study."""

    stats: tuple[ParticipantStats, ...]
    threshold_seconds: float

    @property
    def legitimate_ids(self) -> tuple[int, ...]:
        return tuple(s.participant_id for s in self.stats if not s.excluded)

    @property
    def excluded_ids(self) -> tuple[int, ...]:
        return tuple(s.participant_id for s in self.stats if s.excluded)

    @property
    def n_total(self) -> int:
        return len(self.stats)

    @property
    def n_excluded(self) -> int:
        return len(self.excluded_ids)

    @property
    def n_legitimate(self) -> int:
        return len(self.legitimate_ids)


def participant_stats(
    responses: tuple[ResponseRecord, ...], threshold_seconds: float
) -> ParticipantStats:
    """Summarize one participant's responses and apply the exclusion rules."""
    if not responses:
        raise ValueError("participant has no responses")
    ordered = sorted(responses, key=lambda record: record.question_index)
    times = [record.time_seconds for record in ordered]
    mistakes = sum(1 for record in ordered if not record.correct)
    mean_time = statistics.fmean(times)
    median_time = statistics.median(times)
    fast_fraction = sum(1 for t in times if t < threshold_seconds / 2) / len(times)
    trailing = times[-max(3, len(times) // 3) :]
    trailing_mean = statistics.fmean(trailing)

    reason = ""
    if mean_time < threshold_seconds:
        reason = "mean-time"
    elif median_time < threshold_seconds:
        reason = "median-time"
    elif fast_fraction >= 0.5:
        reason = "fast-majority"
    elif trailing_mean < threshold_seconds:
        # "Gave up": normal at first, then speeding through the final
        # questions (the two extra speeders of Fig. 18).
        reason = "gave-up"

    return ParticipantStats(
        participant_id=responses[0].participant_id,
        mean_time=mean_time,
        median_time=median_time,
        mistakes=mistakes,
        n_questions=len(responses),
        excluded=bool(reason),
        reason=reason,
    )


def apply_exclusion(
    study: SimulatedStudy, threshold_seconds: float = DEFAULT_THRESHOLD_SECONDS
) -> ExclusionReport:
    """Classify every participant of ``study`` as legitimate or excluded."""
    stats = []
    for profile in study.participants:
        responses = study.responses_of(profile.participant_id)
        stats.append(participant_stats(responses, threshold_seconds))
    return ExclusionReport(stats=tuple(stats), threshold_seconds=threshold_seconds)


def legitimate_responses(
    study: SimulatedStudy, report: ExclusionReport
) -> tuple[ResponseRecord, ...]:
    """All responses of participants the filter kept."""
    keep = set(report.legitimate_ids)
    return tuple(r for r in study.responses if r.participant_id in keep)


def exclusion_accuracy(study: SimulatedStudy, report: ExclusionReport) -> float:
    """Fraction of participants whose classification matches the ground truth.

    The simulator knows which workers were generated as speeders/cheaters;
    this is only available in simulation (the real study had to rely on the
    behavioural heuristics alone) and is used to sanity-check the filter.
    """
    correct = 0
    for stats in report.stats:
        profile = study.participant(stats.participant_id)
        truly_illegitimate = profile.kind is not ParticipantKind.LEGITIMATE
        if stats.excluded == truly_illegitimate:
            correct += 1
    return correct / len(report.stats)
