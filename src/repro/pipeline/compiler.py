"""The staged diagram compiler: SQL text → diagram artifacts, cached per stage.

:class:`DiagramCompiler` replaces the hand-wired ``parse → translate →
simplify → build → layout → render`` call chains that used to live in
``cli.py`` and the one-shot helpers.  Every stage goes through one
content-addressed :class:`~repro.pipeline.stages.StageCache`:

========  =======================================================  =========
stage     cache key                                                product
========  =======================================================  =========
artifact  (stripped SQL text | frozen AST, formats)                everything
lex       stripped SQL text                                        tokens
parse     token stream (types + values, positions ignored)         AST
logic     frozen AST                                               Logic Tree
simplify  frozen Logic Tree                                        Logic Tree
fingerprint  frozen (simplified) Logic Tree                        hex digest
diagram   (fingerprint, canonical-role → alias map)                Diagram
layout    (fingerprint, canonical-role → alias map)                Layout
render    (fingerprint, canonical-role → alias map, format)        text
========  =======================================================  =========

Caches are strictly per-compiler, and a compiler's schema, simplify flag
and layout config are fixed at construction — so they never appear in the
keys.  Keying the back half on the *fingerprint* is what dedupes
equivalent query variants (Fig. 24) to a single diagram/layout/render
computation: the first variant compiles, the others are pure cache hits.
Dedup serves the *representative's* artifacts — for a semantically
equivalent variant that spells its predicates in a different order, the
cached diagram's row order / edge orientation reflects whichever member
compiled first (same tables, rows and edges; ordering may differ from a
cold compile of that exact spelling).  The canonical-role → alias map
bounds that: a variant that renames an alias, or attaches the selection
to the structurally symmetric twin alias, shares the fingerprint (and the
equivalence class in reports) but compiles its own diagram, so rendered
output always shows the right labels in the right places.

The fingerprint pass makes a one-shot compile ~3.5x the bare
``translate → simplify → build`` chain (~0.4 ms vs ~0.1 ms per query on a
paper-sized query).  One-shot wrappers (``queryvis``, ``sql_to_diagram``,
``compile_sql``) pay it even though their fresh caches cannot hit — a
deliberate trade: every artifact carries its fingerprint, and the corpus
paths that matter at scale amortize the cost across the batch.  Layout is
only computed when an output format is requested (or lazily on first
``CompiledDiagram.layout`` access).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Hashable, Mapping

from ..catalog.schema import Schema
from ..diagram.build import build_diagram
from ..diagram.model import Diagram
from ..logic.logic_tree import LogicTree
from ..logic.simplify import simplify_logic_tree
from ..logic.translate import sql_to_logic_tree
from ..render.ascii_art import diagram_to_text
from ..render.dot import diagram_to_dot
from ..render.layout import DEFAULT_LAYOUT_CONFIG, Layout, LayoutConfig, layout_diagram
from ..render.svg import diagram_to_svg
from ..sql.ast import SelectQuery
from ..sql.lexer import scan
from ..sql.parser import Parser
from .diskcache import DiskCache
from .fingerprint import fingerprint_and_roles
from .stages import PipelineStats, StageCache

def _parse_stream(stream) -> SelectQuery:
    return Parser(stream).parse_query()


#: Output formats the render stage knows, mapped to layout-sharing renderers.
RENDERERS: dict[str, Callable[[Diagram, Layout], str]] = {
    "text": lambda diagram, layout: diagram_to_text(diagram, layout=layout),
    "svg": lambda diagram, layout: diagram_to_svg(diagram, layout=layout),
    "dot": lambda diagram, layout: diagram_to_dot(diagram, layout=layout),
}


@dataclass(frozen=True)
class CompiledDiagram:
    """Every artifact the pipeline produced for one query."""

    sql: str | None
    query: SelectQuery
    logic_tree: LogicTree
    simplified_tree: LogicTree
    fingerprint: str
    diagram: Diagram
    layout_config: LayoutConfig = DEFAULT_LAYOUT_CONFIG
    outputs: Mapping[str, str] = field(default_factory=dict)
    #: Canonical-role → (table, alias) assignment from the fingerprint
    #: stage; (fingerprint, roles) identifies the diagram/layout/render
    #: cache entries this artifact was served from.
    roles: tuple[tuple[str, str, str], ...] = ()
    _layout: Layout | None = field(default=None, repr=False, compare=False)

    @property
    def layout(self) -> Layout:
        """The shared layout — computed by the render path, else on demand."""
        if self._layout is None:
            object.__setattr__(
                self, "_layout", layout_diagram(self.diagram, self.layout_config)
            )
        return self._layout

    def output(self, fmt: str) -> str:
        """The rendered text for ``fmt`` (must have been requested)."""
        try:
            return self.outputs[fmt]
        except KeyError:
            raise KeyError(
                f"format {fmt!r} was not compiled; requested: {sorted(self.outputs)}"
            ) from None


class DiagramCompiler:
    """Compiles SQL queries to diagrams through cached, explicit stages.

    >>> compiler = DiagramCompiler()
    >>> artifact = compiler.compile("SELECT T.a FROM T", formats=("svg",))
    >>> artifact.fingerprint, artifact.output("svg")  # doctest: +SKIP

    One compiler instance owns one set of stage caches; the batch API
    (:class:`~repro.pipeline.batch.DiagramBatchCompiler`) keeps an instance
    alive across a whole corpus.  ``cache=False`` recompiles every stage on
    every call (the benchmarks' cold baseline).
    """

    def __init__(
        self,
        schema: Schema | None = None,
        simplify: bool = True,
        layout_config: LayoutConfig | None = None,
        cache: bool = True,
        disk_cache: "DiskCache | str | Path | None" = None,
    ) -> None:
        self._schema = schema
        self._simplify = simplify
        self._layout_config = layout_config or DEFAULT_LAYOUT_CONFIG
        self._stats = PipelineStats()
        if isinstance(disk_cache, (str, Path)):
            disk_cache = DiskCache(Path(disk_cache))
        self._disk_cache = disk_cache
        # Disk counters already folded into ``self._stats.disk``; lets
        # ``stats()`` add only the delta on every call, so merged worker
        # contributions survive repeated refreshes.
        self._disk_seen: dict[str, int] = {}
        # A compiler's schema / simplify flag / layout geometry are fixed at
        # construction and therefore absent from stage keys; a *shared*
        # persistent store must not mix entries across configurations, so
        # they become the disk namespace instead.
        namespace = ""
        if disk_cache is not None:
            namespace = hashlib.sha256(
                f"{schema!r}|{simplify}|{self._layout_config!r}".encode("utf-8")
            ).hexdigest()[:16]
        self._cache = StageCache(
            self._stats,
            enabled=cache,
            disk=disk_cache,
            disk_namespace=namespace,
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Schema | None:
        return self._schema

    @property
    def layout_config(self) -> LayoutConfig:
        return self._layout_config

    def stats(self) -> PipelineStats:
        if self._disk_cache is not None:
            live = self._disk_cache.stats.as_dict()
            for key, value in live.items():
                delta = value - self._disk_seen.get(key, 0)
                if delta:
                    self._stats.disk[key] = self._stats.disk.get(key, 0) + delta
            self._disk_seen = live
        return self._stats

    def cache_sizes(self) -> dict[str, int]:
        return self._cache.sizes()

    @property
    def disk_cache(self) -> DiskCache | None:
        return self._disk_cache

    def compile(
        self,
        query: SelectQuery | str,
        formats: tuple[str, ...] = ("text",),
    ) -> CompiledDiagram:
        """Run every stage for ``query``, returning all artifacts.

        Verbatim repeats short-circuit in the ``artifact`` memo; anything
        else walks the stage chain, hitting whichever stage caches apply.
        """
        for fmt in formats:
            if fmt not in RENDERERS:
                raise ValueError(
                    f"unknown output format {fmt!r}; known: {sorted(RENDERERS)}"
                )
        self._stats.queries += 1
        memo_key = (
            (query.strip(), formats) if isinstance(query, str) else (query, formats)
        )
        return self._cache.get_or_compute(
            "artifact", memo_key, lambda: self._compile_stages(query, formats)
        )

    def _front_half(
        self, query: SelectQuery | str
    ) -> tuple[SelectQuery, LogicTree, LogicTree, str, tuple]:
        """lex → parse → logic → simplify → fingerprint (no diagram work)."""
        ast = self._front_end(query)
        cache = self._cache
        tree = cache.get_or_compute("logic", ast, sql_to_logic_tree, ast)
        if self._simplify:
            simplified = cache.get_or_compute(
                "simplify", tree, simplify_logic_tree, tree
            )
        else:
            simplified = tree
        fingerprint, roles = cache.get_or_compute(
            "fingerprint", simplified, fingerprint_and_roles, simplified
        )
        return ast, tree, simplified, fingerprint, roles

    def _compile_stages(
        self, query: SelectQuery | str, formats: tuple[str, ...]
    ) -> CompiledDiagram:
        sql_text = query if isinstance(query, str) else None
        ast, tree, simplified, fingerprint, roles = self._front_half(query)
        # The back half is keyed on (fingerprint, canonical-role → alias
        # assignment): equivalent variants dedupe to one diagram, but only
        # when each concrete alias plays the same structural role — an
        # alias-renamed variant, or a twin query whose selection sits on
        # the symmetric other alias, compiles its own correctly-labelled
        # diagram instead of being served the representative's.
        diagram_key = (fingerprint, roles)
        diagram = self._cache.get_or_compute(
            "diagram", diagram_key, build_diagram, simplified, self._schema
        )
        layout = None
        outputs: dict[str, str] = {}
        if formats:
            layout = self._cache.get_or_compute(
                "layout", diagram_key, layout_diagram, diagram, self._layout_config
            )
            outputs = {
                fmt: self._cache.get_or_compute(
                    "render", diagram_key + (fmt,), RENDERERS[fmt], diagram, layout
                )
                for fmt in formats
            }
        return CompiledDiagram(
            sql=sql_text,
            query=ast,
            logic_tree=tree,
            simplified_tree=simplified,
            fingerprint=fingerprint,
            diagram=diagram,
            layout_config=self._layout_config,
            outputs=outputs,
            roles=roles,
            _layout=layout,
        )

    def fingerprint(self, query: SelectQuery | str) -> str:
        """Canonical fingerprint of ``query`` through the cached front end.

        Runs only the front half of the pipeline (lex → parse → logic →
        simplify → fingerprint): fingerprint-only callers — corpus dedup
        reports, equivalence checks, the cold-path benchmark — do not pay
        for diagram construction.
        """
        self._stats.queries += 1
        return self._front_half(query)[3]

    def canonical_key(
        self, query: SelectQuery | str
    ) -> tuple[str, tuple[tuple[str, str, str], ...]]:
        """``(fingerprint, roles)`` — the identity of ``query``'s artifacts.

        The pair is exactly what keys the back-half caches (diagram,
        layout, render): two queries with equal canonical keys are served
        identical artifacts.  The serving tier
        (:mod:`repro.serve.service`) uses it to coalesce concurrent
        requests for equivalent SQL onto one in-flight compile and to
        address its bounded response LRU, without paying for diagram
        construction up front.
        """
        _, _, _, fingerprint, roles = self._front_half(query)
        return fingerprint, roles

    def bound_caches(self, max_entries: int) -> bool:
        """Clear the in-memory stage caches once they outgrow a bound.

        Returns whether a clear happened.  Batch runs want unbounded stage
        caches (the corpus is finite); a long-running server does not —
        unbounded distinct traffic would grow them forever.  Clearing is
        cheap to recover from when a persistent disk cache is configured:
        the next compile of any evicted input warm-starts from disk.
        """
        if sum(self._cache.sizes().values()) <= max_entries:
            return False
        self._cache.clear()
        return True

    # ------------------------------------------------------------------ #
    # stages
    # ------------------------------------------------------------------ #

    def _front_end(self, query: SelectQuery | str) -> SelectQuery:
        """lex + parse (skipped entirely for already-parsed input)."""
        if isinstance(query, SelectQuery):
            return query
        text = query.strip()
        stream = self._cache.get_or_compute("lex", text, scan, text)
        if not self._cache.enabled:
            # A disabled cache ignores keys, so don't build the (type, value)
            # tuple the parse stage would key on — the cold path parses
            # every query anyway.
            token_key: Hashable = None
        else:
            token_key = tuple(zip(stream.types, stream.values))
        return self._cache.get_or_compute("parse", token_key, _parse_stream, stream)


def compile_sql(
    query: SelectQuery | str,
    schema: Schema | None = None,
    simplify: bool = True,
    layout_config: LayoutConfig | None = None,
    formats: tuple[str, ...] = ("text",),
) -> CompiledDiagram:
    """One-shot compilation through a fresh (still caching) compiler."""
    compiler = DiagramCompiler(
        schema=schema, simplify=simplify, layout_config=layout_config
    )
    return compiler.compile(query, formats=formats)
