"""The staged diagram compiler: SQL text → diagram artifacts, cached per stage.

:class:`DiagramCompiler` replaces the hand-wired ``parse → translate →
simplify → build → layout → render`` call chains that used to live in
``cli.py`` and the one-shot helpers.  Every stage goes through one
content-addressed :class:`~repro.pipeline.stages.StageCache`:

========  =======================================================  =========
stage     cache key                                                product
========  =======================================================  =========
artifact  (stripped SQL text | frozen AST, formats)                everything
lex       stripped SQL text                                        tokens
parse     token stream (types + values, positions ignored)         AST
logic     frozen AST                                               Logic Tree
simplify  frozen Logic Tree                                        Logic Tree
fingerprint  frozen (simplified) Logic Tree                        hex digest
diagram   (fingerprint, canonical-role → alias map)                Diagram
layout    (fingerprint, canonical-role → alias map)                Layout
render    (fingerprint, canonical-role → alias map, format)        text
========  =======================================================  =========

Caches are strictly per-compiler, and a compiler's schema, simplify flag
and layout config are fixed at construction — so they never appear in the
keys.  Keying the back half on the *fingerprint* is what dedupes
equivalent query variants (Fig. 24) to a single diagram/layout/render
computation: the first variant compiles, the others are pure cache hits.
Dedup serves the *representative's* artifacts — for a semantically
equivalent variant that spells its predicates in a different order, the
cached diagram's row order / edge orientation reflects whichever member
compiled first (same tables, rows and edges; ordering may differ from a
cold compile of that exact spelling).  The canonical-role → alias map
bounds that: a variant that renames an alias, or attaches the selection
to the structurally symmetric twin alias, shares the fingerprint (and the
equivalence class in reports) but compiles its own diagram, so rendered
output always shows the right labels in the right places.

The fingerprint pass makes a one-shot compile ~3.5x the bare
``translate → simplify → build`` chain (~0.4 ms vs ~0.1 ms per query on a
paper-sized query).  One-shot wrappers (``queryvis``, ``sql_to_diagram``,
``compile_sql``) pay it even though their fresh caches cannot hit — a
deliberate trade: every artifact carries its fingerprint, and the corpus
paths that matter at scale amortize the cost across the batch.  Layout is
only computed when an output format is requested (or lazily on first
``CompiledDiagram.layout`` access).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..catalog.schema import Schema
from ..diagram.build import build_diagram
from ..diagram.model import Diagram
from ..logic.logic_tree import LogicTree
from ..logic.simplify import simplify_logic_tree
from ..logic.translate import sql_to_logic_tree
from ..render.ascii_art import diagram_to_text
from ..render.dot import diagram_to_dot
from ..render.layout import DEFAULT_LAYOUT_CONFIG, Layout, LayoutConfig, layout_diagram
from ..render.svg import diagram_to_svg
from ..sql.ast import SelectQuery
from ..sql.lexer import tokenize
from ..sql.parser import Parser
from .fingerprint import fingerprint_and_roles
from .stages import PipelineStats, StageCache

#: Output formats the render stage knows, mapped to layout-sharing renderers.
RENDERERS: dict[str, Callable[[Diagram, Layout], str]] = {
    "text": lambda diagram, layout: diagram_to_text(diagram, layout=layout),
    "svg": lambda diagram, layout: diagram_to_svg(diagram, layout=layout),
    "dot": lambda diagram, layout: diagram_to_dot(diagram, layout=layout),
}


@dataclass(frozen=True)
class CompiledDiagram:
    """Every artifact the pipeline produced for one query."""

    sql: str | None
    query: SelectQuery
    logic_tree: LogicTree
    simplified_tree: LogicTree
    fingerprint: str
    diagram: Diagram
    layout_config: LayoutConfig = DEFAULT_LAYOUT_CONFIG
    outputs: Mapping[str, str] = field(default_factory=dict)
    _layout: Layout | None = field(default=None, repr=False, compare=False)

    @property
    def layout(self) -> Layout:
        """The shared layout — computed by the render path, else on demand."""
        if self._layout is None:
            object.__setattr__(
                self, "_layout", layout_diagram(self.diagram, self.layout_config)
            )
        return self._layout

    def output(self, fmt: str) -> str:
        """The rendered text for ``fmt`` (must have been requested)."""
        try:
            return self.outputs[fmt]
        except KeyError:
            raise KeyError(
                f"format {fmt!r} was not compiled; requested: {sorted(self.outputs)}"
            ) from None


class DiagramCompiler:
    """Compiles SQL queries to diagrams through cached, explicit stages.

    >>> compiler = DiagramCompiler()
    >>> artifact = compiler.compile("SELECT T.a FROM T", formats=("svg",))
    >>> artifact.fingerprint, artifact.output("svg")  # doctest: +SKIP

    One compiler instance owns one set of stage caches; the batch API
    (:class:`~repro.pipeline.batch.DiagramBatchCompiler`) keeps an instance
    alive across a whole corpus.  ``cache=False`` recompiles every stage on
    every call (the benchmarks' cold baseline).
    """

    def __init__(
        self,
        schema: Schema | None = None,
        simplify: bool = True,
        layout_config: LayoutConfig | None = None,
        cache: bool = True,
    ) -> None:
        self._schema = schema
        self._simplify = simplify
        self._layout_config = layout_config or DEFAULT_LAYOUT_CONFIG
        self._stats = PipelineStats()
        self._cache = StageCache(self._stats, enabled=cache)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Schema | None:
        return self._schema

    @property
    def layout_config(self) -> LayoutConfig:
        return self._layout_config

    def stats(self) -> PipelineStats:
        return self._stats

    def cache_sizes(self) -> dict[str, int]:
        return self._cache.sizes()

    def compile(
        self,
        query: SelectQuery | str,
        formats: tuple[str, ...] = ("text",),
    ) -> CompiledDiagram:
        """Run every stage for ``query``, returning all artifacts.

        Verbatim repeats short-circuit in the ``artifact`` memo; anything
        else walks the stage chain, hitting whichever stage caches apply.
        """
        for fmt in formats:
            if fmt not in RENDERERS:
                raise ValueError(
                    f"unknown output format {fmt!r}; known: {sorted(RENDERERS)}"
                )
        self._stats.queries += 1
        memo_key = (
            (query.strip(), formats) if isinstance(query, str) else (query, formats)
        )
        return self._cache.get_or_compute(
            "artifact", memo_key, lambda: self._compile_stages(query, formats)
        )

    def _compile_stages(
        self, query: SelectQuery | str, formats: tuple[str, ...]
    ) -> CompiledDiagram:
        sql_text = query if isinstance(query, str) else None
        ast = self._front_end(query)
        tree = self._cache.get_or_compute(
            "logic", ast, lambda: sql_to_logic_tree(ast)
        )
        if self._simplify:
            simplified = self._cache.get_or_compute(
                "simplify", tree, lambda: simplify_logic_tree(tree)
            )
        else:
            simplified = tree
        fingerprint, roles = self._cache.get_or_compute(
            "fingerprint", simplified, lambda: fingerprint_and_roles(simplified)
        )
        # The back half is keyed on (fingerprint, canonical-role → alias
        # assignment): equivalent variants dedupe to one diagram, but only
        # when each concrete alias plays the same structural role — an
        # alias-renamed variant, or a twin query whose selection sits on
        # the symmetric other alias, compiles its own correctly-labelled
        # diagram instead of being served the representative's.
        diagram_key = (fingerprint, roles)
        diagram = self._cache.get_or_compute(
            "diagram",
            diagram_key,
            lambda: build_diagram(simplified, schema=self._schema),
        )
        layout = None
        outputs: dict[str, str] = {}
        if formats:
            layout = self._cache.get_or_compute(
                "layout",
                diagram_key,
                lambda: layout_diagram(diagram, self._layout_config),
            )
            outputs = {
                fmt: self._cache.get_or_compute(
                    "render",
                    diagram_key + (fmt,),
                    lambda fmt=fmt: RENDERERS[fmt](diagram, layout),
                )
                for fmt in formats
            }
        return CompiledDiagram(
            sql=sql_text,
            query=ast,
            logic_tree=tree,
            simplified_tree=simplified,
            fingerprint=fingerprint,
            diagram=diagram,
            layout_config=self._layout_config,
            outputs=outputs,
            _layout=layout,
        )

    def fingerprint(self, query: SelectQuery | str) -> str:
        """Canonical fingerprint of ``query`` through the cached front end."""
        return self.compile(query, formats=()).fingerprint

    # ------------------------------------------------------------------ #
    # stages
    # ------------------------------------------------------------------ #

    def _front_end(self, query: SelectQuery | str) -> SelectQuery:
        """lex + parse (skipped entirely for already-parsed input)."""
        if isinstance(query, SelectQuery):
            return query
        text = query.strip()
        tokens = self._cache.get_or_compute("lex", text, lambda: tokenize(text))
        token_key = tuple((token.type, token.value) for token in tokens)
        return self._cache.get_or_compute(
            "parse", token_key, lambda: Parser(tokens).parse_query()
        )


def compile_sql(
    query: SelectQuery | str,
    schema: Schema | None = None,
    simplify: bool = True,
    layout_config: LayoutConfig | None = None,
    formats: tuple[str, ...] = ("text",),
) -> CompiledDiagram:
    """One-shot compilation through a fresh (still caching) compiler."""
    compiler = DiagramCompiler(
        schema=schema, simplify=simplify, layout_config=layout_config
    )
    return compiler.compile(query, formats=formats)
