"""Canonical fingerprints for Logic Trees (the Fig. 24 invariance, made a key).

The paper's core claim is that syntactically different spellings of the same
query — ``NOT EXISTS`` / ``NOT IN`` / ``NOT = ANY`` (Fig. 24) — collapse to
one Logic Tree and hence one diagram.  This module turns that claim into an
operational cache key: a deterministic semantic hash of the simplified Logic
Tree that is invariant under

* alias names (alpha-renaming: ``Reserves R`` vs ``Reserves X``),
* the order of commutative predicates within a block,
* the orientation of comparisons (``A.x < B.y`` vs ``B.y > A.x``),
* the order of sibling subquery blocks.

Two queries with equal fingerprints compile to the same diagram, so the
pipeline's diagram/layout/render caches key on the fingerprint and dedupe
whole equivalence classes of a corpus to a single compilation.

The canonicalization is a refinement-based alpha-renaming: each alias gets a
structural signature (table name, depth, quantifier, its selection
predicates), iteratively refined with the signatures of its join neighbours
— a tiny Weisfeiler-Leman pass, ample for the fragment's small trees.
Canonical names ``t1, t2, …`` are then assigned in a canonical traversal
(children ordered by subtree signature).  Symmetric ties fall back to input
order: that can only *split* an equivalence class (missing a dedup
opportunity), never merge two inequivalent queries.

This is the single hottest cold-path stage, so the implementation avoids
per-node hashing entirely: refinement signatures are *rank-compressed* each
round (feature tuples are sorted and replaced by dense integer ranks — the
classic colour-refinement trick), subtree keys are plain orderable tuples
memoized bottom-up, and every traversal is an explicit work-list instead of
recursion.  Ranks are functions of tree *content* only (never of dict or
input order), so fingerprints stay deterministic across processes and runs
— which the persistent cache and the parallel batch API both rely on.  The
reported fingerprint itself stays SHA-256 over the canonical form.
"""

from __future__ import annotations

import hashlib

from ..sql.ast import ColumnRef, Comparison, FLIPPED_OP, SelectQuery
from ..logic.logic_tree import LogicTree, LogicTreeNode
from ..logic.translate import sql_to_logic_tree
from ..logic.simplify import simplify_logic_tree

#: Minimum refinement rounds (actual count adapts to alias count and stops
#: early once the partition into signature classes is stable).
_REFINEMENT_ROUNDS = 3

#: Quantifier → feature string (``str(Quantifier)`` is a Python call per
#: node per use; this is one dict probe).  ``None`` maps exactly like the
#: historical ``str(None)`` / serialize-time ``"root"`` spellings.
from ..logic.logic_tree import Quantifier as _Q  # noqa: E402

_QUANT_FEATURE = {
    None: "None",
    _Q.EXISTS: "∃",
    _Q.NOT_EXISTS: "∄",
    _Q.FOR_ALL: "∀",
}
_QUANT_LABEL = {
    None: "root",
    _Q.EXISTS: "∃",
    _Q.NOT_EXISTS: "∄",
    _Q.FOR_ALL: "∀",
}


def fingerprint_sql(query: SelectQuery | str, simplify: bool = True) -> str:
    """Fingerprint an SQL query (text or AST) through the standard stages."""
    if isinstance(query, str):
        from ..sql.parser import parse

        query = parse(query)
    tree = sql_to_logic_tree(query)
    if simplify:
        tree = simplify_logic_tree(tree)
    return fingerprint_logic_tree(tree)


def fingerprint_logic_tree(tree: LogicTree) -> str:
    """SHA-256 hex digest of the canonical form of ``tree``."""
    return fingerprint_and_roles(tree)[0]


def fingerprint_and_roles(
    tree: LogicTree,
) -> tuple[str, tuple[tuple[str, str, str], ...]]:
    """The fingerprint plus the canonical-role → alias assignment.

    The second element maps each canonical name to the concrete (table,
    alias) that plays that role: ``((canonical, table, alias), ...)``,
    sorted.  Two trees with equal fingerprints AND equal role assignments
    build diagrams with identical labelling — which is what makes the pair
    a safe cache key for the diagram/layout/render stages.  Equal
    fingerprints with *different* role assignments (e.g. the selection
    moved from alias A to its structurally symmetric twin B) are the same
    query up to renaming but must not share rendered output.
    """
    form, names, table_of = _canonical_data(tree)
    digest = hashlib.sha256(form.encode("utf-8")).hexdigest()
    roles = tuple(
        sorted((name, table_of[alias], alias) for alias, name in names.items())
    )
    return digest, roles


def canonical_form(tree: LogicTree) -> str:
    """Deterministic serialization of ``tree`` modulo aliases and ordering.

    The tree is preprocessed exactly like diagram construction (unique
    aliases, flattened ∃ blocks) so the fingerprint identifies precisely the
    trees that build the same diagram structure.
    """
    return _canonical_data(tree)[0]


_PREPROCESS = None


def _canonical_data(
    tree: LogicTree,
) -> tuple[str, dict[str, str], dict[str, str]]:
    global _PREPROCESS
    if _PREPROCESS is None:
        # Imported here: diagram.build imports this package's compiler
        # lazily, so a module-level import would be circular.  Bound once —
        # the import-machinery probe is measurable on the per-query path.
        from ..diagram.build import ensure_unique_aliases, flatten_existential_blocks

        _PREPROCESS = (ensure_unique_aliases, flatten_existential_blocks)
    ensure_unique, flatten = _PREPROCESS
    tree = flatten(ensure_unique(tree))
    index = _TreeIndex(tree)
    ranks = _alias_ranks(tree, index)
    order = _ordered_children_map(tree, index, ranks)
    names = _canonical_names(tree, index, ranks, order)
    body = _serialize(tree.root, index, names, order)
    select = ",".join(_operand_repr(item, names) for item in tree.select_items)
    group_by = ",".join(_column_repr(column, names) for column in tree.group_by)
    head = f"select[{select}] group[{group_by}]"
    # Ranked-output modifiers participate in dedup: the same body with a
    # different ORDER BY / LIMIT / DISTINCT is a different query.  Queries
    # without modifiers keep the historical form (and hence fingerprint).
    if tree.distinct:
        head += " distinct"
    if tree.order_by:
        keys = ",".join(
            _column_repr(item.column, names) + (" desc" if item.descending else "")
            for item in tree.order_by
        )
        head += f" order[{keys}]"
    if tree.limit is not None:
        head += f" limit[{tree.limit}+{tree.offset}]"
    return f"{head} {body}", names, index.table_of


def _needs_child_ordering(index: _TreeIndex) -> bool:
    """Whether any node has siblings to order canonically.

    Subtree keys exist solely to order sibling subquery blocks; in chains
    (every node ≤ 1 child) — the overwhelmingly common shape — the input
    order is the only order and the whole keying pass can be skipped.
    """
    for node, _depth in index.nodes:
        if len(node.children) > 1:
            return True
    return False


class _TreeIndex:
    """One-pass, pre-lowered view of a tree for the canonicalization below.

    Everything the refinement, ordering and serialization steps consume —
    lowered aliases and column names, join orientations, owner-resolved
    predicate attribution — is derived exactly once per tree here, instead
    of re-lowering and re-resolving on every use (the canonicalization
    walks each predicate several times).
    """

    __slots__ = ("nodes", "tables", "preds", "owner_node", "depth_of", "table_of")

    def __init__(self, tree: LogicTree) -> None:
        #: (node, depth) pairs in pre-order.
        self.nodes = list(tree.iter_with_depth())
        #: id(node) → ((alias, table_name), ...), both lowered.
        self.tables: dict[int, tuple[tuple[str, str], ...]] = {}
        #: id(node) → predicate descriptors (see ``_descriptor``).
        self.preds: dict[int, tuple[tuple, ...]] = {}
        #: alias → owning node (aliases are unique after preprocessing).
        self.owner_node: dict[str, LogicTreeNode] = {}
        self.depth_of: dict[str, int] = {}
        self.table_of: dict[str, str] = {}
        for node, depth in self.nodes:
            local = []
            for table in node.tables:
                alias = table.effective_alias.lower()
                name = table.name.lower()
                local.append((alias, name))
                self.owner_node[alias] = node
                self.depth_of[alias] = depth
                self.table_of[alias] = name
            self.tables[id(node)] = tuple(local)
        # Second pass on purpose: descriptors resolve owner aliases, which
        # must all be registered first (correlated predicates may reference
        # an alias owned by an outer node).
        descriptor = self._descriptor
        for node, _depth in self.nodes:
            self.preds[id(node)] = tuple(
                descriptor(predicate, node) for predicate in node.predicates
            )

    def _descriptor(self, predicate: Comparison, node: LogicTreeNode) -> tuple:
        """Pre-resolved rendering/attribution data for one predicate.

        * ``("j", lcol, op, l_explicit, l_owner, rcol, flop, r_explicit,
          r_owner)`` for joins — ``*_explicit`` is the spelled qualifier
          (reprs use it, ``?`` when absent), ``*_owner`` the owner-resolved
          alias the refinement attributes the join to;
        * ``("s", col, op, literal, explicit, owner)`` for selections with
          a column side (literal already rendered);
        * ``("p", text)`` for anything else (rendered verbatim).
        """
        left = predicate.left
        right = predicate.right
        left_is_col = type(left) is ColumnRef
        right_is_col = type(right) is ColumnRef
        if left_is_col and right_is_col:
            return (
                "j",
                left.column.lower(),
                predicate.op,
                left.table.lower() if left.table else None,
                self._owner(left, node),
                right.column.lower(),
                FLIPPED_OP[predicate.op],
                right.table.lower() if right.table else None,
                self._owner(right, node),
            )
        if right_is_col:
            # literal op column — normalize orientation without building a
            # flipped Comparison node (construction validates + allocates).
            column, op, literal = right, FLIPPED_OP[predicate.op], left
        elif left_is_col:
            column, op, literal = left, predicate.op, right
        else:
            return ("p", f"{left} {predicate.op} {right}")
        return (
            "s",
            column.column.lower(),
            op,
            str(literal),
            column.table.lower() if column.table else None,
            self._owner(column, node),
        )

    def _owner(self, column: ColumnRef, node: LogicTreeNode) -> str | None:
        """The alias a column belongs to; local single-table fallback."""
        if column.table is not None:
            alias = column.table.lower()
            return alias if alias in self.owner_node else None
        local = self.tables[id(node)]
        if len(local) == 1:
            return local[0][0]
        return None


def _pred_reprs(descriptors: tuple[tuple, ...], qualifiers: dict) -> list[str]:
    """Orientation-normalized predicate renderings under ``qualifiers``.

    ``qualifiers`` maps aliases to whatever stands in for them (refinement
    ranks while ordering, canonical ``tN`` names while serializing); spelled
    qualifiers that resolve to nothing render as ``?`` — matching the
    historic behavior of qualifying by the *explicit* prefix only.
    """
    out = []
    get = qualifiers.get
    for d in descriptors:
        kind = d[0]
        if kind == "j":
            _, lcol, op, lex, _lo, rcol, flop, rex, _ro = d
            lq = get(lex, "?") if lex else "?"
            rq = get(rex, "?") if rex else "?"
            forward = f"{lq}.{lcol} {op} {rq}.{rcol}"
            backward = f"{rq}.{rcol} {flop} {lq}.{lcol}"
            out.append(forward if forward <= backward else backward)
        elif kind == "s":
            _, col, op, literal, explicit, _owner = d
            prefix = get(explicit, "?") if explicit else "?"
            out.append(f"{prefix}.{col} {op} {literal}")
        else:
            out.append(d[1])
    return out


# ---------------------------------------------------------------------- #
# alias ranks (colour refinement with rank compression)
# ---------------------------------------------------------------------- #


def _compress(features: dict[str, object]) -> tuple[dict[str, int], int]:
    """Replace feature values by dense ranks in sorted-feature order.

    Feature tuples within one round share a shape, so sorting them is
    well-defined; the resulting ranks depend only on tree content, which
    keeps the canonicalization deterministic across processes.
    """
    distinct = sorted(set(features.values()))  # type: ignore[type-var]
    rank_of = {feature: rank for rank, feature in enumerate(distinct)}
    return {alias: rank_of[feature] for alias, feature in features.items()}, len(
        distinct
    )


def _alias_ranks(tree: LogicTree, index: _TreeIndex) -> dict[str, int]:
    """Structural rank per alias, refined over join neighbourhoods."""
    owner = index.owner_node
    if len(owner) == 1:
        # One alias: nothing to discriminate, no features needed.
        return {next(iter(owner)): 0}
    # Fast path: when (table, depth, quantifier) alone discriminates every
    # alias, the finer features (selections, outputs, join neighbourhoods)
    # provably cannot change the ranking — tuples that differ in a prefix
    # compare by that prefix no matter what is appended, and refinement
    # starts (and immediately stops) fully discriminated either way.  Most
    # queries take this exit: tied prefixes need a self-join or a symmetric
    # twin table at the same depth.
    prefix: dict[str, object] = {
        alias: (
            index.table_of[alias],
            index.depth_of[alias],
            _QUANT_FEATURE[owner[alias].quantifier],
        )
        for alias in owner
    }
    ranks, classes = _compress(prefix)
    if classes == len(owner):
        return ranks
    selections: dict[str, list[str]] = {alias: [] for alias in owner}
    joins: dict[str, list[tuple[str, str, str, str]]] = {alias: [] for alias in owner}
    for node, _depth in index.nodes:
        for descriptor in index.preds[id(node)]:
            kind = descriptor[0]
            if kind == "j":
                _, lcol, op, _lex, lo, rcol, flop, _rex, ro = descriptor
                if lo is not None and ro is not None:
                    joins[lo].append((lcol, op, ro, rcol))
                    joins[ro].append((rcol, flop, lo, lcol))
            elif kind == "s":
                _, col, op, literal, _explicit, owning = descriptor
                if owning is not None:
                    selections[owning].append(f"{col}{op}{literal}")

    # SELECT / GROUP BY references are distinguishing features too: without
    # them, the selected table and a structurally symmetric twin would tie
    # and fall back to input order (breaking order-invariance).
    outputs: dict[str, list[str]] = {alias: [] for alias in owner}
    root = tree.root
    for item in tree.select_items:
        column = item if isinstance(item, ColumnRef) else getattr(item, "argument", None)
        if isinstance(column, ColumnRef):
            alias = index._owner(column, root)
            if alias is not None:
                outputs[alias].append(f"sel:{column.column.lower()}")
    for column in tree.group_by:
        alias = index._owner(column, root)
        if alias is not None:
            outputs[alias].append(f"grp:{column.column.lower()}")
    for item in tree.order_by:
        alias = index._owner(item.column, root)
        if alias is not None:
            direction = "desc" if item.descending else "asc"
            outputs[alias].append(f"ord:{item.column.column.lower()}:{direction}")

    initial: dict[str, object] = {
        alias: (
            index.table_of[alias],
            index.depth_of[alias],
            _QUANT_FEATURE[owner[alias].quantifier],
            tuple(sorted(selections[alias])),
            tuple(sorted(outputs[alias])),
        )
        for alias in owner
    }
    ranks, classes = _compress(initial)
    # One round per alias guarantees a distinguishing feature propagates
    # across the whole join graph (Weisfeiler-Leman converges in <= n);
    # refinement is monotone, so it stops as soon as every alias sits in
    # its own class (fully discriminated — the common case, checked before
    # the first join round even runs) or a round fails to split any class.
    for _round in range(max(_REFINEMENT_ROUNDS, len(owner))):
        if classes == len(owner):
            break
        refined: dict[str, object] = {
            alias: (
                ranks[alias],
                tuple(
                    sorted(
                        (col, op, ranks[other], other_col)
                        for col, op, other, other_col in joins[alias]
                    )
                ),
            )
            for alias in ranks
        }
        ranks, new_classes = _compress(refined)
        if new_classes == classes:
            break
        classes = new_classes
    return ranks


# ---------------------------------------------------------------------- #
# canonical ordering, naming and serialization
# ---------------------------------------------------------------------- #


def _ordered_children_map(
    tree: LogicTree, index: _TreeIndex, ranks: dict[str, int]
) -> dict[int, tuple[LogicTreeNode, ...]]:
    """Memoized canonical child order per node (keyed by ``id(node)``).

    Subtree keys are computed bottom-up in one pass, so ordering the whole
    tree is O(nodes·log) instead of the O(nodes²) of re-deriving every
    subtree's key at every ancestor — and when no node has more than one
    child (queries are overwhelmingly chains) the keying pass is skipped
    outright, since sibling order is the only thing the keys decide.
    """
    if not _needs_child_ordering(index):
        return {id(node): node.children for node, _depth in index.nodes}
    subtree_key: dict[int, tuple] = {}
    order: dict[int, tuple[LogicTreeNode, ...]] = {}
    # index.nodes is pre-order (parents first), so the reverse visits every
    # child before its parent — no extra tree walk needed.
    for node, _depth in reversed(index.nodes):
        children = node.children
        if len(children) > 1:
            keyed = sorted(
                enumerate(children),
                key=lambda pair: (subtree_key[id(pair[1])], pair[0]),
            )
            order[id(node)] = tuple(child for _index, child in keyed)
            child_keys = tuple(sorted(subtree_key[id(child)] for child in children))
        else:
            order[id(node)] = children
            child_keys = tuple(subtree_key[id(child)] for child in children)
        subtree_key[id(node)] = (
            _QUANT_FEATURE[node.quantifier],
            tuple(sorted(ranks[alias] for alias, _name in index.tables[id(node)])),
            tuple(sorted(_pred_reprs(index.preds[id(node)], ranks))),
            child_keys,
        )
    return order


def _canonical_names(
    tree: LogicTree,
    index: _TreeIndex,
    ranks: dict[str, int],
    order: dict[int, tuple[LogicTreeNode, ...]],
) -> dict[str, str]:
    """Assign t1, t2, … in canonical (pre-order, ordered-children) traversal."""
    names: dict[str, str] = {}
    stack: list[LogicTreeNode] = [tree.root]
    while stack:
        node = stack.pop()
        local = index.tables[id(node)]
        if len(local) == 1:
            names[local[0][0]] = f"t{len(names) + 1}"
        else:
            for _rank, _position, alias in sorted(
                (ranks[alias], position, alias)
                for position, (alias, _name) in enumerate(local)
            ):
                names[alias] = f"t{len(names) + 1}"
        children = order[id(node)]
        if children:
            stack.extend(reversed(children))
    return names


def _serialize(
    root: LogicTreeNode,
    index: _TreeIndex,
    names: dict[str, str],
    order: dict[int, tuple[LogicTreeNode, ...]],
) -> str:
    """Serialize the tree bottom-up (children before parents)."""
    rendered: dict[int, str] = {}
    for node, _depth in reversed(index.nodes):
        node_id = id(node)
        local = index.tables[node_id]
        if len(local) == 1:
            alias, name = local[0]
            tables_text = f"{names[alias]}={name}"
        else:
            tables_text = ",".join(
                sorted(f"{names[alias]}={name}" for alias, name in local)
            )
        descriptors = index.preds[node_id]
        preds_text = (
            ";".join(sorted(_pred_reprs(descriptors, names))) if descriptors else ""
        )
        child_nodes = order[node_id]
        children_text = (
            " ".join(rendered[id(child)] for child in child_nodes)
            if child_nodes
            else ""
        )
        quantifier = _QUANT_LABEL[node.quantifier]
        rendered[node_id] = (
            f"({quantifier} tables[{tables_text}] "
            f"preds[{preds_text}] children[{children_text}])"
        )
    return rendered[id(root)]


def _operand_repr(item, names: dict[str, str]) -> str:
    if isinstance(item, ColumnRef):
        return _column_repr(item, names)
    # AggregateCall: canonicalize the argument column too.
    argument = item.argument
    if isinstance(argument, ColumnRef):
        return f"{item.func.lower()}({_column_repr(argument, names)})"
    return f"{item.func.lower()}({argument})"


def _column_repr(column: ColumnRef, names: dict[str, str]) -> str:
    alias = column.table.lower() if column.table else None
    prefix = names.get(alias, "?") if alias else "?"
    return f"{prefix}.{column.column.lower()}"
