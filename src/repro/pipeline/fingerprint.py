"""Canonical fingerprints for Logic Trees (the Fig. 24 invariance, made a key).

The paper's core claim is that syntactically different spellings of the same
query — ``NOT EXISTS`` / ``NOT IN`` / ``NOT = ANY`` (Fig. 24) — collapse to
one Logic Tree and hence one diagram.  This module turns that claim into an
operational cache key: a deterministic semantic hash of the simplified Logic
Tree that is invariant under

* alias names (alpha-renaming: ``Reserves R`` vs ``Reserves X``),
* the order of commutative predicates within a block,
* the orientation of comparisons (``A.x < B.y`` vs ``B.y > A.x``),
* the order of sibling subquery blocks.

Two queries with equal fingerprints compile to the same diagram, so the
pipeline's diagram/layout/render caches key on the fingerprint and dedupe
whole equivalence classes of a corpus to a single compilation.

The canonicalization is a refinement-based alpha-renaming: each alias gets a
structural signature (table name, depth, quantifier, its selection
predicates), iteratively refined with the signatures of its join neighbours
— a tiny Weisfeiler-Leman pass, ample for the fragment's small trees.
Canonical names ``t1, t2, …`` are then assigned in a canonical traversal
(children ordered by subtree signature).  Symmetric ties fall back to input
order: that can only *split* an equivalence class (missing a dedup
opportunity), never merge two inequivalent queries.
"""

from __future__ import annotations

import hashlib

from ..sql.ast import ColumnRef, Comparison, FLIPPED_OP, SelectQuery
from ..logic.logic_tree import LogicTree, LogicTreeNode
from ..logic.translate import sql_to_logic_tree
from ..logic.simplify import simplify_logic_tree

_REFINEMENT_ROUNDS = 3


def fingerprint_sql(query: SelectQuery | str, simplify: bool = True) -> str:
    """Fingerprint an SQL query (text or AST) through the standard stages."""
    if isinstance(query, str):
        from ..sql.parser import parse

        query = parse(query)
    tree = sql_to_logic_tree(query)
    if simplify:
        tree = simplify_logic_tree(tree)
    return fingerprint_logic_tree(tree)


def fingerprint_logic_tree(tree: LogicTree) -> str:
    """SHA-256 hex digest of the canonical form of ``tree``."""
    return fingerprint_and_roles(tree)[0]


def fingerprint_and_roles(
    tree: LogicTree,
) -> tuple[str, tuple[tuple[str, str, str], ...]]:
    """The fingerprint plus the canonical-role → alias assignment.

    The second element maps each canonical name to the concrete (table,
    alias) that plays that role: ``((canonical, table, alias), ...)``,
    sorted.  Two trees with equal fingerprints AND equal role assignments
    build diagrams with identical labelling — which is what makes the pair
    a safe cache key for the diagram/layout/render stages.  Equal
    fingerprints with *different* role assignments (e.g. the selection
    moved from alias A to its structurally symmetric twin B) are the same
    query up to renaming but must not share rendered output.
    """
    form, names, table_of = _canonical_data(tree)
    digest = hashlib.sha256(form.encode("utf-8")).hexdigest()
    roles = tuple(
        sorted((name, table_of[alias], alias) for alias, name in names.items())
    )
    return digest, roles


def canonical_form(tree: LogicTree) -> str:
    """Deterministic serialization of ``tree`` modulo aliases and ordering.

    The tree is preprocessed exactly like diagram construction (unique
    aliases, flattened ∃ blocks) so the fingerprint identifies precisely the
    trees that build the same diagram structure.
    """
    return _canonical_data(tree)[0]


def _canonical_data(
    tree: LogicTree,
) -> tuple[str, dict[str, str], dict[str, str]]:
    # Imported here: diagram.build imports this package's compiler lazily,
    # so a module-level import would be circular.
    from ..diagram.build import ensure_unique_aliases, flatten_existential_blocks

    tree = flatten_existential_blocks(ensure_unique_aliases(tree))
    signatures = _alias_signatures(tree)
    names = _canonical_names(tree, signatures)
    table_of = {
        table.effective_alias.lower(): table.name.lower()
        for node in tree.iter_nodes()
        for table in node.tables
    }
    body = _serialize_node(tree.root, names, signatures)
    select = ",".join(_operand_repr(item, names) for item in tree.select_items)
    group_by = ",".join(_column_repr(column, names) for column in tree.group_by)
    return f"select[{select}] group[{group_by}] {body}", names, table_of


# ---------------------------------------------------------------------- #
# alias signatures (refinement)
# ---------------------------------------------------------------------- #


def _alias_signatures(tree: LogicTree) -> dict[str, str]:
    """Structural signature per alias, refined over join neighbourhoods."""
    owner: dict[str, LogicTreeNode] = {}
    depth_of: dict[str, int] = {}
    table_of: dict[str, str] = {}
    for node, depth in tree.iter_with_depth():
        for table in node.tables:
            alias = table.effective_alias.lower()
            owner[alias] = node
            depth_of[alias] = depth
            table_of[alias] = table.name.lower()

    selections: dict[str, list[str]] = {alias: [] for alias in owner}
    joins: dict[str, list[tuple[str, str, str, str]]] = {alias: [] for alias in owner}
    for node, _depth in tree.iter_with_depth():
        for predicate in node.predicates:
            if predicate.is_join:
                left: ColumnRef = predicate.left  # type: ignore[assignment]
                right: ColumnRef = predicate.right  # type: ignore[assignment]
                left_alias = _owning_alias(left, node, owner)
                right_alias = _owning_alias(right, node, owner)
                if left_alias is not None and right_alias is not None:
                    joins[left_alias].append(
                        (left.column.lower(), predicate.op, right_alias, right.column.lower())
                    )
                    joins[right_alias].append(
                        (
                            right.column.lower(),
                            FLIPPED_OP[predicate.op],
                            left_alias,
                            left.column.lower(),
                        )
                    )
            elif predicate.is_selection:
                normalized = predicate.normalized_selection()
                if isinstance(normalized.left, ColumnRef):
                    alias = _owning_alias(normalized.left, node, owner)
                    if alias is not None:
                        selections[alias].append(
                            f"{normalized.left.column.lower()}"
                            f"{normalized.op}{normalized.right}"
                        )

    # SELECT / GROUP BY references are distinguishing features too: without
    # them, the selected table and a structurally symmetric twin would tie
    # and fall back to input order (breaking order-invariance).
    outputs: dict[str, list[str]] = {alias: [] for alias in owner}
    root = tree.root
    for item in tree.select_items:
        column = item if isinstance(item, ColumnRef) else getattr(item, "argument", None)
        if isinstance(column, ColumnRef):
            alias = _owning_alias(column, root, owner)
            if alias is not None:
                outputs[alias].append(f"sel:{column.column.lower()}")
    for column in tree.group_by:
        alias = _owning_alias(column, root, owner)
        if alias is not None:
            outputs[alias].append(f"grp:{column.column.lower()}")

    signatures = {
        alias: _digest(
            table_of[alias],
            str(depth_of[alias]),
            str(owner[alias].quantifier),
            *sorted(selections[alias]),
            *sorted(outputs[alias]),
        )
        for alias in owner
    }
    # One round per alias guarantees a distinguishing feature propagates
    # across the whole join graph (Weisfeiler-Leman converges in <= n).
    for _round in range(max(_REFINEMENT_ROUNDS, len(owner))):
        signatures = {
            alias: _digest(
                signatures[alias],
                *sorted(
                    f"{col}{op}{signatures[other]}.{other_col}"
                    for col, op, other, other_col in joins[alias]
                ),
            )
            for alias in signatures
        }
    return signatures


def _owning_alias(
    column: ColumnRef, node: LogicTreeNode, owner: dict[str, LogicTreeNode]
) -> str | None:
    """The alias a column belongs to; local single-table fallback if bare."""
    if column.table is not None:
        alias = column.table.lower()
        return alias if alias in owner else None
    if len(node.tables) == 1:
        return node.tables[0].effective_alias.lower()
    return None


# ---------------------------------------------------------------------- #
# canonical naming and serialization
# ---------------------------------------------------------------------- #


def _canonical_names(tree: LogicTree, signatures: dict[str, str]) -> dict[str, str]:
    """Assign t1, t2, … in canonical traversal order."""
    names: dict[str, str] = {}

    def visit(node: LogicTreeNode) -> None:
        ordered = sorted(
            enumerate(node.tables),
            key=lambda pair: (signatures[pair[1].effective_alias.lower()], pair[0]),
        )
        for _index, table in ordered:
            alias = table.effective_alias.lower()
            names[alias] = f"t{len(names) + 1}"
        for child in _ordered_children(node, signatures):
            visit(child)

    visit(tree.root)
    return names


def _ordered_children(
    node: LogicTreeNode, signatures: dict[str, str]
) -> list[LogicTreeNode]:
    keyed = sorted(
        enumerate(node.children),
        key=lambda pair: (_subtree_key(pair[1], signatures), pair[0]),
    )
    return [child for _index, child in keyed]


def _subtree_key(node: LogicTreeNode, signatures: dict[str, str]) -> str:
    """Alias-independent structural key of a subtree, for sibling ordering."""
    tables = sorted(signatures[t.effective_alias.lower()] for t in node.tables)
    predicates = sorted(
        _predicate_repr(p, signatures, qualify=_signature_qualifier(signatures))
        for p in node.predicates
    )
    children = sorted(_subtree_key(child, signatures) for child in node.children)
    return _digest(str(node.quantifier), *tables, *predicates, *children)


def _serialize_node(
    node: LogicTreeNode, names: dict[str, str], signatures: dict[str, str]
) -> str:
    tables = sorted(
        f"{names[t.effective_alias.lower()]}={t.name.lower()}" for t in node.tables
    )
    predicates = sorted(
        _predicate_repr(p, signatures, qualify=_name_qualifier(names))
        for p in node.predicates
    )
    children = [
        _serialize_node(child, names, signatures)
        for child in _ordered_children(node, signatures)
    ]
    quantifier = str(node.quantifier) if node.quantifier else "root"
    return (
        f"({quantifier} tables[{','.join(tables)}] "
        f"preds[{';'.join(predicates)}] children[{' '.join(children)}])"
    )


def _name_qualifier(names: dict[str, str]):
    def qualify(column: ColumnRef) -> str:
        alias = column.table.lower() if column.table else None
        prefix = names.get(alias, "?") if alias else "?"
        return f"{prefix}.{column.column.lower()}"

    return qualify


def _signature_qualifier(signatures: dict[str, str]):
    def qualify(column: ColumnRef) -> str:
        alias = column.table.lower() if column.table else None
        prefix = signatures.get(alias, "?") if alias else "?"
        return f"{prefix}.{column.column.lower()}"

    return qualify


def _predicate_repr(predicate: Comparison, signatures: dict[str, str], qualify) -> str:
    """Orientation-normalized rendering of one comparison predicate."""
    if predicate.is_join:
        forward = f"{qualify(predicate.left)} {predicate.op} {qualify(predicate.right)}"
        flipped = predicate.flipped()
        backward = f"{qualify(flipped.left)} {flipped.op} {qualify(flipped.right)}"
        return min(forward, backward)
    normalized = predicate.normalized_selection()
    if isinstance(normalized.left, ColumnRef):
        return f"{qualify(normalized.left)} {normalized.op} {normalized.right}"
    return f"{normalized.left} {normalized.op} {normalized.right}"


def _operand_repr(item, names: dict[str, str]) -> str:
    if isinstance(item, ColumnRef):
        return _column_repr(item, names)
    # AggregateCall: canonicalize the argument column too.
    argument = item.argument
    if isinstance(argument, ColumnRef):
        return f"{item.func.lower()}({_column_repr(argument, names)})"
    return f"{item.func.lower()}({argument})"


def _column_repr(column: ColumnRef, names: dict[str, str]) -> str:
    alias = column.table.lower() if column.table else None
    prefix = names.get(alias, "?") if alias else "?"
    return f"{prefix}.{column.column.lower()}"


def _digest(*parts: str) -> str:
    # Internal refinement signatures only need process-independent
    # determinism, not cryptographic strength; blake2b is the fastest
    # stable hash in the stdlib.  The reported fingerprint itself stays
    # SHA-256 over the canonical form.
    return hashlib.blake2b(
        "\x1f".join(parts).encode("utf-8"), digest_size=8
    ).hexdigest()
