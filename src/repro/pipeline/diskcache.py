"""Persistent, content-addressed on-disk cache for pipeline stage products.

The in-memory :class:`~repro.pipeline.stages.StageCache` dies with its
compiler; corpus services restart, fan out over worker processes, and repeat
yesterday's workload.  :class:`DiskCache` is the second level behind the
stage caches: stage products are pickled to a directory of content-addressed
entry files, so a fresh process (or a pool worker) warm-starts from disk
instead of recompiling every equivalence class from scratch.

Design rules, in order:

* **Never trust an entry.**  Every entry embeds a magic marker and the
  store version; a file that fails to unpickle, carries the wrong marker,
  or carries the wrong version is *evicted* (deleted) and reported as a
  miss — a corrupted or stale cache can cost a recompute, never an error
  or a wrong artifact.
* **Version-stamped.**  The store directory records a version string
  combining the cache format, the package's pipeline version and the
  running Python — any mismatch wipes the store on open.  Bump
  :data:`PIPELINE_CACHE_VERSION` whenever fingerprints, artifacts or the
  pickle layout change meaning.
* **Crash- and concurrency-safe writes.**  Entries are written to a
  temporary file and atomically renamed into place, so readers (including
  parallel workers sharing one store) see either nothing or a complete
  entry.
* **Content-addressed keys.**  Callers address entries by a stable digest
  of (namespace, stage, key); the digest helper accepts the stage caches'
  structured keys (text, enums, frozen AST/Logic-Tree nodes, tuples).
* **Degrade, never die.**  A cache root that cannot be created, stamped,
  or written (read-only filesystem, permission change, disk full) flips
  the store into *degraded* memory-only mode: every ``get`` is a miss,
  every ``put`` a no-op, and ``stats.disk_degraded`` counts the flip so
  operators see the cache silently went away.  Compilation never fails
  because its cache did.

Fault points (see :mod:`repro.faults`): ``diskcache.read`` fires before an
entry file is read (IO errors / latency), ``diskcache.read.bytes``
transforms the raw blob (torn/corrupt reads), ``diskcache.write`` fires
inside the atomic write path.
"""

from __future__ import annotations

import errno
import hashlib
import os
import pickle
import sys
import tempfile
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Iterable

from ..faults import fault_point

#: Bump when cached products or key derivations change meaning.
#: 2: ResultSet became a slotted dataclass with a __reduce__ (PR 5) —
#: stores holding dict-state ResultSet pickles must be invalidated whole.
PIPELINE_CACHE_VERSION = 2

#: First element of every pickled entry (guards against foreign files).
_ENTRY_MAGIC = "repro-diskcache"

#: File name that records the store version stamp.
_VERSION_FILE = "VERSION"

#: Suffix of entry files.
_ENTRY_SUFFIX = ".pkl"

#: Write failures that condemn the whole store, not just one entry:
#: permission/ownership changes, read-only remounts, and a full disk.
_DEGRADE_ERRNOS = frozenset(
    {errno.EACCES, errno.EPERM, errno.EROFS, errno.ENOSPC}
)


def default_cache_version() -> str:
    """The store version stamp for this interpreter + package build.

    Python major.minor participates because entries are pickles: a store
    written by 3.12 must not be trusted blindly by 3.10.
    """
    return (
        f"format{PIPELINE_CACHE_VERSION}"
        f"-py{sys.version_info[0]}.{sys.version_info[1]}"
    )


def stable_key_digest(namespace: str, stage: str, key: Any) -> str:
    """Hex digest addressing ``key`` within ``namespace``/``stage``.

    The encoding must be deterministic across processes and runs: plain
    scalars encode by value, enums by class and member name, frozen
    dataclass nodes by their (deterministic) ``repr``.  Python's built-in
    ``hash`` is never used (it is salted per process).
    """
    digest = hashlib.sha256()
    prefix = namespace.encode("utf-8")
    digest.update(b"%d:" % len(prefix))
    digest.update(prefix)
    stage_bytes = stage.encode("utf-8")
    digest.update(b"%d:" % len(stage_bytes))
    digest.update(stage_bytes)
    _update_digest(digest, key)
    return digest.hexdigest()


def _update_digest(digest, key: Any) -> None:
    # Every variable-length atom is length-prefixed so element boundaries
    # cannot be forged from inside a value: without the prefix, the keys
    # ("a", "b") and ("a;s:b",) would collapse to one byte stream — and
    # stage keys embed user-controlled text (SQL string literals).
    if key is None:
        digest.update(b"n;")
    elif isinstance(key, str):
        encoded = key.encode("utf-8")
        digest.update(b"s%d:" % len(encoded))
        digest.update(encoded)
    elif isinstance(key, bool):
        digest.update(b"b1;" if key else b"b0;")
    elif isinstance(key, (int, float)):
        encoded = repr(key).encode("utf-8")
        digest.update(b"f%d:" % len(encoded))
        digest.update(encoded)
    elif isinstance(key, Enum):
        encoded = f"{type(key).__name__}.{key.name}".encode("utf-8")
        digest.update(b"e%d:" % len(encoded))
        digest.update(encoded)
    elif isinstance(key, tuple):
        digest.update(b"t%d(" % len(key))
        for element in key:
            _update_digest(digest, element)
        digest.update(b");")
    else:
        # Frozen AST / Logic-Tree nodes (and anything else with a
        # deterministic repr): the dataclass repr is recursive and total.
        encoded = repr(key).encode("utf-8")
        digest.update(b"r%d:" % len(encoded))
        digest.update(encoded)


@dataclass
class DiskCacheStats:
    """Counters for one :class:`DiskCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Total entries deleted for any reason; always equals
    #: ``corrupt_evictions + stale_evictions``.
    evictions: int = 0
    #: Entries that failed to unpickle, carried foreign content, or raised
    #: IO errors mid-read — the never-trust branch.
    corrupt_evictions: int = 0
    #: Whole-store wipes caused by a version-stamp mismatch.
    stale_evictions: int = 0
    write_errors: int = 0
    #: Times the store flipped into memory-only degraded mode.
    disk_degraded: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt_evictions": self.corrupt_evictions,
            "stale_evictions": self.stale_evictions,
            "write_errors": self.write_errors,
            "disk_degraded": self.disk_degraded,
        }


@dataclass
class DiskCache:
    """A directory of version-stamped, content-addressed pickled entries.

    Layout::

        root/
          VERSION            # version stamp; mismatch wipes the store
          <stage>/<digest[:2]>/<digest>.pkl

    ``stages`` restricts which pipeline stages are persisted (all known
    stages by default — see :data:`DEFAULT_DISK_STAGES`).
    """

    root: Path
    version: str = field(default_factory=default_cache_version)
    stages: frozenset[str] | None = None
    stats: DiskCacheStats = field(default_factory=DiskCacheStats)
    #: True once the store gave up on disk and serves memory-only misses.
    degraded: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.stages is not None:
            self.stages = frozenset(self.stages)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            # Unwritable or vanished parent: run memory-only rather than
            # fail whoever wanted a warm start.
            self._degrade()
            return
        self._check_version()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def persists(self, stage: str) -> bool:
        """Whether ``stage`` products go to (and come from) this store."""
        return self.stages is None or stage in self.stages

    def get(self, digest_key: str, stage: str) -> tuple[bool, Any]:
        """``(True, value)`` on a trusted hit, ``(False, None)`` otherwise.

        Anything unreadable — truncated pickle, foreign content, stale
        version — is evicted and counted, never raised.
        """
        if self.degraded:
            self.stats.misses += 1
            return False, None
        path = self._entry_path(stage, digest_key)
        try:
            fault_point("diskcache.read")
            blob = fault_point("diskcache.read.bytes", path.read_bytes())
            payload = pickle.loads(blob)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception:
            # IO error mid-read or torn/truncated pickle: the entry can no
            # longer be told apart from garbage — never trust, evict.
            self._evict(path)
            self.stats.misses += 1
            return False, None
        if (
            not isinstance(payload, tuple)
            or len(payload) != 3
            or payload[0] != _ENTRY_MAGIC
        ):
            self._evict(path)
            self.stats.misses += 1
            return False, None
        if payload[1] != self.version:
            # Readable but written under different semantics (another
            # process raced a version bump): stale, not corrupt.
            self._evict(path, stale=True)
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        return True, payload[2]

    def put(self, digest_key: str, stage: str, value: Any) -> bool:
        """Persist ``value``; atomic, best-effort (failures are counted).

        A write refused by the filesystem itself (permission denied,
        read-only mount, disk full) degrades the store to memory-only:
        the condition is not per-entry, so retrying every future write
        would just pay the syscall tax for nothing.
        """
        if self.degraded:
            return False
        path = self._entry_path(stage, digest_key)
        try:
            blob = pickle.dumps(
                (_ENTRY_MAGIC, self.version, value), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            # Unpicklable product (exotic schema object, open handle...):
            # skip persisting it rather than failing the compilation.
            self.stats.write_errors += 1
            return False
        try:
            fault_point("diskcache.write")
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, suffix=_ENTRY_SUFFIX + ".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception as error:
            self.stats.write_errors += 1
            if (
                isinstance(error, OSError)
                and error.errno in _DEGRADE_ERRNOS
            ):
                self._degrade()
            return False
        self.stats.writes += 1
        return True

    def clear(self) -> None:
        """Remove every entry (keeps the store and its version stamp)."""
        for stage_dir in self._stage_dirs():
            _remove_tree(stage_dir)

    def entry_count(self, stages: Iterable[str] | None = None) -> int:
        """Number of entries on disk (optionally for specific stages)."""
        wanted = set(stages) if stages is not None else None
        count = 0
        for stage_dir in self._stage_dirs():
            if wanted is not None and stage_dir.name not in wanted:
                continue
            count += sum(
                1 for path in stage_dir.rglob(f"*{_ENTRY_SUFFIX}") if path.is_file()
            )
        return count

    def sizes(self) -> dict[str, int]:
        """Entries per stage currently on disk."""
        return {
            stage_dir.name: sum(
                1 for path in stage_dir.rglob(f"*{_ENTRY_SUFFIX}") if path.is_file()
            )
            for stage_dir in self._stage_dirs()
        }

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _entry_path(self, stage: str, digest_key: str) -> Path:
        return self.root / stage / digest_key[:2] / f"{digest_key}{_ENTRY_SUFFIX}"

    def _stage_dirs(self) -> list[Path]:
        try:
            return [path for path in self.root.iterdir() if path.is_dir()]
        except OSError:
            return []

    def _check_version(self) -> None:
        version_file = self.root / _VERSION_FILE
        try:
            stamped = version_file.read_text(encoding="utf-8").strip()
        except OSError:
            stamped = None
        if stamped != self.version:
            # Unstamped, stale or foreign store: evict everything rather
            # than trust entries written under different semantics.
            if stamped is not None:
                self.stats.evictions += 1
                self.stats.stale_evictions += 1
            for stage_dir in self._stage_dirs():
                _remove_tree(stage_dir)
            try:
                version_file.write_text(self.version + "\n", encoding="utf-8")
            except OSError:
                # A store we cannot stamp is a store we can never trust
                # (the wipe above may not even have happened on a read-only
                # mount): go memory-only.
                self._degrade()

    def _evict(self, path: Path, *, stale: bool = False) -> None:
        self.stats.evictions += 1
        if stale:
            self.stats.stale_evictions += 1
        else:
            self.stats.corrupt_evictions += 1
        try:
            path.unlink()
        except OSError:
            pass

    def _degrade(self) -> None:
        if not self.degraded:
            self.degraded = True
            self.stats.disk_degraded += 1


def _remove_tree(root: Path) -> None:
    """Best-effort recursive removal (races with other processes are fine)."""
    try:
        for path in sorted(root.rglob("*"), reverse=True):
            try:
                if path.is_dir() and not path.is_symlink():
                    path.rmdir()
                else:
                    path.unlink()
            except OSError:
                pass
        root.rmdir()
    except OSError:
        pass


#: Stages persisted by default.  ``artifact`` alone covers whole-compile
#: warm starts; the individual stages additionally serve compilers with
#: different requested formats or partially overlapping corpora.
DEFAULT_DISK_STAGES = frozenset(
    {
        "artifact",
        "lex",
        "parse",
        "logic",
        "simplify",
        "fingerprint",
        "diagram",
        "layout",
        "render",
    }
)
