"""Staged diagram-compilation pipeline with per-stage caches and fingerprints.

The pipeline compiles SQL text to rendered diagrams through explicit stages

    lex → parse → logic → simplify → fingerprint → diagram → layout → render

each backed by a content-addressed cache (:mod:`repro.pipeline.stages`).  The
canonical fingerprint (:mod:`repro.pipeline.fingerprint`) hashes the
simplified Logic Tree modulo aliases and predicate order, so semantically
equivalent query variants (Fig. 24) dedupe to one cached diagram.  Batch
compilation over corpora — with cache statistics and an equivalence-class
report — lives in :mod:`repro.pipeline.batch`; see ``docs/pipeline.md`` for
the stage graph and cache-key definitions.
"""

from .batch import DiagramBatchCompiler, EquivalenceClass, compile_corpus
from .compiler import RENDERERS, CompiledDiagram, DiagramCompiler, compile_sql
from .diskcache import (
    DEFAULT_DISK_STAGES,
    PIPELINE_CACHE_VERSION,
    DiskCache,
    DiskCacheStats,
    default_cache_version,
    stable_key_digest,
)
from .fingerprint import (
    canonical_form,
    fingerprint_and_roles,
    fingerprint_logic_tree,
    fingerprint_sql,
)
from .stages import STAGE_NAMES, PipelineStats, StageCache, StageCounter

__all__ = [
    "CompiledDiagram",
    "DEFAULT_DISK_STAGES",
    "DiagramBatchCompiler",
    "DiagramCompiler",
    "DiskCache",
    "DiskCacheStats",
    "EquivalenceClass",
    "PIPELINE_CACHE_VERSION",
    "PipelineStats",
    "RENDERERS",
    "STAGE_NAMES",
    "StageCache",
    "StageCounter",
    "canonical_form",
    "compile_corpus",
    "compile_sql",
    "default_cache_version",
    "fingerprint_and_roles",
    "fingerprint_logic_tree",
    "fingerprint_sql",
]
