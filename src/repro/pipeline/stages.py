"""Stage registry and content-addressed caches for the diagram pipeline.

The compiler decomposes ``SQL text → rendered diagram`` into explicit stages

    lex → parse → logic → simplify → fingerprint → diagram → layout → render

each of which is individually cacheable: a stage's cache key is the content
of its input (token text, frozen AST/Logic Tree, canonical fingerprint), so
repeated or semantically equivalent inputs hit the cache no matter which
query of a corpus produced them first.  The same idea drives the relational
side's :class:`~repro.relational.batch.BatchExecutor`; this is its diagram
counterpart.

One extra pseudo-stage, ``artifact``, sits in front of the chain: it
memoizes the whole compilation keyed on the verbatim input (stripped SQL
text or frozen AST, plus the requested formats).  Verbatim repeats — the
overwhelmingly common case in workload-scale corpora — then cost one
dictionary lookup instead of eight cache probes over recursively hashed
trees; the per-stage caches earn their keep on inputs that are *new text
but equivalent structure* (whitespace variants, alias renamings, the
Fig. 24 trio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

from .diskcache import DiskCache, stable_key_digest

#: Stage names, in pipeline order (render appears once per output format).
STAGE_NAMES: tuple[str, ...] = (
    "artifact",
    "lex",
    "parse",
    "logic",
    "simplify",
    "fingerprint",
    "diagram",
    "layout",
    "render",
)


@dataclass
class StageCounter:
    """Hit/miss counters of one stage cache.

    ``disk_hits`` counts the subset of ``hits`` that were served from the
    persistent second-level store (:mod:`repro.pipeline.diskcache`) rather
    than from this process's memory.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class PipelineStats:
    """Cache effectiveness across all stages of one compiler."""

    queries: int = 0
    counters: dict[str, StageCounter] = field(
        default_factory=lambda: {name: StageCounter() for name in STAGE_NAMES}
    )
    #: Disk-store counters (hits, writes, corrupt/stale evictions,
    #: degradations) accumulated across this compiler and any merged
    #: workers; empty when no disk cache is bound.  Refreshed by
    #: :meth:`~repro.pipeline.compiler.DiagramCompiler.stats`.
    disk: dict[str, int] = field(default_factory=dict)

    def counter(self, stage: str) -> StageCounter:
        return self.counters[stage]

    @property
    def total_hits(self) -> int:
        return sum(counter.hits for counter in self.counters.values())

    @property
    def total_lookups(self) -> int:
        return sum(counter.lookups for counter in self.counters.values())

    @property
    def hit_rate(self) -> float:
        lookups = self.total_lookups
        return self.total_hits / lookups if lookups else 0.0

    def describe(self) -> str:
        parts = [f"{self.queries} queries"]
        for name in STAGE_NAMES:
            counter = self.counters[name]
            if counter.lookups:
                parts.append(f"{name} {counter.hits}/{counter.lookups} cached")
        parts.append(f"overall hit rate {self.hit_rate:.0%}")
        return ", ".join(parts)

    @property
    def total_disk_hits(self) -> int:
        return sum(counter.disk_hits for counter in self.counters.values())

    def merge(self, other: "PipelineStats") -> None:
        """Fold ``other``'s counters into this one (parallel-worker merge)."""
        self.queries += other.queries
        for name, counter in other.counters.items():
            mine = self.counters.setdefault(name, StageCounter())
            mine.hits += counter.hits
            mine.misses += counter.misses
            mine.disk_hits += counter.disk_hits
        for key, value in other.disk.items():
            self.disk[key] = self.disk.get(key, 0) + value

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly summary (used by ``repro bench-diagram --json``)."""
        payload: dict[str, Any] = {
            "queries": self.queries,
            "hit_rate": round(self.hit_rate, 4),
            "stages": {
                name: (
                    {"hits": counter.hits, "misses": counter.misses}
                    | (
                        {"disk_hits": counter.disk_hits}
                        if counter.disk_hits
                        else {}
                    )
                )
                for name, counter in self.counters.items()
                if counter.lookups
            },
        }
        if self.disk:
            payload["disk"] = dict(self.disk)
        return payload


class StageCache:
    """One content-addressed cache per stage, with shared counters.

    ``enabled=False`` turns every lookup into a miss without storing the
    result — that is how the benchmarks measure a truly cold pipeline while
    exercising identical code paths.

    ``disk`` plugs a persistent second level behind the in-memory dicts
    (see :mod:`repro.pipeline.diskcache`): memory miss → disk probe →
    compute + write-through.  ``disk_namespace`` isolates entries of
    compilers with different fixed configuration (schema, simplify flag,
    layout geometry) sharing one store.  A disabled cache never touches
    disk — cold means cold.
    """

    def __init__(
        self,
        stats: PipelineStats,
        enabled: bool = True,
        disk: "DiskCache | None" = None,
        disk_namespace: str = "",
    ) -> None:
        self._stats = stats
        # Direct reference: get_or_compute runs several times per query and
        # should not pay a method call + attribute hop to find its counter.
        self._counters = stats.counters
        self._enabled = enabled
        self._disk = disk
        self._namespace = disk_namespace
        self._caches: dict[str, dict[Hashable, Any]] = {
            name: {} for name in STAGE_NAMES
        }

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def disk(self) -> "DiskCache | None":
        return self._disk

    def get_or_compute(
        self, stage: str, key: Hashable, compute: Callable[..., Any], *args: Any
    ) -> Any:
        """The cached value for ``key``, else ``compute(*args)`` (stored).

        ``args`` are forwarded to ``compute`` so hot callers can pass plain
        functions instead of allocating a closure per stage per query.
        """
        counter = self._counters[stage]
        if not self._enabled:
            counter.misses += 1
            return compute(*args)
        cache = self._caches[stage]
        if key in cache:
            counter.hits += 1
            return cache[key]
        disk = self._disk
        if disk is not None and disk.persists(stage):
            digest = stable_key_digest(self._namespace, stage, key)
            found, value = disk.get(digest, stage)
            if found:
                counter.hits += 1
                counter.disk_hits += 1
                cache[key] = value
                return value
            counter.misses += 1
            value = compute(*args)
            cache[key] = value
            disk.put(digest, stage, value)
            return value
        counter.misses += 1
        value = compute(*args)
        cache[key] = value
        return value

    def sizes(self) -> dict[str, int]:
        """Entries currently held per stage (content-addressed footprint)."""
        return {name: len(cache) for name, cache in self._caches.items() if cache}

    def clear(self, stages: Iterable[str] | None = None) -> None:
        for name in stages if stages is not None else STAGE_NAMES:
            self._caches[name].clear()
