"""Corpus-scale diagram compilation: many queries, shared stage caches.

The diagram-side counterpart of :class:`repro.relational.batch.BatchExecutor`:
one :class:`DiagramBatchCompiler` keeps a single :class:`DiagramCompiler`
(and therefore one set of content-addressed stage caches) alive across a
whole corpus.  Workload-scale corpora repeat queries verbatim and contain
semantically equivalent variants, so most compilations short-circuit in the
front half (text/AST caches) or collapse onto one diagram via the canonical
fingerprint (Fig. 24 invariance).

Beyond the speedup, the batch compiler doubles as an analysis tool: it
records which source queries landed on which fingerprint, and
:meth:`DiagramBatchCompiler.equivalence_classes` reports the resulting
equivalence classes — the corpus-level view of "how many distinct diagrams
does this workload actually contain?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..catalog.schema import Schema
from ..render.layout import LayoutConfig
from ..sql.ast import SelectQuery
from ..sql.formatter import format_inline
from .compiler import CompiledDiagram, DiagramCompiler
from .stages import PipelineStats


@dataclass(frozen=True)
class EquivalenceClass:
    """All corpus queries that share one canonical fingerprint.

    ``count`` is the number of corpus *occurrences* (verbatim repeats
    included); ``queries`` holds the distinct spellings, first-seen first.
    """

    fingerprint: str
    count: int
    queries: tuple[str, ...]  # distinct source spellings, first = representative

    @property
    def representative(self) -> str:
        return self.queries[0]

    @property
    def distinct_spellings(self) -> int:
        return len(self.queries)


class DiagramBatchCompiler:
    """Compiles a whole corpus through one shared set of stage caches.

    >>> batch = DiagramBatchCompiler()
    >>> artifacts = batch.run(corpus, formats=("svg",))   # doctest: +SKIP
    >>> batch.stats().describe()                          # doctest: +SKIP
    '1200 queries: lex 1000/1200 cached, ..., overall hit rate 83%'
    """

    def __init__(
        self,
        schema: Schema | None = None,
        simplify: bool = True,
        layout_config: LayoutConfig | None = None,
        cache: bool = True,
    ) -> None:
        self._compiler = DiagramCompiler(
            schema=schema,
            simplify=simplify,
            layout_config=layout_config,
            cache=cache,
        )
        self._members: dict[str, list[str]] = {}
        self._occurrences: dict[str, int] = {}

    @property
    def compiler(self) -> DiagramCompiler:
        return self._compiler

    def compile(
        self,
        query: SelectQuery | str,
        formats: tuple[str, ...] = ("text",),
    ) -> CompiledDiagram:
        """Compile one query through the shared caches."""
        artifact = self._compiler.compile(query, formats=formats)
        spelling = (
            artifact.sql.strip() if artifact.sql else format_inline(artifact.query)
        )
        members = self._members.setdefault(artifact.fingerprint, [])
        if spelling not in members:
            members.append(spelling)
        self._occurrences[artifact.fingerprint] = (
            self._occurrences.get(artifact.fingerprint, 0) + 1
        )
        return artifact

    def run(
        self,
        corpus: Iterable[SelectQuery | str],
        formats: tuple[str, ...] = ("text",),
    ) -> list[CompiledDiagram]:
        """Compile a whole corpus, returning one artifact per query."""
        return [self.compile(query, formats=formats) for query in corpus]

    def iter_run(
        self,
        corpus: Iterable[SelectQuery | str],
        formats: tuple[str, ...] = ("text",),
    ) -> Iterator[tuple[SelectQuery | str, CompiledDiagram]]:
        """Lazily yield ``(query, artifact)`` pairs — streaming-friendly."""
        for query in corpus:
            yield query, self.compile(query, formats=formats)

    def stats(self) -> PipelineStats:
        """Cache counters accumulated so far."""
        return self._compiler.stats()

    def distinct_diagrams(self) -> int:
        """Number of distinct fingerprints (= compiled diagrams) seen."""
        return len(self._members)

    def equivalence_classes(self) -> tuple[EquivalenceClass, ...]:
        """Fingerprint classes, largest (most syntactic variants) first."""
        classes = [
            EquivalenceClass(
                fingerprint=fingerprint,
                count=self._occurrences[fingerprint],
                queries=tuple(members),
            )
            for fingerprint, members in self._members.items()
        ]
        classes.sort(key=lambda c: (-c.count, c.fingerprint))
        return tuple(classes)

    def report(self, max_classes: int = 10) -> str:
        """Readable equivalence-class report for CLI / logging output."""
        stats = self.stats()
        classes = self.equivalence_classes()
        lines = [
            f"{stats.queries} compilations, {len(classes)} distinct diagrams "
            f"(fingerprint dedup {1 - len(classes) / stats.queries:.0%})"
            if stats.queries
            else "no queries compiled"
        ]
        for cls in classes[:max_classes]:
            spellings = (
                f", {cls.distinct_spellings} spellings"
                if cls.distinct_spellings != cls.count
                else ""
            )
            lines.append(f"  {cls.fingerprint[:16]}  x{cls.count}{spellings}")
            for spelling in cls.queries[:3]:
                first_line = " ".join(spelling.split())
                if len(first_line) > 72:
                    first_line = first_line[:69] + "..."
                lines.append(f"      {first_line}")
        if len(classes) > max_classes:
            lines.append(f"  ... and {len(classes) - max_classes} more classes")
        return "\n".join(lines)


def compile_corpus(
    corpus: Sequence[SelectQuery | str],
    schema: Schema | None = None,
    simplify: bool = True,
    layout_config: LayoutConfig | None = None,
    formats: tuple[str, ...] = ("text",),
) -> list[CompiledDiagram]:
    """One-call batch compilation (see :class:`DiagramBatchCompiler`)."""
    batch = DiagramBatchCompiler(
        schema=schema, simplify=simplify, layout_config=layout_config
    )
    return batch.run(corpus, formats=formats)
