"""Corpus-scale diagram compilation: many queries, shared stage caches.

The diagram-side counterpart of :class:`repro.relational.batch.BatchExecutor`:
one :class:`DiagramBatchCompiler` keeps a single :class:`DiagramCompiler`
(and therefore one set of content-addressed stage caches) alive across a
whole corpus.  Workload-scale corpora repeat queries verbatim and contain
semantically equivalent variants, so most compilations short-circuit in the
front half (text/AST caches) or collapse onto one diagram via the canonical
fingerprint (Fig. 24 invariance).

Two scale axes beyond the single shared compiler:

* ``disk_cache=`` plugs the persistent store
  (:mod:`repro.pipeline.diskcache`) behind the stage caches, so a fresh
  process warm-starts from a previous run's products;
* ``run(..., workers=N)`` fans the corpus over a ``ProcessPoolExecutor``
  in contiguous chunks and merges the per-worker results
  *deterministically*: artifacts come back in corpus order, per-worker
  :class:`~repro.pipeline.stages.PipelineStats` are summed, equivalence
  classes are rebuilt in corpus order, and every artifact of one
  ``(fingerprint, roles)`` class is re-served the globally-first member's
  rendered outputs — exactly what the serial cache does — so a parallel
  run is byte-identical to a serial one.

Beyond the speedup, the batch compiler doubles as an analysis tool: it
records which source queries landed on which fingerprint, and
:meth:`DiagramBatchCompiler.equivalence_classes` reports the resulting
equivalence classes — the corpus-level view of "how many distinct diagrams
does this workload actually contain?".
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..catalog.schema import Schema
from ..render.layout import LayoutConfig
from ..sql.ast import SelectQuery
from ..sql.formatter import format_inline
from .compiler import CompiledDiagram, DiagramCompiler
from .diskcache import DiskCache
from .stages import PipelineStats


@dataclass(frozen=True)
class EquivalenceClass:
    """All corpus queries that share one canonical fingerprint.

    ``count`` is the number of corpus *occurrences* (verbatim repeats
    included); ``queries`` holds the distinct spellings, first-seen first.
    """

    fingerprint: str
    count: int
    queries: tuple[str, ...]  # distinct source spellings, first = representative

    @property
    def representative(self) -> str:
        return self.queries[0]

    @property
    def distinct_spellings(self) -> int:
        return len(self.queries)


class DiagramBatchCompiler:
    """Compiles a whole corpus through one shared set of stage caches.

    >>> batch = DiagramBatchCompiler()
    >>> artifacts = batch.run(corpus, formats=("svg",))   # doctest: +SKIP
    >>> batch.stats().describe()                          # doctest: +SKIP
    '1200 queries: lex 1000/1200 cached, ..., overall hit rate 83%'
    """

    def __init__(
        self,
        schema: Schema | None = None,
        simplify: bool = True,
        layout_config: LayoutConfig | None = None,
        cache: bool = True,
        disk_cache: DiskCache | str | Path | None = None,
    ) -> None:
        self._schema = schema
        self._simplify = simplify
        self._layout_config = layout_config
        self._cache_enabled = cache
        # Workers must reopen the *same* store: root alone is not enough —
        # a caller-supplied version stamp or stage restriction has to ship
        # too, or the first worker would wipe a custom-version store.
        self._disk_config: tuple[str, str, frozenset[str] | None] | None
        if isinstance(disk_cache, DiskCache):
            self._disk_config = (
                str(disk_cache.root),
                disk_cache.version,
                disk_cache.stages,
            )
        elif disk_cache is not None:
            opened = DiskCache(Path(disk_cache))
            self._disk_config = (str(opened.root), opened.version, opened.stages)
            disk_cache = opened
        else:
            self._disk_config = None
        self._compiler = DiagramCompiler(
            schema=schema,
            simplify=simplify,
            layout_config=layout_config,
            cache=cache,
            disk_cache=disk_cache,
        )
        # fingerprint → ordered set of distinct spellings (dict keys keep
        # first-seen order; membership is O(1), unlike the list scan this
        # replaced, which made corpus accounting O(n²) per class).
        self._members: dict[str, dict[str, None]] = {}
        self._occurrences: dict[str, int] = {}

    @property
    def compiler(self) -> DiagramCompiler:
        return self._compiler

    def compile(
        self,
        query: SelectQuery | str,
        formats: tuple[str, ...] = ("text",),
    ) -> CompiledDiagram:
        """Compile one query through the shared caches."""
        artifact = self._compiler.compile(query, formats=formats)
        spelling = (
            artifact.sql.strip() if artifact.sql else format_inline(artifact.query)
        )
        self._record(artifact.fingerprint, spelling)
        return artifact

    def _record(self, fingerprint: str, spelling: str) -> None:
        self._members.setdefault(fingerprint, {})[spelling] = None
        self._occurrences[fingerprint] = self._occurrences.get(fingerprint, 0) + 1

    def run(
        self,
        corpus: Iterable[SelectQuery | str],
        formats: tuple[str, ...] = ("text",),
        workers: int | None = None,
    ) -> list[CompiledDiagram]:
        """Compile a whole corpus, returning one artifact per query.

        ``workers=N`` (N ≥ 2) compiles contiguous corpus chunks in N
        processes and merges the results deterministically; the output is
        byte-identical to a serial run (same fingerprints, same rendered
        outputs, same equivalence classes).  Worker processes share this
        batch's persistent disk cache when one is configured.
        """
        if workers is not None and workers > 1:
            return self._run_parallel(list(corpus), formats, workers)
        return [self.compile(query, formats=formats) for query in corpus]

    def iter_run(
        self,
        corpus: Iterable[SelectQuery | str],
        formats: tuple[str, ...] = ("text",),
    ) -> Iterator[tuple[SelectQuery | str, CompiledDiagram]]:
        """Lazily yield ``(query, artifact)`` pairs — streaming-friendly."""
        for query in corpus:
            yield query, self.compile(query, formats=formats)

    # ------------------------------------------------------------------ #
    # process-parallel execution
    # ------------------------------------------------------------------ #

    def _run_parallel(
        self,
        corpus: list[SelectQuery | str],
        formats: tuple[str, ...],
        workers: int,
    ) -> list[CompiledDiagram]:
        if not corpus:
            return []
        workers = min(workers, len(corpus))
        chunk_size = -(-len(corpus) // workers)  # ceil division
        chunks = [
            corpus[start : start + chunk_size]
            for start in range(0, len(corpus), chunk_size)
        ]
        payloads = [
            (
                chunk,
                self._schema,
                self._simplify,
                self._layout_config,
                self._cache_enabled,
                self._disk_config,
                formats,
            )
            for chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            results = list(pool.map(_compile_chunk, payloads))
        return self._merge_parallel_results(results, formats)

    def _merge_parallel_results(
        self,
        results: list[tuple[list[CompiledDiagram], PipelineStats]],
        formats: tuple[str, ...],
    ) -> list[CompiledDiagram]:
        """Deterministic merge: corpus order, first-member dedup, summed stats.

        The serial stage caches serve every later member of a
        ``(fingerprint, roles)`` class the representative's diagram, layout
        and rendered outputs.  A worker only sees its own chunk, so a class
        spanning chunks would otherwise render per-worker representatives;
        re-serving the globally-first member's products here restores exact
        serial behavior (byte-identical outputs).
        """
        merged: list[CompiledDiagram] = []
        first_by_class: dict[tuple, CompiledDiagram] = {}
        for artifacts, stats in results:
            self._compiler.stats().merge(stats)
            for artifact in artifacts:
                key = (artifact.fingerprint, artifact.roles)
                first = first_by_class.get(key)
                if first is None:
                    first_by_class[key] = artifact
                elif artifact is not first:
                    # Same-chunk verbatim repeats arrive as the identical
                    # object; anything else came from another worker's
                    # caches and gets the global representative's products.
                    artifact = replace(
                        artifact,
                        diagram=first.diagram,
                        outputs=first.outputs,
                        _layout=first._layout,
                    )
                spelling = (
                    artifact.sql.strip()
                    if artifact.sql
                    else format_inline(artifact.query)
                )
                self._record(artifact.fingerprint, spelling)
                merged.append(artifact)
        return merged

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def stats(self) -> PipelineStats:
        """Cache counters accumulated so far.

        After a ``workers=N`` run these are the *summed worker* counters
        (every worker cold-starts its own in-memory caches, so parallel
        hit rates are lower than a serial run's even though the merged
        artifacts are identical).
        """
        return self._compiler.stats()

    def distinct_diagrams(self) -> int:
        """Number of distinct fingerprints (= compiled diagrams) seen."""
        return len(self._members)

    def equivalence_classes(self) -> tuple[EquivalenceClass, ...]:
        """Fingerprint classes, largest (most syntactic variants) first."""
        classes = [
            EquivalenceClass(
                fingerprint=fingerprint,
                count=self._occurrences[fingerprint],
                queries=tuple(members),
            )
            for fingerprint, members in self._members.items()
        ]
        classes.sort(key=lambda c: (-c.count, c.fingerprint))
        return tuple(classes)

    def report(self, max_classes: int = 10) -> str:
        """Readable equivalence-class report for CLI / logging output."""
        stats = self.stats()
        classes = self.equivalence_classes()
        lines = [
            f"{stats.queries} compilations, {len(classes)} distinct diagrams "
            f"(fingerprint dedup {1 - len(classes) / stats.queries:.0%})"
            if stats.queries
            else "no queries compiled"
        ]
        for cls in classes[:max_classes]:
            spellings = (
                f", {cls.distinct_spellings} spellings"
                if cls.distinct_spellings != cls.count
                else ""
            )
            lines.append(f"  {cls.fingerprint[:16]}  x{cls.count}{spellings}")
            for spelling in cls.queries[:3]:
                first_line = " ".join(spelling.split())
                if len(first_line) > 72:
                    first_line = first_line[:69] + "..."
                lines.append(f"      {first_line}")
        if len(classes) > max_classes:
            lines.append(f"  ... and {len(classes) - max_classes} more classes")
        return "\n".join(lines)


def _compile_chunk(
    payload: tuple,
) -> tuple[list[CompiledDiagram], PipelineStats]:
    """Worker entry point: compile one contiguous corpus chunk.

    Runs in a separate process; builds its own compiler (sharing only the
    on-disk cache, whose writes are atomic) and ships the artifacts and
    stats back via pickle.
    """
    chunk, schema, simplify, layout_config, cache, disk_config, formats = payload
    disk_cache = None
    if disk_config is not None:
        root, version, stages = disk_config
        disk_cache = DiskCache(Path(root), version=version, stages=stages)
    compiler = DiagramCompiler(
        schema=schema,
        simplify=simplify,
        layout_config=layout_config,
        cache=cache,
        disk_cache=disk_cache,
    )
    artifacts = [compiler.compile(query, formats=formats) for query in chunk]
    return artifacts, compiler.stats()


def compile_corpus(
    corpus: Sequence[SelectQuery | str],
    schema: Schema | None = None,
    simplify: bool = True,
    layout_config: LayoutConfig | None = None,
    formats: tuple[str, ...] = ("text",),
    workers: int | None = None,
    disk_cache: DiskCache | str | Path | None = None,
) -> list[CompiledDiagram]:
    """One-call batch compilation (see :class:`DiagramBatchCompiler`)."""
    batch = DiagramBatchCompiler(
        schema=schema,
        simplify=simplify,
        layout_config=layout_config,
        disk_cache=disk_cache,
    )
    return batch.run(corpus, formats=formats, workers=workers)
