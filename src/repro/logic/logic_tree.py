"""The Logic Tree (LT) representation of a query (Section 4.7, Fig. 5).

A Logic Tree is a rooted tree in which every node represents one query
block.  Each node carries:

* ``tables`` — the table aliases defined in the block's FROM clause;
* ``predicates`` — the conjunction of comparison predicates of the block
  (subquery predicates become child nodes);
* ``quantifier`` — ∃, ∄ or ∀ (the root carries no quantifier);
* ``children`` — the directly nested query blocks.

The root additionally records the SELECT list (and the optional GROUP BY of
the appendix extension).  The LT is equivalent to the tuple relational
calculus representation of the query but makes the nesting scopes explicit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from ..sql.ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    FrozenNode,
    OrderItem,
    TableRef,
)
from ..sql.ast import _hash_field


class Quantifier(enum.Enum):
    """Logical quantifier applied to a query block."""

    EXISTS = "∃"
    NOT_EXISTS = "∄"
    FOR_ALL = "∀"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class LogicTreeNode(FrozenNode):
    """One query block of the Logic Tree.

    Like the AST nodes, Logic Tree nodes are slotted with a lazily cached
    hash: the simplify and fingerprint stage caches key directly on (trees
    of) these nodes, and traversal helpers are stack-based rather than
    recursive — the cold compile path walks every tree several times.
    """

    tables: tuple[TableRef, ...]
    predicates: tuple[Comparison, ...] = ()
    quantifier: Quantifier | None = None
    children: tuple["LogicTreeNode", ...] = ()
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__


    # ------------------------------------------------------------------ #
    # structural helpers
    # ------------------------------------------------------------------ #

    def local_aliases(self) -> frozenset[str]:
        """Aliases (lower-cased) introduced by this node's FROM clause."""
        return frozenset(table.effective_alias.lower() for table in self.tables)

    def iter_nodes(self) -> Iterator["LogicTreeNode"]:
        """Yield this node and all descendants in pre-order (stack-based)."""
        stack: list[LogicTreeNode] = [self]
        pop = stack.pop
        while stack:
            node = pop()
            yield node
            if node.children:
                stack.extend(reversed(node.children))

    def iter_with_depth(self, depth: int = 0) -> Iterator[tuple["LogicTreeNode", int]]:
        """Yield (node, nesting depth) pairs in pre-order (stack-based)."""
        stack: list[tuple[LogicTreeNode, int]] = [(self, depth)]
        pop = stack.pop
        while stack:
            node, level = pop()
            yield node, level
            if node.children:
                stack.extend((child, level + 1) for child in reversed(node.children))

    def depth(self) -> int:
        """Maximum nesting depth below (and including) this node."""
        deepest = 0
        for _node, level in self.iter_with_depth():
            if level > deepest:
                deepest = level
        return deepest

    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def with_quantifier(self, quantifier: Quantifier | None) -> "LogicTreeNode":
        return LogicTreeNode(self.tables, self.predicates, quantifier, self.children)

    def with_children(self, children: tuple["LogicTreeNode", ...]) -> "LogicTreeNode":
        return LogicTreeNode(self.tables, self.predicates, self.quantifier, children)

    def describe(self) -> str:
        """Compact single-node description used in debugging and tests."""
        tables = ", ".join(str(table) for table in self.tables)
        predicates = ", ".join(str(p) for p in self.predicates)
        quantifier = str(self.quantifier) if self.quantifier else "root"
        return f"[{quantifier}] T:{{{tables}}} P:{{{predicates}}}"


@dataclass(frozen=True, slots=True)
class LogicTree(FrozenNode):
    """A complete Logic Tree: the root block plus its SELECT/GROUP BY lists.

    The ranked-access extension adds the root block's output modifiers:
    ``distinct`` (SELECT DISTINCT), ``order_by`` / ``limit`` / ``offset``
    (ORDER BY ... LIMIT k OFFSET m).  They are properties of the whole
    query's output, so they live here rather than on any tree node.
    """

    root: LogicTreeNode
    select_items: tuple[ColumnRef | AggregateCall, ...]
    group_by: tuple[ColumnRef, ...] = field(default=())
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0
    _hash: int | None = _hash_field()
    __hash__ = FrozenNode.__hash__

    def with_root(self, root: LogicTreeNode) -> "LogicTree":
        """Rebuild the tree around a new root, keeping every output modifier.

        Tree-rewriting passes (alias renaming, ∃-flattening, ∄∄ → ∀∃) must
        use this instead of positional construction so ORDER BY / LIMIT /
        DISTINCT survive the rewrite.
        """
        return LogicTree(
            root,
            self.select_items,
            self.group_by,
            self.distinct,
            self.order_by,
            self.limit,
            self.offset,
        )

    def iter_nodes(self) -> Iterator[LogicTreeNode]:
        return self.root.iter_nodes()

    def iter_with_depth(self) -> Iterator[tuple[LogicTreeNode, int]]:
        return self.root.iter_with_depth(0)

    def depth(self) -> int:
        """Maximum nesting depth of the tree (root = 0)."""
        return self.root.depth()

    def node_count(self) -> int:
        return self.root.node_count()

    def table_count(self) -> int:
        return sum(len(node.tables) for node in self.iter_nodes())

    def alias_map(self) -> dict[str, str]:
        """Map of alias (lower-cased) -> table name across the whole tree."""
        mapping: dict[str, str] = {}
        for node in self.iter_nodes():
            for table in node.tables:
                mapping[table.effective_alias.lower()] = table.name
        return mapping

    def node_of_alias(self, alias: str) -> LogicTreeNode:
        """Return the node whose FROM clause defines ``alias``."""
        lowered = alias.lower()
        for node in self.iter_nodes():
            if lowered in node.local_aliases():
                return node
        raise KeyError(f"alias {alias!r} is not defined anywhere in the tree")

    def depth_of_alias(self, alias: str) -> int:
        """Nesting depth of the block that defines ``alias``."""
        lowered = alias.lower()
        for node, depth in self.iter_with_depth():
            if lowered in node.local_aliases():
                return depth
        raise KeyError(f"alias {alias!r} is not defined anywhere in the tree")

    def parent_of(self, node: LogicTreeNode) -> LogicTreeNode | None:
        """Return the parent of ``node`` (None for the root)."""
        if node is self.root:
            return None
        for candidate in self.iter_nodes():
            if any(child is node for child in candidate.children):
                return candidate
        raise KeyError("node does not belong to this tree")

    def describe(self) -> str:
        """Readable multi-line description, mirroring Fig. 5 of the paper."""
        lines: list[str] = []
        select = ", ".join(str(item) for item in self.select_items)
        lines.append(f"SELECT{' DISTINCT' if self.distinct else ''}: {select}")
        if self.group_by:
            grouped = ", ".join(str(column) for column in self.group_by)
            lines.append(f"GROUP BY: {grouped}")
        if self.order_by:
            ordered = ", ".join(str(item) for item in self.order_by)
            lines.append(f"ORDER BY: {ordered}")
        if self.limit is not None:
            suffix = f" OFFSET {self.offset}" if self.offset else ""
            lines.append(f"LIMIT: {self.limit}{suffix}")
        for node, depth in self.iter_with_depth():
            lines.append("  " * depth + node.describe())
        return "\n".join(lines)
