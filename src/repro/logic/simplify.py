"""Logic simplification: ∄∄ → ∀∃ (Section 4.7, "Logic Simplifications").

SQL expresses universal quantification through double negation
(``NOT EXISTS ... NOT EXISTS``).  The Logic Tree makes it possible to undo
that encoding: if a node ψ has quantifier ∄ and exactly one child ψ′ that is
also ∄, then by De Morgan's law

    ¬∃S.(p₁ ∧ … ∧ p_k ∧ ¬∃T.(q₁ ∧ … ∧ q_ℓ))
  ≡ ∀S.((p₁ ∧ … ∧ p_k) → ∃T.(q₁ ∧ … ∧ q_ℓ))

so ψ can be rewritten to ∀ and ψ′ to ∃.  The pass applies the rewrite
top-down (outermost pair first), which turns e.g. the unique-set query of
Fig. 1 into the ∀ form shown in Fig. 10b / Fig. 12b, and Q_only of Fig. 3b
into the ∀ diagram of Fig. 2c.  In a chain of three or more ∄ nodes the
rewrites cannot all be applied simultaneously (rewriting a pair changes the
quantifiers the next pair would need); applying them outermost-first matches
the reading order the diagrams are optimised for.
"""

from __future__ import annotations

from dataclasses import replace

from .logic_tree import LogicTree, LogicTreeNode, Quantifier


def simplify_logic_tree(tree: LogicTree) -> LogicTree:
    """Return a new tree with the ∄∄ → ∀∃ rewrite applied top-down."""
    new_root = tree.root.with_children(
        tuple(_simplify_node(child) for child in tree.root.children)
    )
    return replace(tree, root=new_root)


def count_universal_nodes(tree: LogicTree) -> int:
    """Number of ∀ nodes in ``tree`` (useful to measure the simplification)."""
    return sum(1 for node in tree.iter_nodes() if node.quantifier is Quantifier.FOR_ALL)


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _simplify_node(node: LogicTreeNode) -> LogicTreeNode:
    if _rewrite_applicable(node):
        child = node.children[0]
        child = child.with_quantifier(Quantifier.EXISTS)
        node = replace(node, quantifier=Quantifier.FOR_ALL, children=(child,))
    children = tuple(_simplify_node(child) for child in node.children)
    return node.with_children(children)


def _rewrite_applicable(node: LogicTreeNode) -> bool:
    """True when the ∄∄ → ∀∃ rewrite applies at ``node``."""
    if node.quantifier is not Quantifier.NOT_EXISTS:
        return False
    if len(node.children) != 1:
        return False
    return node.children[0].quantifier is Quantifier.NOT_EXISTS
