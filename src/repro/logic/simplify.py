"""Logic simplification: ∄∄ → ∀∃ (Section 4.7, "Logic Simplifications").

SQL expresses universal quantification through double negation
(``NOT EXISTS ... NOT EXISTS``).  The Logic Tree makes it possible to undo
that encoding: if a node ψ has quantifier ∄ and exactly one child ψ′ that is
also ∄, then by De Morgan's law

    ¬∃S.(p₁ ∧ … ∧ p_k ∧ ¬∃T.(q₁ ∧ … ∧ q_ℓ))
  ≡ ∀S.((p₁ ∧ … ∧ p_k) → ∃T.(q₁ ∧ … ∧ q_ℓ))

so ψ can be rewritten to ∀ and ψ′ to ∃.  The pass applies the rewrite
top-down (outermost pair first), which turns e.g. the unique-set query of
Fig. 1 into the ∀ form shown in Fig. 10b / Fig. 12b, and Q_only of Fig. 3b
into the ∀ diagram of Fig. 2c.  In a chain of three or more ∄ nodes the
rewrites cannot all be applied simultaneously (rewriting a pair changes the
quantifiers the next pair would need); applying them outermost-first matches
the reading order the diagrams are optimised for.
"""

from __future__ import annotations

from .logic_tree import LogicTree, LogicTreeNode, Quantifier


def simplify_logic_tree(tree: LogicTree) -> LogicTree:
    """Return a new tree with the ∄∄ → ∀∃ rewrite applied top-down.

    Trees the rewrite does not touch — identical children after the pass —
    are returned unchanged (same object, no copy).
    """
    root = tree.root
    new_children = tuple(_simplify_node(child) for child in root.children)
    if new_children == root.children:
        return tree
    return tree.with_root(root.with_children(new_children))


def count_universal_nodes(tree: LogicTree) -> int:
    """Number of ∀ nodes in ``tree`` (useful to measure the simplification)."""
    return sum(1 for node in tree.iter_nodes() if node.quantifier is Quantifier.FOR_ALL)


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _simplify_node(node: LogicTreeNode) -> LogicTreeNode:
    """Apply the rewrite below ``node`` with an explicit two-phase stack.

    Phase ``_VISIT`` applies the (top-down, outermost-first) rewrite at the
    node and schedules its children; phase ``_BUILD`` pops the rebuilt
    children off the result stack and reassembles the node.  Equivalent to
    the natural recursion, without Python frames per tree level — and nodes
    whose subtree is untouched are returned as-is instead of copied.
    """
    work: list[tuple[bool, LogicTreeNode]] = [(False, node)]
    results: list[LogicTreeNode] = []
    while work:
        build, current = work.pop()
        if not build:
            if _rewrite_applicable(current):
                child = current.children[0].with_quantifier(Quantifier.EXISTS)
                current = LogicTreeNode(
                    current.tables, current.predicates, Quantifier.FOR_ALL, (child,)
                )
            work.append((True, current))
            for child in current.children:
                work.append((False, child))
        else:
            arity = len(current.children)
            if arity:
                # Children were pushed in order, so they complete in reverse.
                rebuilt = tuple(results[-arity:][::-1])
                del results[-arity:]
                if rebuilt != current.children:
                    current = current.with_children(rebuilt)
            results.append(current)
    return results[0]


def _rewrite_applicable(node: LogicTreeNode) -> bool:
    """True when the ∄∄ → ∀∃ rewrite applies at ``node``."""
    if node.quantifier is not Quantifier.NOT_EXISTS:
        return False
    if len(node.children) != 1:
        return False
    return node.children[0].quantifier is Quantifier.NOT_EXISTS
