"""SQL AST → Logic Tree translation (Section 4.7).

The translation removes the syntactic variety of SQL's subquery operators:
``[NOT] EXISTS``, ``[NOT] IN`` and ``op ANY/ALL`` all become child Logic Tree
nodes with an ∃ or ∄ quantifier plus an ordinary comparison predicate linking
the outer column to the subquery's select column.  This is exactly why
Fig. 24's three syntactic variants of "sailors who reserve only red boats"
yield the same Logic Tree and hence the same diagram.

Universal quantification never appears at this stage — SQL cannot express it
directly — it is introduced by :mod:`repro.logic.simplify`.
"""

from __future__ import annotations

from ..sql.ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Exists,
    InSubquery,
    NEGATED_OP,
    QuantifiedComparison,
    SelectQuery,
    Star,
)
from .errors import TranslationError
from .logic_tree import LogicTree, LogicTreeNode, Quantifier


def sql_to_logic_tree(query: SelectQuery) -> LogicTree:
    """Translate a parsed SQL query into its Logic Tree."""
    select_items = _root_select_items(query)
    comparisons, subqueries = _split_where(query)
    root = LogicTreeNode(
        tables=query.from_tables,
        predicates=comparisons,
        quantifier=None,
        children=tuple(_translate_subquery(p) for p in subqueries),
    )
    return LogicTree(
        root=root,
        select_items=select_items,
        group_by=query.group_by,
        distinct=query.distinct,
        order_by=query.order_by,
        limit=query.limit,
        offset=query.offset,
    )


def _split_where(query: SelectQuery) -> tuple[tuple[Comparison, ...], list]:
    """Partition the WHERE conjunction in one pass (it is walked twice else)."""
    comparisons: list[Comparison] = []
    subqueries: list = []
    for predicate in query.where:
        if isinstance(predicate, Comparison):
            comparisons.append(predicate)
        else:
            subqueries.append(predicate)
    return tuple(comparisons), subqueries


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _root_select_items(query: SelectQuery) -> tuple[ColumnRef | AggregateCall, ...]:
    items: list[ColumnRef | AggregateCall] = []
    for item in query.select_items:
        if isinstance(item, Star):
            raise TranslationError(
                "the root query block must select explicit attributes, not *"
            )
        items.append(item)
    return tuple(items)


def _translate_subquery(predicate) -> LogicTreeNode:
    if isinstance(predicate, Exists):
        quantifier = Quantifier.NOT_EXISTS if predicate.negated else Quantifier.EXISTS
        return _translate_block(predicate.query, quantifier, extra_predicates=())
    if isinstance(predicate, InSubquery):
        quantifier = Quantifier.NOT_EXISTS if predicate.negated else Quantifier.EXISTS
        link = Comparison(predicate.column, "=", _subquery_column(predicate.query))
        return _translate_block(predicate.query, quantifier, extra_predicates=(link,))
    if isinstance(predicate, QuantifiedComparison):
        return _translate_quantified(predicate)
    raise TranslationError(f"unexpected subquery predicate: {predicate!r}")


def _translate_quantified(predicate: QuantifiedComparison) -> LogicTreeNode:
    column = _subquery_column(predicate.query)
    if predicate.quantifier == "ANY":
        # c op ANY (Q)      ≡ ∃x∈Q. c op x
        # NOT c op ANY (Q)  ≡ ∄x∈Q. c op x
        quantifier = Quantifier.NOT_EXISTS if predicate.negated else Quantifier.EXISTS
        link = Comparison(predicate.column, predicate.op, column)
    else:  # ALL
        # c op ALL (Q)      ≡ ∀x∈Q. c op x      ≡ ∄x∈Q. ¬(c op x)
        # NOT c op ALL (Q)  ≡ ∃x∈Q. ¬(c op x)
        negated_op = NEGATED_OP[predicate.op]
        quantifier = Quantifier.EXISTS if predicate.negated else Quantifier.NOT_EXISTS
        link = Comparison(predicate.column, negated_op, column)
    return _translate_block(predicate.query, quantifier, extra_predicates=(link,))


def _translate_block(
    query: SelectQuery,
    quantifier: Quantifier,
    extra_predicates: tuple[Comparison, ...],
) -> LogicTreeNode:
    if query.group_by or query.has_aggregates:
        raise TranslationError("nested query blocks may not use GROUP BY or aggregates")
    if query.order_by or query.limit is not None or query.distinct:
        raise TranslationError(
            "nested query blocks may not use ORDER BY, LIMIT or DISTINCT"
        )
    comparisons, subqueries = _split_where(query)
    return LogicTreeNode(
        tables=query.from_tables,
        predicates=comparisons + extra_predicates,
        quantifier=quantifier,
        children=tuple(_translate_subquery(p) for p in subqueries),
    )


def _subquery_column(query: SelectQuery) -> ColumnRef:
    """The single column selected by an IN / ANY / ALL subquery."""
    if len(query.select_items) != 1:
        raise TranslationError(
            "IN / ANY / ALL subqueries must select exactly one column"
        )
    item = query.select_items[0]
    if not isinstance(item, ColumnRef):
        raise TranslationError(
            "IN / ANY / ALL subqueries must select a plain column, "
            f"got {item!r}"
        )
    if item.table is None:
        # Qualify the column against the (single) local table when possible,
        # so that later stages can attribute the predicate to a table.
        if len(query.from_tables) == 1:
            return ColumnRef(query.from_tables[0].effective_alias, item.column)
        raise TranslationError(
            "unqualified select column in a multi-table subquery is ambiguous"
        )
    return item
