"""Logic layer: Logic Trees, TRC rendering, simplification and evaluation."""

from .errors import DegenerateQueryError, EvaluationError, LogicError, TranslationError
from .evaluate import evaluate_logic_tree
from .logic_tree import LogicTree, LogicTreeNode, Quantifier
from .properties import (
    MAX_SUPPORTED_DEPTH,
    PropertyReport,
    check_properties,
    is_non_degenerate,
    validate_for_diagram,
)
from .simplify import count_universal_nodes, simplify_logic_tree
from .translate import sql_to_logic_tree
from .trc import TRCExpression, logic_tree_to_trc

__all__ = [
    "DegenerateQueryError",
    "EvaluationError",
    "LogicError",
    "LogicTree",
    "LogicTreeNode",
    "MAX_SUPPORTED_DEPTH",
    "PropertyReport",
    "Quantifier",
    "TRCExpression",
    "TranslationError",
    "check_properties",
    "count_universal_nodes",
    "evaluate_logic_tree",
    "is_non_degenerate",
    "logic_tree_to_trc",
    "simplify_logic_tree",
    "sql_to_logic_tree",
    "validate_for_diagram",
]
