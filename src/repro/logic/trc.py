"""Tuple relational calculus (TRC) rendering of a Logic Tree (Fig. 9).

The Logic Tree and the TRC expression of a query carry the same information;
the TRC form is simply a textual rendering with explicit quantifiers and
brackets.  :func:`logic_tree_to_trc` produces the expression in the notation
of Fig. 9, e.g. for the unique-set query::

    {Q | ∃L1 ∈ Likes [L1.drinker = Q.drinker ∧ ∄L2 ∈ Likes [ ... ]]}

The rendering is deterministic (tables and predicates in tree order) so it
can be compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.ast import AggregateCall, ColumnRef
from .logic_tree import LogicTree, LogicTreeNode, Quantifier

_QUANTIFIER_SYMBOL = {
    Quantifier.EXISTS: "∃",
    Quantifier.NOT_EXISTS: "∄",
    Quantifier.FOR_ALL: "∀",
    None: "∃",
}


@dataclass(frozen=True)
class TRCExpression:
    """A rendered TRC expression plus a few structural counts."""

    text: str
    quantifier_count: int
    predicate_count: int

    def __str__(self) -> str:
        return self.text


def logic_tree_to_trc(tree: LogicTree, result_variable: str = "Q") -> TRCExpression:
    """Render ``tree`` as a TRC expression in the notation of Fig. 9."""
    head = _render_head(tree, result_variable)
    body = _render_node(tree.root, tree, result_variable)
    text = f"{{{head} | {body}}}"
    quantifier_count = tree.node_count()
    predicate_count = sum(len(node.predicates) for node in tree.iter_nodes())
    # The head projection adds one equality per selected attribute.
    predicate_count += len(tree.select_items)
    return TRCExpression(
        text=text,
        quantifier_count=quantifier_count,
        predicate_count=predicate_count,
    )


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _render_head(tree: LogicTree, result_variable: str) -> str:
    if not tree.select_items:
        return result_variable
    parts = []
    for item in tree.select_items:
        if isinstance(item, AggregateCall):
            parts.append(str(item))
        else:
            parts.append(str(item))
    return ", ".join(parts) if len(parts) > 1 else parts[0]


def _render_node(node: LogicTreeNode, tree: LogicTree, result_variable: str) -> str:
    """Render the root node: existential quantifiers over its tables."""
    conjuncts = [str(predicate) for predicate in node.predicates]
    conjuncts.extend(_render_child(child) for child in node.children)
    body = " ∧ ".join(conjuncts) if conjuncts else "true"
    rendered = body
    # Root tables are existentially quantified, innermost first.
    for table in reversed(node.tables):
        alias = table.effective_alias
        rendered = f"∃{alias} ∈ {table.name} [{rendered}]"
    return rendered


def _render_child(node: LogicTreeNode) -> str:
    conjuncts = [str(predicate) for predicate in node.predicates]
    conjuncts.extend(_render_child(child) for child in node.children)
    body = " ∧ ".join(conjuncts) if conjuncts else "true"
    symbol = _QUANTIFIER_SYMBOL[node.quantifier]
    rendered = body
    tables = list(node.tables)
    if not tables:
        return rendered
    if node.quantifier is Quantifier.FOR_ALL:
        # A ∀ block quantifies every one of its tables universally
        # (it arose from ¬∃ over the combination of those tables).
        for table in reversed(tables):
            alias = table.effective_alias
            rendered = f"∀{alias} ∈ {table.name} [{rendered}]"
        return rendered
    # For ∃/∄ blocks the block quantifier applies to the first table;
    # additional tables of the same block are existentially quantified inside
    # it (¬∃ over a combination ≡ ∄ first ∃ rest).
    for table in reversed(tables[1:]):
        alias = table.effective_alias
        rendered = f"∃{alias} ∈ {table.name} [{rendered}]"
    first = tables[0]
    rendered = f"{symbol}{first.effective_alias} ∈ {first.name} [{rendered}]"
    return rendered
