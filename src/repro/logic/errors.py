"""Exception types for the logic layer."""

from __future__ import annotations


class LogicError(Exception):
    """Base class for logic-layer errors."""


class TranslationError(LogicError):
    """The SQL query cannot be translated into a Logic Tree."""


class DegenerateQueryError(LogicError):
    """The query violates a non-degeneracy property (Section 5.1)."""


class EvaluationError(LogicError):
    """The Logic Tree could not be evaluated over the given database."""
