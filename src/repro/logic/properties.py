"""Non-degeneracy properties of SQL queries (Section 5.1).

Proposition 5.1 (unambiguity) only holds for *valid* diagrams, i.e. diagrams
generated from non-degenerate queries of nesting depth at most three.  This
module checks the two non-degeneracy properties on a Logic Tree:

* **Property 5.1 (Local attributes)** — every predicate in a query block
  references at least one attribute of a table defined in that same block.
  A violating predicate could be pulled up to an ancestor block and actually
  encodes a disjunction, which is outside the supported fragment.
* **Property 5.2 (Connected subqueries)** — every nested query block either
  has a predicate referencing an attribute of its parent block, or each of
  its directly nested blocks references both it and its parent.

`validate_for_diagram` combines both checks with the depth ≤ 3 restriction
used by the unambiguity proof.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.ast import ColumnRef, Comparison
from .errors import DegenerateQueryError
from .logic_tree import LogicTree, LogicTreeNode

#: Maximum nesting depth covered by the unambiguity proof (Section 5.2).
MAX_SUPPORTED_DEPTH = 3


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of the non-degeneracy checks."""

    local_attributes: bool
    connected_subqueries: bool
    depth_ok: bool
    violations: tuple[str, ...]

    @property
    def is_valid(self) -> bool:
        return self.local_attributes and self.connected_subqueries and self.depth_ok


def check_properties(tree: LogicTree) -> PropertyReport:
    """Check Properties 5.1 and 5.2 plus the depth restriction on ``tree``."""
    violations: list[str] = []
    local_ok = _check_local_attributes(tree, violations)
    connected_ok = _check_connected_subqueries(tree, violations)
    depth_ok = tree.depth() <= MAX_SUPPORTED_DEPTH
    if not depth_ok:
        violations.append(
            f"nesting depth {tree.depth()} exceeds the supported maximum of "
            f"{MAX_SUPPORTED_DEPTH}"
        )
    return PropertyReport(
        local_attributes=local_ok,
        connected_subqueries=connected_ok,
        depth_ok=depth_ok,
        violations=tuple(violations),
    )


def validate_for_diagram(tree: LogicTree) -> None:
    """Raise :class:`DegenerateQueryError` if ``tree`` is not diagram-valid."""
    report = check_properties(tree)
    if not report.is_valid:
        raise DegenerateQueryError("; ".join(report.violations))


def is_non_degenerate(tree: LogicTree) -> bool:
    """True when both non-degeneracy properties hold (depth ignored)."""
    report = check_properties(tree)
    return report.local_attributes and report.connected_subqueries


# ---------------------------------------------------------------------- #
# Property 5.1 — local attributes
# ---------------------------------------------------------------------- #


def _check_local_attributes(tree: LogicTree, violations: list[str]) -> bool:
    ok = True
    for node in tree.iter_nodes():
        local = node.local_aliases()
        for predicate in node.predicates:
            if not _references_any(predicate, local):
                ok = False
                violations.append(
                    f"predicate '{predicate}' does not reference a local table "
                    f"of its query block (Property 5.1)"
                )
    return ok


def _references_any(predicate: Comparison, aliases: frozenset[str]) -> bool:
    for operand in (predicate.left, predicate.right):
        if isinstance(operand, ColumnRef) and operand.table is not None:
            if operand.table.lower() in aliases:
                return True
        elif isinstance(operand, ColumnRef) and operand.table is None:
            # Unqualified columns are conservatively treated as local: they
            # can only be resolved against visible tables, and the parser of
            # real study queries always qualifies cross-block references.
            return True
    return False


# ---------------------------------------------------------------------- #
# Property 5.2 — connected subqueries
# ---------------------------------------------------------------------- #


def _check_connected_subqueries(tree: LogicTree, violations: list[str]) -> bool:
    ok = True
    for node, _depth in tree.iter_with_depth():
        for child in node.children:
            if _connected(child, parent=node):
                continue
            # Fallback clause of Property 5.2: every directly nested block of
            # the child references both the child and the parent.
            grandchildren = child.children
            if grandchildren and all(
                _references_aliases(gc, child.local_aliases())
                and _references_aliases(gc, node.local_aliases())
                for gc in grandchildren
            ):
                continue
            ok = False
            violations.append(
                f"query block with tables {{{', '.join(str(t) for t in child.tables)}}} "
                f"is not connected to its parent (Property 5.2)"
            )
    return ok


def _connected(child: LogicTreeNode, parent: LogicTreeNode) -> bool:
    """True if ``child`` has a predicate referencing an attribute of ``parent``."""
    return _references_aliases(child, parent.local_aliases())


def _references_aliases(node: LogicTreeNode, aliases: frozenset[str]) -> bool:
    for predicate in node.predicates:
        for operand in (predicate.left, predicate.right):
            if (
                isinstance(operand, ColumnRef)
                and operand.table is not None
                and operand.table.lower() in aliases
            ):
                return True
    return False
