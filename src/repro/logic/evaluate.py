"""First-order-logic evaluation of a Logic Tree over a database.

This module gives the Logic Tree independent semantics so that the
translation (SQL → LT) and the simplification (∄∄ → ∀∃) can be verified
against ground truth: for any supported query and any database, executing the
SQL with :mod:`repro.relational.executor` and evaluating its Logic Tree here
must produce the same result set.

Node semantics (environment ``env`` binds the tables of all ancestors):

* ``∃``  node: ∃ rows for the node's tables such that all predicates hold and
  all children hold;
* ``∄``  node: no such rows exist;
* ``∀``  node: for all rows of the node's tables, *if* the predicates hold
  then all children hold (the implication form produced by the De Morgan
  rewrite in :mod:`repro.logic.simplify`);
* the root node: enumerate rows of its tables where predicates and children
  hold, and project the SELECT list (set semantics; the GROUP BY extension
  aggregates per group).
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from ..relational.aggregates import apply_aggregate
from ..relational.database import Database, Relation, Row
from ..relational.executor import ResultSet
from ..relational.values import Value, compare
from ..sql.ast import AggregateCall, ColumnRef, Comparison, Literal, Star
from .errors import EvaluationError
from .logic_tree import LogicTree, LogicTreeNode, Quantifier

Environment = dict[str, tuple[Relation, Row]]


def evaluate_logic_tree(tree: LogicTree, database: Database) -> ResultSet:
    """Evaluate ``tree`` over ``database`` and return its result set."""
    evaluator = _LogicTreeEvaluator(tree, database)
    return evaluator.run()


class _LogicTreeEvaluator:
    def __init__(self, tree: LogicTree, database: Database) -> None:
        self._tree = tree
        self._db = database

    # ------------------------------------------------------------------ #
    # root evaluation
    # ------------------------------------------------------------------ #

    def run(self) -> ResultSet:
        root = self._tree.root
        matches = [
            env
            for env in self._bindings(root, {})
            if self._predicates_hold(root, env) and self._children_hold(root, env)
        ]
        columns = tuple(str(item) for item in self._tree.select_items)
        if self._tree.group_by or any(
            isinstance(item, AggregateCall) for item in self._tree.select_items
        ):
            rows = self._grouped_rows(matches)
        else:
            rows = self._plain_rows(matches)
        return ResultSet(columns=columns, rows=tuple(rows))

    def _plain_rows(self, matches: list[Environment]) -> list[tuple[Value, ...]]:
        seen: set[tuple[Value, ...]] = set()
        rows: list[tuple[Value, ...]] = []
        for env in matches:
            row = tuple(
                self._resolve(item, env)
                for item in self._tree.select_items
                if isinstance(item, ColumnRef)
            )
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return rows

    def _grouped_rows(self, matches: list[Environment]) -> list[tuple[Value, ...]]:
        groups: dict[tuple[Value, ...], list[Environment]] = {}
        order: list[tuple[Value, ...]] = []
        for env in matches:
            key = tuple(self._resolve(column, env) for column in self._tree.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(env)
        rows: list[tuple[Value, ...]] = []
        for key in order:
            envs = groups[key]
            row: list[Value] = []
            for item in self._tree.select_items:
                if isinstance(item, ColumnRef):
                    row.append(self._resolve(item, envs[0]))
                elif isinstance(item, AggregateCall):
                    if isinstance(item.argument, Star):
                        row.append(apply_aggregate("COUNT", [1] * len(envs)))
                    else:
                        values = [self._resolve(item.argument, env) for env in envs]
                        row.append(apply_aggregate(item.func, values))
                else:
                    raise EvaluationError(f"unexpected select item {item!r}")
            rows.append(tuple(row))
        return rows

    # ------------------------------------------------------------------ #
    # node semantics
    # ------------------------------------------------------------------ #

    def _node_holds(self, node: LogicTreeNode, outer: Environment) -> bool:
        if node.quantifier is Quantifier.EXISTS:
            return any(
                self._predicates_hold(node, env) and self._children_hold(node, env)
                for env in self._bindings(node, outer)
            )
        if node.quantifier is Quantifier.NOT_EXISTS:
            return not any(
                self._predicates_hold(node, env) and self._children_hold(node, env)
                for env in self._bindings(node, outer)
            )
        if node.quantifier is Quantifier.FOR_ALL:
            return all(
                self._children_hold(node, env)
                for env in self._bindings(node, outer)
                if self._predicates_hold(node, env)
            )
        raise EvaluationError("only the root node may have no quantifier")

    def _children_hold(self, node: LogicTreeNode, env: Environment) -> bool:
        return all(self._node_holds(child, env) for child in node.children)

    def _predicates_hold(self, node: LogicTreeNode, env: Environment) -> bool:
        return all(self._comparison_holds(p, env) for p in node.predicates)

    def _comparison_holds(self, predicate: Comparison, env: Environment) -> bool:
        left = self._operand(predicate.left, env)
        right = self._operand(predicate.right, env)
        return compare(left, predicate.op, right)

    # ------------------------------------------------------------------ #
    # bindings and resolution
    # ------------------------------------------------------------------ #

    def _bindings(
        self, node: LogicTreeNode, outer: Environment
    ) -> Iterator[Environment]:
        relations = [self._db.relation(table.name) for table in node.tables]
        aliases = [table.effective_alias.lower() for table in node.tables]
        for combination in product(*(relation.rows for relation in relations)):
            env = dict(outer)
            for alias, relation, row in zip(aliases, relations, combination):
                env[alias] = (relation, row)
            yield env

    def _operand(self, operand: ColumnRef | Literal, env: Environment) -> Value:
        if isinstance(operand, Literal):
            return operand.value
        return self._resolve(operand, env)

    def _resolve(self, column: ColumnRef, env: Environment) -> Value:
        if column.table is not None:
            binding = env.get(column.table.lower())
            if binding is None:
                raise EvaluationError(f"unbound table alias {column.table!r}")
            relation, row = binding
            key = _match_column(relation, column.column)
            if key is None:
                raise EvaluationError(
                    f"table {column.table} has no column {column.column!r}"
                )
            return row[key]
        matches: list[Value] = []
        for relation, row in env.values():
            key = _match_column(relation, column.column)
            if key is not None:
                matches.append(row[key])
        if len(matches) != 1:
            raise EvaluationError(
                f"unqualified column {column.column!r} resolves to {len(matches)} tables"
            )
        return matches[0]


def _match_column(relation: Relation, column: str) -> str | None:
    lowered = column.lower()
    for key in relation.columns:
        if key.lower() == lowered:
            return key
    return None
