"""One-tailed Wilcoxon signed-rank test (Section 6.2).

The study uses one-tailed Wilcoxon signed-rank tests on within-participant
differences (QV − SQL and Both − SQL) because the timing data is not normally
distributed.  The implementation here follows the classic formulation
(Wilcoxon 1945) with the normal approximation including tie and zero
corrections; for small samples without ties it falls back to the exact
distribution.  Results are cross-checked against ``scipy.stats.wilcoxon`` in
the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Sequence


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a Wilcoxon signed-rank test."""

    statistic: float  # W+ : sum of ranks of positive differences
    p_value: float
    n_effective: int  # number of non-zero differences
    method: str  # "exact" or "normal"


def wilcoxon_signed_rank(
    differences: Sequence[float], alternative: str = "less"
) -> WilcoxonResult:
    """Test whether the paired differences are shifted away from zero.

    Parameters
    ----------
    differences:
        Within-subject differences (e.g. time_QV − time_SQL per participant).
    alternative:
        ``"less"`` tests whether differences tend to be negative (the study's
        directional hypotheses, e.g. QV faster than SQL), ``"greater"`` the
        opposite, ``"two-sided"`` any shift.
    """
    if alternative not in ("less", "greater", "two-sided"):
        raise ValueError(f"unknown alternative {alternative!r}")
    nonzero = [d for d in differences if d != 0.0]
    n = len(nonzero)
    if n == 0:
        return WilcoxonResult(statistic=0.0, p_value=1.0, n_effective=0, method="exact")

    ranks, has_ties = _rank_absolute(nonzero)
    w_plus = sum(rank for rank, d in zip(ranks, nonzero) if d > 0)
    w_minus = sum(rank for rank, d in zip(ranks, nonzero) if d < 0)

    if n <= 12 and not has_ties:
        p_value = _exact_p_value(nonzero, ranks, w_plus, alternative)
        return WilcoxonResult(
            statistic=w_plus, p_value=p_value, n_effective=n, method="exact"
        )

    p_value = _normal_p_value(nonzero, ranks, w_plus, alternative)
    return WilcoxonResult(
        statistic=w_plus, p_value=p_value, n_effective=n, method="normal"
    )


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _rank_absolute(values: Sequence[float]) -> tuple[list[float], bool]:
    """Midranks of the absolute values, plus a flag for ties."""
    indexed = sorted(range(len(values)), key=lambda i: abs(values[i]))
    ranks = [0.0] * len(values)
    has_ties = False
    position = 0
    while position < len(indexed):
        group_end = position
        while (
            group_end + 1 < len(indexed)
            and abs(values[indexed[group_end + 1]]) == abs(values[indexed[position]])
        ):
            group_end += 1
        if group_end > position:
            has_ties = True
        midrank = (position + group_end) / 2 + 1
        for i in range(position, group_end + 1):
            ranks[indexed[i]] = midrank
        position = group_end + 1
    return ranks, has_ties


def _normal_p_value(
    values: Sequence[float], ranks: Sequence[float], w_plus: float, alternative: str
) -> float:
    n = len(values)
    mean = n * (n + 1) / 4
    variance = n * (n + 1) * (2 * n + 1) / 24
    # Tie correction: subtract sum(t^3 - t)/48 over tie groups of |values|.
    tie_counts: dict[float, int] = {}
    for value in values:
        tie_counts[abs(value)] = tie_counts.get(abs(value), 0) + 1
    variance -= sum(t**3 - t for t in tie_counts.values()) / 48
    if variance <= 0:
        return 1.0
    # Continuity correction of 0.5 towards the mean.
    if alternative == "less":
        z = (w_plus - mean + 0.5) / math.sqrt(variance)
        return _phi(z)
    if alternative == "greater":
        z = (w_plus - mean - 0.5) / math.sqrt(variance)
        return 1.0 - _phi(z)
    z = (w_plus - mean) / math.sqrt(variance)
    correction = 0.5 * math.copysign(1, z)
    z = (w_plus - mean - correction) / math.sqrt(variance)
    return min(1.0, 2.0 * min(_phi(z), 1.0 - _phi(z)))


def _exact_p_value(
    values: Sequence[float], ranks: Sequence[float], w_plus: float, alternative: str
) -> float:
    n = len(values)
    total = 2**n
    int_ranks = [int(rank) for rank in ranks]

    counts: dict[int, int] = {0: 1}
    for rank in int_ranks:
        new_counts: dict[int, int] = {}
        for statistic, count in counts.items():
            new_counts[statistic] = new_counts.get(statistic, 0) + count
            new_counts[statistic + rank] = new_counts.get(statistic + rank, 0) + count
        counts = new_counts

    def probability_leq(threshold: float) -> float:
        return sum(count for stat, count in counts.items() if stat <= threshold) / total

    def probability_geq(threshold: float) -> float:
        return sum(count for stat, count in counts.items() if stat >= threshold) / total

    if alternative == "less":
        return probability_leq(w_plus)
    if alternative == "greater":
        return probability_geq(w_plus)
    return min(1.0, 2.0 * min(probability_leq(w_plus), probability_geq(w_plus)))


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
