"""Bias-corrected and accelerated (BCa) bootstrap confidence intervals.

Fig. 7 of the paper reports 95 % BCa confidence intervals (Efron 1987) for
the per-condition median time and mean error.  The implementation follows
the standard recipe: bootstrap resampling for the percentile distribution,
the normal-quantile bias correction ``z0`` from the proportion of bootstrap
replicates below the point estimate, and the jackknife-based acceleration
``a``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate plus its interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.estimate:.3g} [{self.low:.3g}, {self.high:.3g}]"


def bca_interval(
    data: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Compute a BCa bootstrap confidence interval for ``statistic(data)``."""
    values = np.asarray(list(data), dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    point = float(statistic(values))

    if values.size == 1:
        return ConfidenceInterval(point, point, point, confidence)

    replicates = np.empty(n_resamples)
    n = values.size
    for i in range(n_resamples):
        sample = values[rng.integers(0, n, size=n)]
        replicates[i] = statistic(sample)

    # Bias correction.
    proportion_below = np.mean(replicates < point) + 0.5 * np.mean(replicates == point)
    proportion_below = min(max(proportion_below, 1.0 / (2 * n_resamples)), 1 - 1.0 / (2 * n_resamples))
    z0 = _norm_ppf(proportion_below)

    # Acceleration from the jackknife.
    jackknife = np.empty(n)
    for i in range(n):
        jackknife[i] = statistic(np.delete(values, i))
    jack_mean = jackknife.mean()
    numerator = np.sum((jack_mean - jackknife) ** 3)
    denominator = 6.0 * (np.sum((jack_mean - jackknife) ** 2) ** 1.5)
    acceleration = numerator / denominator if denominator != 0 else 0.0

    alpha = 1.0 - confidence
    low_percentile = _adjusted_percentile(alpha / 2, z0, acceleration)
    high_percentile = _adjusted_percentile(1 - alpha / 2, z0, acceleration)
    low, high = np.percentile(replicates, [low_percentile * 100, high_percentile * 100])
    return ConfidenceInterval(
        estimate=point, low=float(low), high=float(high), confidence=confidence
    )


def percentile_interval(
    data: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Plain percentile bootstrap interval (used as a cross-check in tests)."""
    values = np.asarray(list(data), dtype=float)
    rng = np.random.default_rng(seed)
    point = float(statistic(values))
    n = values.size
    replicates = np.array(
        [statistic(values[rng.integers(0, n, size=n)]) for _ in range(n_resamples)]
    )
    alpha = 1.0 - confidence
    low, high = np.percentile(replicates, [alpha / 2 * 100, (1 - alpha / 2) * 100])
    return ConfidenceInterval(
        estimate=point, low=float(low), high=float(high), confidence=confidence
    )


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _adjusted_percentile(alpha: float, z0: float, acceleration: float) -> float:
    z_alpha = _norm_ppf(alpha)
    numerator = z0 + z_alpha
    adjusted = z0 + numerator / (1 - acceleration * numerator)
    return min(max(_norm_cdf(adjusted), 0.0), 1.0)


def _norm_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _norm_ppf(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )
