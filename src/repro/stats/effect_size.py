"""Effect-size summaries used by the estimation analysis (Section 6.2/6.3).

Following Cumming's "new statistics" and Dragicevic's guidance, the paper
reports differences of sample medians/means as effect sizes with interval
estimates rather than relying on dichotomous significance alone.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class EffectSummary:
    """A condition-vs-baseline effect: absolute and relative difference."""

    baseline: float
    treatment: float

    @property
    def difference(self) -> float:
        return self.treatment - self.baseline

    @property
    def percent_change(self) -> float:
        """Relative change of the treatment vs the baseline (e.g. -0.20)."""
        if self.baseline == 0:
            raise ValueError("baseline is zero; percent change undefined")
        return self.difference / self.baseline


def median_difference(baseline: Sequence[float], treatment: Sequence[float]) -> EffectSummary:
    """Difference of sample medians (used for the timing data)."""
    return EffectSummary(
        baseline=statistics.median(baseline), treatment=statistics.median(treatment)
    )


def mean_difference(baseline: Sequence[float], treatment: Sequence[float]) -> EffectSummary:
    """Difference of sample means (used for the error data)."""
    return EffectSummary(
        baseline=statistics.fmean(baseline), treatment=statistics.fmean(treatment)
    )


def cohens_d(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Cohen's d with a pooled standard deviation (two independent samples)."""
    a = list(sample_a)
    b = list(sample_b)
    if len(a) < 2 or len(b) < 2:
        raise ValueError("each sample needs at least two observations")
    mean_a, mean_b = statistics.fmean(a), statistics.fmean(b)
    var_a, var_b = statistics.variance(a), statistics.variance(b)
    pooled = ((len(a) - 1) * var_a + (len(b) - 1) * var_b) / (len(a) + len(b) - 2)
    if pooled == 0:
        raise ValueError("pooled variance is zero")
    return (mean_a - mean_b) / pooled**0.5


def fraction_negative(differences: Sequence[float]) -> float:
    """Fraction of within-subject differences below zero.

    Fig. 20/21 report the share of participants who were faster with QV than
    with SQL (i.e. whose QV − SQL time difference is negative).
    """
    values = list(differences)
    if not values:
        raise ValueError("empty difference list")
    return sum(1 for d in values if d < 0) / len(values)
