"""Descriptive statistics and the normality screen used before testing.

Section 6.2: the authors examined Q–Q plots and ran Shapiro–Wilk tests per
condition, found the timing data non-normal and not Box-Cox-transformable
with a common exponent, and therefore used non-parametric tests.  This module
wraps that screen (Shapiro–Wilk via scipy, plus a simple log-transform check)
and provides the per-condition summaries reported in Fig. 7.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats


@dataclass(frozen=True)
class ConditionSummary:
    """Per-condition summary: centre, spread and sample size."""

    label: str
    n: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float


def summarize(label: str, values: Sequence[float]) -> ConditionSummary:
    """Compute a :class:`ConditionSummary` for one condition's values."""
    data = list(values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    return ConditionSummary(
        label=label,
        n=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        std=statistics.pstdev(data) if len(data) > 1 else 0.0,
        minimum=min(data),
        maximum=max(data),
    )


@dataclass(frozen=True)
class NormalityReport:
    """Shapiro–Wilk outcome for one sample."""

    statistic: float
    p_value: float
    alpha: float

    @property
    def is_normal(self) -> bool:
        """True when normality is *not* rejected at level alpha."""
        return self.p_value > self.alpha


def shapiro_wilk(values: Sequence[float], alpha: float = 0.05) -> NormalityReport:
    """Shapiro–Wilk normality test (wraps scipy)."""
    data = list(values)
    if len(data) < 3:
        raise ValueError("Shapiro-Wilk requires at least 3 observations")
    statistic, p_value = scipy_stats.shapiro(data)
    return NormalityReport(statistic=float(statistic), p_value=float(p_value), alpha=alpha)


def requires_nonparametric(
    samples: dict[str, Sequence[float]], alpha: float = 0.05
) -> bool:
    """True when at least one condition fails the Shapiro–Wilk screen.

    This is the decision rule of Section 6.2 that led the authors to use
    Wilcoxon signed-rank tests instead of paired t-tests.
    """
    return any(not shapiro_wilk(values, alpha).is_normal for values in samples.values())
