"""Power analysis for the pilot-based sample-size estimate (Section 6.2).

The authors ran a 12-participant pilot, then estimated the sample size needed
for a one-tailed two-sample comparison of mean times with α = 5 % and power
1 − β = 90 %, arriving at n = 84 (rounded up to a multiple of six so the six
Latin-square sequences stay balanced).  This module reproduces that
computation for arbitrary pilot summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .bootstrap import _norm_ppf


@dataclass(frozen=True)
class PowerAnalysisResult:
    """Outcome of the sample-size computation."""

    effect_size: float  # Cohen's d from the pilot means and pooled SD
    n_per_group: int  # raw per-group requirement
    n_rounded: int  # rounded up to a multiple of `round_to`
    alpha: float
    power: float


def required_sample_size(
    mean_treatment: float,
    mean_control: float,
    pooled_sd: float,
    alpha: float = 0.05,
    power: float = 0.90,
    one_tailed: bool = True,
    round_to: int = 6,
) -> PowerAnalysisResult:
    """Sample size per group for a two-sample mean comparison.

    Uses the normal-approximation formula
    ``n = ((z_{1-α} + z_{1-β}) / d)²`` with Cohen's d computed from the pilot
    means and pooled standard deviation.
    """
    if pooled_sd <= 0:
        raise ValueError("pooled_sd must be positive")
    effect = abs(mean_treatment - mean_control) / pooled_sd
    if effect == 0:
        raise ValueError("zero effect size: sample size is unbounded")
    z_alpha = _norm_ppf(1 - alpha) if one_tailed else _norm_ppf(1 - alpha / 2)
    z_beta = _norm_ppf(power)
    n_raw = ((z_alpha + z_beta) / effect) ** 2
    n_per_group = math.ceil(n_raw)
    n_rounded = _round_up_to_multiple(n_per_group, round_to)
    return PowerAnalysisResult(
        effect_size=effect,
        n_per_group=n_per_group,
        n_rounded=n_rounded,
        alpha=alpha,
        power=power,
    )


def achieved_power(
    effect_size: float, n_per_group: int, alpha: float = 0.05, one_tailed: bool = True
) -> float:
    """Power achieved by ``n_per_group`` for a given standardized effect size."""
    if n_per_group <= 0:
        raise ValueError("n_per_group must be positive")
    z_alpha = _norm_ppf(1 - alpha) if one_tailed else _norm_ppf(1 - alpha / 2)
    z = effect_size * math.sqrt(n_per_group) - z_alpha
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _round_up_to_multiple(value: int, multiple: int) -> int:
    if multiple <= 0:
        return value
    remainder = value % multiple
    return value if remainder == 0 else value + multiple - remainder
