"""Statistics used by the user-study analysis (Section 6.2)."""

from .bootstrap import ConfidenceInterval, bca_interval, percentile_interval
from .descriptive import (
    ConditionSummary,
    NormalityReport,
    requires_nonparametric,
    shapiro_wilk,
    summarize,
)
from .effect_size import (
    EffectSummary,
    cohens_d,
    fraction_negative,
    mean_difference,
    median_difference,
)
from .multiple_testing import benjamini_hochberg, rejected
from .power import PowerAnalysisResult, achieved_power, required_sample_size
from .wilcoxon import WilcoxonResult, wilcoxon_signed_rank

__all__ = [
    "ConditionSummary",
    "ConfidenceInterval",
    "EffectSummary",
    "NormalityReport",
    "PowerAnalysisResult",
    "WilcoxonResult",
    "achieved_power",
    "bca_interval",
    "benjamini_hochberg",
    "cohens_d",
    "fraction_negative",
    "mean_difference",
    "median_difference",
    "percentile_interval",
    "rejected",
    "required_sample_size",
    "requires_nonparametric",
    "shapiro_wilk",
    "summarize",
    "wilcoxon_signed_rank",
]
