"""Benjamini–Hochberg false-discovery-rate correction (Section 6.2).

The study runs two hypothesis tests on the timing data and two on the error
data and adjusts all p-values with the Benjamini & Hochberg (1995) step-up
procedure.  :func:`benjamini_hochberg` returns the adjusted p-values
(monotone, capped at 1), matching the behaviour of
``statsmodels.stats.multitest.multipletests(..., method="fdr_bh")``.
"""

from __future__ import annotations

from typing import Sequence


def benjamini_hochberg(p_values: Sequence[float]) -> list[float]:
    """Return BH-adjusted p-values in the original order."""
    m = len(p_values)
    if m == 0:
        return []
    for p in p_values:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p-value {p} outside [0, 1]")
    order = sorted(range(m), key=lambda i: p_values[i])
    adjusted_sorted = [0.0] * m
    minimum = 1.0
    # Step-up: walk from the largest p-value down, enforcing monotonicity.
    for rank_index in range(m - 1, -1, -1):
        index = order[rank_index]
        raw = p_values[index] * m / (rank_index + 1)
        minimum = min(minimum, raw)
        adjusted_sorted[rank_index] = min(1.0, minimum)
    adjusted = [0.0] * m
    for rank_index, index in enumerate(order):
        adjusted[index] = adjusted_sorted[rank_index]
    return adjusted


def rejected(p_values: Sequence[float], alpha: float = 0.05) -> list[bool]:
    """Which hypotheses are rejected at FDR level ``alpha`` after adjustment."""
    return [p <= alpha for p in benjamini_hochberg(p_values)]
