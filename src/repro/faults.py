"""Deterministic, seeded fault injection for chaos and robustness testing.

Production query engines earn their robustness claims by *injecting* the
failures they promise to survive — torn cache files, dying executors,
flaky IO — under a deterministic seed, so a chaos run is exactly as
reproducible as a unit test.  This module is that discipline for the
repro codebase:

* **Fault points** are declared at call sites::

      from ..faults import fault_point
      fault_point("diskcache.read")              # may raise an injected fault
      blob = fault_point("diskcache.read.bytes", value=blob)  # may corrupt

  A fault point is *free when disabled*: with no plan installed the call
  is one module-global load and a ``None`` check (see
  ``benchmarks/test_bench_faults.py`` for the measured bound), and no
  fault point ever sits inside a per-row loop.

* **Fault plans** activate them.  A :class:`FaultPlan` is a seeded list
  of :class:`FaultRule` entries — each matches points by exact name or
  ``fnmatch`` glob and fires with a probability, on the nth matching
  call, and/or a bounded number of times.  Every random draw comes from
  a per-(rule, point) :class:`random.Random` stream seeded from the
  plan's seed and the point name, so two runs of the same workload under
  the same plan inject byte-identical faults.

* **Fault classes** mirror the real failure taxonomy:

  ==========  ========================================================
  class       effect at the fault point
  ==========  ========================================================
  ``io``      raises :class:`InjectedIOError` (an ``OSError``)
  ``corrupt`` ``bytes`` payloads are deterministically mangled and
              returned; other payloads raise :class:`InjectedCorruption`
  ``latency`` sleeps ``latency_s`` seconds, then returns the payload
  ``crash``   raises :class:`InjectedCrash` (a worker/executor dying)
  ==========  ========================================================

* **Trigger counters** record, per point, how many calls were seen and
  how many faults actually fired — chaos tests assert on them so a plan
  that silently stopped matching fails loudly instead of passing vacuously.

Plans install process-globally (:func:`install_plan` /
:func:`clear_plan` / the :func:`active_plan` context manager) and can be
configured from the environment: ``REPRO_FAULT_PLAN`` holds either inline
JSON or a path to a JSON file (see :meth:`FaultPlan.from_spec`), which is
how the CI chaos leg and the ``repro --fault-plan`` flags feed plans into
subprocesses.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from random import Random
from typing import Any, Iterator

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedCorruption",
    "InjectedCrash",
    "InjectedFault",
    "InjectedIOError",
    "active_plan",
    "clear_plan",
    "current_plan",
    "fault_point",
    "fault_stats",
    "install_plan",
    "install_plan_from_env",
    "suspended_plan",
]

#: Environment variable holding inline JSON or a path to a plan file.
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: The fault classes a rule may name.
FAULT_KINDS = ("io", "corrupt", "latency", "crash")


class InjectedFault(Exception):
    """Base class of every injected fault (lets layers catch "chaos only")."""


class InjectedIOError(InjectedFault, OSError):
    """An injected IO failure (read/write/stat on a fragile path)."""


class InjectedCorruption(InjectedFault):
    """An injected data-corruption fault on a non-bytes payload."""


class InjectedCrash(InjectedFault):
    """An injected crash of a worker component (executor thread, process)."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where* it applies and *when/what* it fires.

    ``point`` matches fault-point names exactly or as an ``fnmatch`` glob
    (``"diskcache.*"``).  A call that matches fires when all of the
    enabled triggers agree:

    * ``probability`` — chance per matching call (1.0 = always), drawn
      from the rule's deterministic per-point random stream;
    * ``nth`` — only the nth matching call fires (1-based);
    * ``times`` — at most this many fires, ever (``None`` = unlimited).
    """

    point: str
    fault: str = "io"
    probability: float = 1.0
    nth: int | None = None
    times: int | None = None
    latency_s: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault class {self.fault!r}; known: {FAULT_KINDS}"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"point": self.point, "fault": self.fault}
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.nth is not None:
            payload["nth"] = self.nth
        if self.times is not None:
            payload["times"] = self.times
        if self.latency_s:
            payload["latency_s"] = self.latency_s
        if self.message:
            payload["message"] = self.message
        return payload


@dataclass
class PointStats:
    """Trigger counters of one fault point under the active plan."""

    calls: int = 0
    fires: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"calls": self.calls, "fires": self.fires}


class _RuleState:
    """Mutable per-rule bookkeeping: match counts, fire counts, RNG streams."""

    __slots__ = ("rule", "fires", "matches", "_rngs", "_seed")

    def __init__(self, rule: FaultRule, seed: int) -> None:
        self.rule = rule
        self.fires = 0
        #: matching calls seen per point name (drives ``nth``).
        self.matches: dict[str, int] = {}
        self._rngs: dict[str, Random] = {}
        self._seed = seed

    def rng(self, point: str) -> Random:
        """The rule's deterministic random stream for ``point``.

        Seeded from (plan seed, rule spec, point name) — strings seed
        :class:`random.Random` deterministically across processes, unlike
        built-in ``hash``.
        """
        rng = self._rngs.get(point)
        if rng is None:
            rng = Random(f"{self._seed}|{self.rule.point}|{self.rule.fault}|{point}")
            self._rngs[point] = rng
        return rng


class FaultPlan:
    """A seeded set of :class:`FaultRule` entries plus its trigger counters.

    Plans are cheap, single-use objects: installing one resets nothing —
    its counters accumulate until the plan is discarded, which is what the
    chaos suites assert on.  All mutation is lock-protected because fault
    points fire from server worker threads as well as the main thread.
    """

    def __init__(self, rules: Iterator[FaultRule] | list[FaultRule], seed: int = 0) -> None:
        self.rules = tuple(rules)
        self.seed = seed
        self._states = [_RuleState(rule, seed) for rule in self.rules]
        self._points: dict[str, PointStats] = {}
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------- #

    @classmethod
    def from_spec(cls, spec: "str | Path | dict") -> "FaultPlan":
        """Build a plan from a dict, inline JSON text, or a JSON file path.

        The JSON shape::

            {"seed": 42,
             "rules": [{"point": "engine.sql.execute", "fault": "io",
                        "probability": 0.5, "nth": 3, "times": 2,
                        "latency_s": 0.01, "message": "..."}]}
        """
        if isinstance(spec, Path):
            spec = spec.read_text(encoding="utf-8")
        if isinstance(spec, str):
            text = spec.strip()
            if not text.startswith("{"):
                text = Path(text).read_text(encoding="utf-8")
            spec = json.loads(text)
        if not isinstance(spec, dict):
            raise ValueError(f"fault plan spec must be a JSON object, got {spec!r}")
        rules = [FaultRule(**rule) for rule in spec.get("rules", ())]
        return cls(rules, seed=int(spec.get("seed", 0)))

    def as_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.as_dict() for rule in self.rules]}

    # -- introspection --------------------------------------------------- #

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-point trigger counters: ``{point: {"calls": n, "fires": m}}``."""
        with self._lock:
            return {point: stats.as_dict() for point, stats in self._points.items()}

    def total_fires(self) -> int:
        with self._lock:
            return sum(stats.fires for stats in self._points.values())

    # -- activation ------------------------------------------------------ #

    def install(self) -> "FaultPlan":
        install_plan(self)
        return self

    @contextmanager
    def active(self) -> "Iterator[FaultPlan]":
        previous = current_plan()
        install_plan(self)
        try:
            yield self
        finally:
            install_plan(previous)

    # -- the hot path ---------------------------------------------------- #

    def trigger(self, point: str, value: Any) -> Any:
        """Evaluate ``point`` against every rule; raise/mutate on a fire."""
        with self._lock:
            stats = self._points.get(point)
            if stats is None:
                stats = self._points[point] = PointStats()
            stats.calls += 1
            fired: _RuleState | None = None
            for state in self._states:
                rule = state.rule
                if point != rule.point and not fnmatchcase(point, rule.point):
                    continue
                matched = state.matches.get(point, 0) + 1
                state.matches[point] = matched
                if rule.times is not None and state.fires >= rule.times:
                    continue
                if rule.nth is not None and matched != rule.nth:
                    continue
                if rule.probability < 1.0 and (
                    state.rng(point).random() >= rule.probability
                ):
                    continue
                state.fires += 1
                stats.fires += 1
                fired = state
                break
        if fired is None:
            return value
        return self._fire(fired, point, value)

    def _fire(self, state: _RuleState, point: str, value: Any) -> Any:
        rule = state.rule
        message = rule.message or f"injected {rule.fault} fault at {point!r}"
        if rule.fault == "io":
            raise InjectedIOError(message)
        if rule.fault == "crash":
            raise InjectedCrash(message)
        if rule.fault == "latency":
            if rule.latency_s > 0:
                time.sleep(rule.latency_s)
            return value
        # corrupt
        if isinstance(value, (bytes, bytearray)):
            return _corrupt_bytes(bytes(value), state.rng(point))
        raise InjectedCorruption(message)


def _corrupt_bytes(blob: bytes, rng: Random) -> bytes:
    """Deterministically mangle ``blob``: truncate or flip bits, never both
    a no-op — even an empty blob comes back visibly wrong."""
    if not blob:
        return b"\xde\xad"
    choice = rng.random()
    if choice < 0.5:
        # torn write: keep a prefix only (possibly empty)
        return blob[: rng.randrange(0, max(1, len(blob) // 2))]
    # bit rot: flip a byte somewhere in the payload
    index = rng.randrange(0, len(blob))
    flipped = blob[index] ^ 0xFF
    return blob[:index] + bytes((flipped,)) + blob[index + 1 :]


# ---------------------------------------------------------------------- #
# module-global activation
# ---------------------------------------------------------------------- #

#: The active plan.  ``None`` means every fault point is a cheap no-op.
_ACTIVE: FaultPlan | None = None


def install_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-globally (``None`` disables injection)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def clear_plan() -> None:
    """Disable fault injection (idempotent)."""
    install_plan(None)


def current_plan() -> FaultPlan | None:
    return _ACTIVE


@contextmanager
def active_plan(plan: FaultPlan) -> "Iterator[FaultPlan]":
    """``with active_plan(plan):`` — scoped installation, restores on exit."""
    with plan.active():
        yield plan


@contextmanager
def suspended_plan() -> "Iterator[None]":
    """Temporarily disable injection, restoring the previous plan on exit.

    Chaos differentials need this for their *baseline* half: the
    fault-free run must stay fault-free even when a plan arrived globally
    via ``REPRO_FAULT_PLAN`` or ``--fault-plan``.
    """
    previous = current_plan()
    install_plan(None)
    try:
        yield
    finally:
        install_plan(previous)


def install_plan_from_env(environ: "dict[str, str] | None" = None) -> FaultPlan | None:
    """Install the plan named by ``REPRO_FAULT_PLAN``, if any.

    Returns the installed plan (or ``None`` when the variable is unset or
    empty).  Called by the CLI so ``repro serve`` / ``repro chaos``
    subprocesses — including CI's chaos leg — pick plans up from the
    environment without new plumbing through every entry point.
    """
    import os

    spec = (environ if environ is not None else os.environ).get(PLAN_ENV_VAR, "")
    if not spec.strip():
        return None
    return install_plan(FaultPlan.from_spec(spec))


def fault_point(name: str, value: Any = None) -> Any:
    """Declare a fault point; returns ``value`` (possibly corrupted).

    The disabled path — no plan installed — is one global load and a
    ``None`` check, so instrumenting a call site costs nothing measurable
    in production.  With a plan installed the call is evaluated against
    every rule under the plan's lock (fault points sit at IO/compile
    granularity, never inside per-row loops).
    """
    plan = _ACTIVE
    if plan is None:
        return value
    return plan.trigger(name, value)


def fault_stats() -> dict[str, dict[str, int]]:
    """Trigger counters of the active plan (empty when none installed)."""
    plan = _ACTIVE
    return plan.stats() if plan is not None else {}
