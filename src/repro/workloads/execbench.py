"""The Chinook catalog workload used to benchmark the relational executor.

The workload is a batch of 3-table equi-join queries over the Chinook
schema — the join shapes of the study stimuli (artist/album/track lineage,
invoice drill-downs, playlist membership) with varying selection literals so
the batch exercises the plan cache *and* distinct executions.  It is shared
by ``benchmarks/test_bench_executor.py``, the ``repro bench-exec`` CLI
command and the planner's differential tests.
"""

from __future__ import annotations

from ..sql.ast import SelectQuery
from ..sql.parser import parse
from .datagen import chinook_database, chinook_scaled_database

#: (template, parameter pool) — each template yields one query per parameter.
_TEMPLATES: tuple[tuple[str, tuple[object, ...]], ...] = (
    (
        "SELECT A.Name FROM Artist A, Album AL, Track T "
        "WHERE A.ArtistId = AL.ArtistId AND AL.AlbumId = T.AlbumId "
        "AND T.GenreId = {param}",
        (1, 2, 3, 4),
    ),
    (
        "SELECT T.Name FROM Track T, InvoiceLine IL, Invoice I "
        "WHERE T.TrackId = IL.TrackId AND IL.InvoiceId = I.InvoiceId "
        "AND I.BillingCountry = '{param}'",
        ("USA", "France", "Canada"),
    ),
    (
        "SELECT P.Name FROM Playlist P, PlaylistTrack PT, Track T "
        "WHERE P.PlaylistId = PT.PlaylistId AND PT.TrackId = T.TrackId "
        "AND T.MediaTypeId = {param}",
        (1, 2),
    ),
    (
        "SELECT C.LastName FROM Customer C, Invoice I, InvoiceLine IL "
        "WHERE C.CustomerId = I.CustomerId AND I.InvoiceId = IL.InvoiceId "
        "AND IL.Quantity >= {param}",
        (1, 2, 3),
    ),
)


def chinook_join_workload(repeat: int = 1) -> list[SelectQuery]:
    """The 3-table equi-join batch (12 distinct queries, repeated).

    ``repeat > 1`` re-appends the same queries, which is how real batch
    traffic looks and what the plan cache exists for.
    """
    queries = [
        parse(template.format(param=param))
        for template, pool in _TEMPLATES
        for param in pool
    ]
    return queries * repeat


def chinook_mixed_workload() -> list[SelectQuery]:
    """Joins plus subquery/aggregate shapes — the four-engine differential mix.

    Where :func:`chinook_join_workload` stresses one plan family (3-table
    equi-joins) for benchmarking, this batch covers the operator surface the
    execution backends must agree on: semi-joins (``IN``), anti-joins
    (``NOT IN``), correlated ``EXISTS``, quantified comparisons and
    grouped/global aggregates.  It is the workload of the cross-engine
    differential tests, run on scaled databases so every operator sees
    real data volumes.
    """
    return [
        parse(text)
        for text in (
            # Semi-join: tracks on at least one playlist.
            "SELECT T.Name FROM Track T WHERE T.TrackId IN "
            "(SELECT PT.TrackId FROM PlaylistTrack PT)",
            # Anti-join: artists with no album.
            "SELECT A.Name FROM Artist A WHERE A.ArtistId NOT IN "
            "(SELECT AL.ArtistId FROM Album AL)",
            # Correlated EXISTS: customers that bought anything.
            "SELECT C.LastName FROM Customer C WHERE EXISTS "
            "(SELECT I.InvoiceId FROM Invoice I "
            "WHERE I.CustomerId = C.CustomerId)",
            # Quantified comparison over a subquery.
            "SELECT T.Name FROM Track T WHERE T.UnitPrice >= ALL "
            "(SELECT T2.UnitPrice FROM Track T2)",
            # Grouped aggregate over a join.
            "SELECT AL.Title, COUNT(T.TrackId) FROM Album AL, Track T "
            "WHERE AL.AlbumId = T.AlbumId GROUP BY AL.Title",
            # Global aggregates.
            "SELECT COUNT(IL.InvoiceLineId), SUM(IL.Quantity) "
            "FROM InvoiceLine IL",
            "SELECT MIN(T.Milliseconds), MAX(T.Milliseconds) FROM Track T",
            # Join + filter + projection, the bread-and-butter shape.
            "SELECT A.Name, AL.Title FROM Artist A, Album AL "
            "WHERE A.ArtistId = AL.ArtistId AND AL.AlbumId <= 20",
        )
    ]


#: Ranked shapes of the top-k leg.  Each stresses a different piece of the
#: TopK machinery on the scaled database: the fused DISTINCT + ORDER BY
#: join exercises candidate-only dedup (rank raw columns, deduplicate just
#: the prefix), the ranked scan isolates the partial-selection kernel with
#: no join in the way, and the FK-join drill-down is the bread-and-butter
#: "latest k events" query every real corpus is full of.
_TOPK_SHAPES: tuple[str, ...] = (
    "SELECT DISTINCT T.Milliseconds FROM Track T, Album AL "
    "WHERE T.AlbumId = AL.AlbumId ORDER BY T.Milliseconds LIMIT {k}",
    "SELECT T.Milliseconds FROM Track T ORDER BY T.Milliseconds DESC LIMIT {k}",
    "SELECT IL.InvoiceLineId FROM InvoiceLine IL, Invoice I "
    "WHERE IL.InvoiceId = I.InvoiceId ORDER BY IL.InvoiceLineId DESC LIMIT {k}",
)


def chinook_topk_workload(
    ks: tuple[int, ...] = (1, 10, 100),
) -> list[tuple[int, SelectQuery, SelectQuery]]:
    """Ranked queries paired with their full-materialization counterparts.

    Returns ``(k, ranked, full)`` triples: ``ranked`` carries ``ORDER BY …
    LIMIT k`` and ``full`` is the identical query with the LIMIT stripped,
    so timing both isolates what bounded enumeration saves over sorting
    and materializing the complete result.  The ``topk_vs_full`` ratios in
    ``repro bench-exec`` come from these pairs; the gated measurement is
    the ``k=10`` subset on the 100k-row scaled database.
    """
    triples = []
    for k in ks:
        for shape in _TOPK_SHAPES:
            ranked = shape.format(k=k)
            full = ranked.rsplit(" LIMIT", 1)[0]
            triples.append((k, parse(ranked), parse(full)))
    return triples


def chinook_bench_database(scale: int = 10, seed: int = 3):
    """A Chinook database sized for executor benchmarks.

    ``scale=1`` is the tiny semantics-check database; the default
    ``scale=10`` produces a few thousand rows — enough that the naive
    cartesian evaluation visibly pays for itself while the whole benchmark
    stays inside a test-suite time budget.
    """
    return chinook_database(
        n_artists=5 * scale,
        n_albums=8 * scale,
        n_tracks=20 * scale,
        n_customers=5 * scale,
        n_invoices=10 * scale,
        seed=seed,
    )


def scaled_bench_database(total_rows: int = 110_000, seed: int = 7, skew: float = 1.1):
    """The 100k-row-class benchmark database (zipf-skewed foreign keys).

    The default target over-allocates slightly because zipf-skewed
    composite keys collide (PlaylistTrack dedupes them): the realized
    database stays above 100k rows — ``repro bench-exec`` prints the
    actual count and the executor benchmark asserts the floor.

    This is where the columnar engine's speedup is *measured*: large
    enough that per-row interpretation overhead dominates the row
    pipeline, skewed enough that build-side and join-order choices show.
    Use :func:`chinook_join_workload` on top — the same query shapes run
    unchanged at every scale.
    """
    return chinook_scaled_database(total_rows=total_rows, seed=seed, skew=skew)
