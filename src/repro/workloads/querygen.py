"""Random generator for non-degenerate nested conjunctive queries.

The generator produces ASTs in the supported fragment (Fig. 4) that also
satisfy the non-degeneracy properties of Section 5.1 by construction:

* every block's predicates reference at least one local table (Property 5.1)
  because join predicates are always anchored on a table of the block that
  introduces them;
* every nested block carries at least one correlation predicate referencing
  its parent block (Property 5.2).

It is used by the property-based tests (round-tripping diagrams, semantics
preservation against the relational engine) and by the throughput benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..catalog.schema import Schema, Table
from ..sql.ast import (
    ColumnRef,
    Comparison,
    Exists,
    Literal,
    OrderItem,
    Predicate,
    SelectQuery,
    TableRef,
)


@dataclass
class QueryGenConfig:
    """Knobs of the random query generator."""

    max_depth: int = 2
    max_tables_per_block: int = 2
    selection_probability: float = 0.35
    inequality_probability: float = 0.2
    extra_join_probability: float = 0.3
    string_pool: tuple[str, ...] = ("red", "green", "blue")
    int_pool: tuple[int, ...] = (1, 2, 3, 4, 5)
    float_pool: tuple[float, ...] = (0.5, 1.0, 2.5)
    #: Ranked-output knobs, all applied to the ROOT block only (nested
    #: blocks may not be ranked).  They default to 0 so that corpora
    #: generated before ranked output existed keep byte-identical RNG
    #: streams — the probabilities are checked before any random draw.
    order_by_probability: float = 0.0
    limit_probability: float = 0.0
    limit_pool: tuple[int, ...] = (1, 3, 10)
    offset_probability: float = 0.25


@dataclass
class QueryGenerator:
    """Generates random non-degenerate queries over a schema."""

    schema: Schema
    config: QueryGenConfig = field(default_factory=QueryGenConfig)

    def generate(self, seed: int) -> SelectQuery:
        """Generate one query deterministically from ``seed``."""
        rng = random.Random(seed)
        self._alias_counter = 0
        depth = rng.randint(0, self.config.max_depth)
        return self._generate_block(rng, depth=depth, parent=[], outer=[], is_root=True)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _next_alias(self, table: Table) -> str:
        self._alias_counter += 1
        return f"{table.name[:1].upper()}{self._alias_counter}"

    def _generate_block(
        self,
        rng: random.Random,
        depth: int,
        parent: list[tuple[str, Table]],
        outer: list[tuple[str, Table]],
        is_root: bool,
    ) -> SelectQuery:
        n_tables = rng.randint(1, self.config.max_tables_per_block)
        local: list[tuple[str, Table]] = []
        from_refs: list[TableRef] = []
        for index in range(n_tables):
            if index == 0 and parent:
                # The first local table of a nested block must be joinable
                # with the parent block so the correlation predicate required
                # by Property 5.2 always exists.
                table = rng.choice(self._tables_joinable_with(parent))
            else:
                table = rng.choice(list(self.schema))
            alias = self._next_alias(table)
            local.append((alias, table))
            from_refs.append(TableRef(name=table.name, alias=alias))

        predicates: list[Predicate] = []
        # Join the block's own tables together (or to an ancestor).
        for index in range(1, len(local)):
            predicate = self._join_predicate(rng, local[index], local[:index] + outer)
            if predicate is not None:
                predicates.append(predicate)
        # Correlation with the parent block (Property 5.2).
        if parent:
            predicate = self._join_predicate(rng, local[0], parent)
            assert predicate is not None  # guaranteed by the table choice above
            predicates.append(predicate)
        # Optional extra join / selection predicates.
        if rng.random() < self.config.extra_join_probability and (outer or len(local) > 1):
            predicate = self._join_predicate(rng, rng.choice(local), local + outer)
            if predicate is not None:
                predicates.append(predicate)
        if rng.random() < self.config.selection_probability:
            predicates.append(self._selection_predicate(rng, rng.choice(local)))

        # Nested subqueries.
        if depth > 0:
            n_children = rng.randint(1, 2)
            for _ in range(n_children):
                child_depth = depth - 1 if rng.random() < 0.7 else max(0, depth - 2)
                child = self._generate_block(
                    rng,
                    depth=child_depth,
                    parent=local,
                    outer=local + outer,
                    is_root=False,
                )
                predicates.append(Exists(query=child, negated=rng.random() < 0.7))

        order_by: tuple[OrderItem, ...] = ()
        limit: int | None = None
        offset = 0
        if is_root:
            select_alias, select_table = local[0]
            select_column = rng.choice(select_table.attribute_names)
            select_items = (ColumnRef(select_alias, select_column),)
            # ORDER BY is restricted to SELECT-list columns, so the ranked
            # shapes reuse the projected column; a bare LIMIT (no ORDER BY)
            # is also generated — its result is an arbitrary k-subset, which
            # the differential harness checks as subset-of-full + count.
            config = self.config
            if config.order_by_probability > 0 and (
                rng.random() < config.order_by_probability
            ):
                order_by = (
                    OrderItem(
                        column=ColumnRef(select_alias, select_column),
                        descending=rng.random() < 0.5,
                    ),
                )
            if config.limit_probability > 0 and (
                rng.random() < config.limit_probability
            ):
                limit = rng.choice(config.limit_pool)
                if rng.random() < config.offset_probability:
                    offset = rng.randint(1, 3)
        else:
            select_items = (_star(),)
        return SelectQuery(
            select_items=select_items,
            from_tables=tuple(from_refs),
            where=tuple(predicates),
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _tables_joinable_with(self, others: list[tuple[str, Table]]) -> list[Table]:
        """Schema tables that have at least one join candidate with ``others``."""
        joinable = []
        for table in self.schema:
            probe = ("__probe__", table)
            if self._join_candidates(probe, others):
                joinable.append(table)
        if not joinable:
            raise ValueError(
                f"schema {self.schema.name} has a table group with no joinable partner"
            )
        return joinable

    def _join_candidates(
        self, local: tuple[str, Table], others: list[tuple[str, Table]]
    ) -> list[tuple[str, str, str]]:
        """All (other_alias, local_col, other_col) join options for ``local``."""
        local_alias, local_table = local
        candidates: list[tuple[str, str, str]] = []
        for other_alias, other_table in others:
            if other_alias == local_alias:
                continue
            for column in local_table.attribute_names:
                if other_table.has_attribute(column):
                    candidates.append((other_alias, column, column))
            for table_a, col_a, table_b, col_b in self.schema.joinable_pairs():
                if (
                    table_a.lower() == local_table.name.lower()
                    and table_b.lower() == other_table.name.lower()
                ):
                    candidates.append((other_alias, col_a, col_b))
                if (
                    table_b.lower() == local_table.name.lower()
                    and table_a.lower() == other_table.name.lower()
                ):
                    candidates.append((other_alias, col_b, col_a))
        return candidates

    def _join_predicate(
        self,
        rng: random.Random,
        local: tuple[str, Table],
        others: list[tuple[str, Table]],
    ) -> Comparison | None:
        local_alias, local_table = local
        candidates = self._join_candidates(local, others)
        if not candidates:
            return None
        other_alias, local_column, other_column = rng.choice(candidates)
        op = "="
        if (
            local_column == other_column
            and rng.random() < self.config.inequality_probability
        ):
            op = rng.choice(("<>", "<", ">="))
        return Comparison(
            ColumnRef(local_alias, local_column), op, ColumnRef(other_alias, other_column)
        )

    def _selection_predicate(
        self, rng: random.Random, local: tuple[str, Table]
    ) -> Comparison:
        alias, table = local
        attribute = rng.choice(table.attributes)
        if attribute.dtype == "int":
            literal = Literal(rng.choice(self.config.int_pool))
            op = rng.choice(("=", "<", ">=", "<>"))
        elif attribute.dtype == "float":
            literal = Literal(rng.choice(self.config.float_pool))
            op = rng.choice(("<", ">="))
        else:
            literal = Literal(rng.choice(self.config.string_pool))
            op = rng.choice(("=", "<>"))
        return Comparison(ColumnRef(alias, attribute.name), op, literal)


def _star():
    from ..sql.ast import Star

    return Star()
