"""Workload generators: random queries and synthetic databases."""

from .datagen import (
    beers_database,
    beers_fig3_database,
    chinook_database,
    sailors_database,
)
from .querygen import QueryGenConfig, QueryGenerator

__all__ = [
    "QueryGenConfig",
    "QueryGenerator",
    "beers_database",
    "beers_fig3_database",
    "chinook_database",
    "sailors_database",
]
