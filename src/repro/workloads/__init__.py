"""Workload generators: random queries, synthetic databases, bench batches."""

from .chaosbench import ChaosConfig, run_chaos
from .datagen import (
    beers_database,
    beers_fig3_database,
    chinook_database,
    chinook_scaled_database,
    generic_database,
    sailors_database,
    zipf_sampler,
)
from .execbench import (
    chinook_bench_database,
    chinook_join_workload,
    chinook_mixed_workload,
    chinook_topk_workload,
    scaled_bench_database,
)
from .querygen import QueryGenConfig, QueryGenerator
from .servebench import ServeBenchConfig, run_serve_bench, serve_bench

__all__ = [
    "ChaosConfig",
    "QueryGenConfig",
    "QueryGenerator",
    "ServeBenchConfig",
    "run_chaos",
    "run_serve_bench",
    "serve_bench",
    "beers_database",
    "beers_fig3_database",
    "chinook_bench_database",
    "chinook_database",
    "chinook_join_workload",
    "chinook_mixed_workload",
    "chinook_scaled_database",
    "chinook_topk_workload",
    "generic_database",
    "sailors_database",
    "scaled_bench_database",
    "zipf_sampler",
]
