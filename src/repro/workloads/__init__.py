"""Workload generators: random queries, synthetic databases, bench batches."""

from .datagen import (
    beers_database,
    beers_fig3_database,
    chinook_database,
    chinook_scaled_database,
    generic_database,
    sailors_database,
    zipf_sampler,
)
from .execbench import (
    chinook_bench_database,
    chinook_join_workload,
    scaled_bench_database,
)
from .querygen import QueryGenConfig, QueryGenerator

__all__ = [
    "QueryGenConfig",
    "QueryGenerator",
    "beers_database",
    "beers_fig3_database",
    "chinook_bench_database",
    "chinook_database",
    "chinook_join_workload",
    "chinook_scaled_database",
    "generic_database",
    "sailors_database",
    "scaled_bench_database",
    "zipf_sampler",
]
