"""Load generator for the compile server: ``repro bench-serve``.

Modeled on the SIGMOD programming-contest style of evaluation: a fixed
query workload, sustained concurrent load, and the numbers that matter for
a serving tier — sustained requests/second and p50/p99 latency — measured
in three phases against one server:

* **cold** — every request is a distinct, never-seen query: the full
  pipeline runs per request (modulo stage-level sharing), so this is the
  compile-bound floor;
* **warm** — the same queries again (several rounds): every request is a
  response-LRU hit, so this is the cache-bound ceiling;
* **burst** — a duplicate-heavy mix (each query repeated many times, the
  Fig. 24 equivalence trio riding along) fired concurrently at a part of
  the keyspace the server has never seen: in-flight coalescing plus the
  LRU must collapse the burst to one compile per distinct fingerprint.

The in-process mode (default) starts a fresh :class:`CompileServer` on an
ephemeral port inside the benchmark's own event loop, so "cold" is
genuinely cold and the compile counters are deterministic functions of the
workload — which is what lets ``benchmarks/compare.py`` gate them.
``url=`` instead drives a server that is already running elsewhere (the
end-to-end smoke test does this); against a warm external server the cold
phase numbers describe that server's current state, not a cold start.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from urllib.parse import urlparse

from ..faults import FaultPlan, active_plan
from ..paper_queries import FIG24_VARIANTS
from ..serve import (
    CompileServer,
    CompileService,
    PoolConfig,
    PoolService,
    ServiceConfig,
)
from ..sql.formatter import format_query
from .querygen import QueryGenConfig, QueryGenerator

#: Seed offset separating the burst corpus from the cold/warm corpus —
#: the burst must hit fingerprints the earlier phases never cached.
_BURST_SEED_OFFSET = 100_000
#: Seed offsets of the pool leg's corpora (never overlapping the above).
_POOL_SEED_OFFSET = 200_000
_POOL_WARMUP_OFFSET = 250_000


@dataclass(frozen=True)
class ServeBenchConfig:
    """Workload shape for one ``bench-serve`` run."""

    distinct: int = 50
    warm_repeat: int = 4
    concurrency: int = 16
    burst_distinct: int = 10
    burst_duplicates: int = 20
    schema: str = "sailors"
    formats: tuple[str, ...] = ("svg", "dot", "text")
    seed: int = 0
    #: Pool leg (0 = skip): size of the worker pool whose compile-bound
    #: throughput is compared against a single process.
    workers: int = 0
    #: Distinct queries in the pool leg's timed round.
    pool_distinct: int = 64
    #: Deterministic per-compile backend stall (seconds) applied to *both*
    #: pool-leg servers; see ``_run_pool_leg`` for why the gate needs it.
    pool_stall_s: float = 0.02
    service: ServiceConfig = field(
        default_factory=lambda: ServiceConfig(
            max_pending=4096, request_timeout=60.0
        )
    )


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _corpus(config: ServeBenchConfig) -> tuple[list[str], list[str]]:
    """(cold/warm distinct queries, burst distinct queries)."""
    from ..catalog.builtin import beers_schema, sailors_schema
    from ..catalog.chinook import chinook_schema

    schemas = {
        "sailors": sailors_schema,
        "beers": beers_schema,
        "chinook": chinook_schema,
    }
    generator = QueryGenerator(
        schemas[config.schema](),
        # Depth-4 blocks (the nesting the paper's unique-set example needs)
        # keep one compile meaningfully more expensive than one LRU hit —
        # the contrast the cold/warm phases exist to measure.
        QueryGenConfig(max_depth=4, max_tables_per_block=3),
    )
    main = [
        format_query(generator.generate(config.seed + index))
        for index in range(max(1, config.distinct))
    ]
    burst = [
        format_query(
            generator.generate(config.seed + _BURST_SEED_OFFSET + index)
        )
        for index in range(max(1, config.burst_distinct))
    ]
    return main, burst


class _Client:
    """Minimal keep-alive HTTP/1.1 JSON client on asyncio streams."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self, retry_timeout: float = 10.0) -> None:
        """Connect, retrying refused connections with capped backoff.

        ``bench-serve url=...`` and the e2e test race a subprocess server
        to its ``bind()``; on a slow CI machine the first connect can lose
        that race.  Refusals within ``retry_timeout`` are part of startup,
        not errors.
        """
        backoff = 0.05
        deadline = time.monotonic() + retry_timeout
        while True:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self._host, self._port
                )
                return
            except ConnectionRefusedError:
                if time.monotonic() >= deadline:
                    raise
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 0.5)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass

    async def request(
        self, method: str, path: str, document: dict | None = None
    ) -> tuple[int, bytes, dict[str, str]]:
        """``(status, raw body, response headers)`` — parsing is the *caller's* cost.

        A load generator must not bill JSON decoding of multi-kilobyte
        rendered outputs to the server's latency, so the hot path returns
        the undecoded body and only error paths / stats readers parse it.
        Headers come back lower-cased so retry loops can honor
        ``Retry-After`` on 503.
        """
        assert self._reader is not None and self._writer is not None
        body = b"" if document is None else json.dumps(document).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            "Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("ascii") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        content_length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        raw = (
            await self._reader.readexactly(content_length)
            if content_length
            else b""
        )
        return status, raw, headers


#: 503 retry policy: attempts beyond the first request, and the backoff
#: floor/ceiling (the server's ``Retry-After`` wins when larger).
_MAX_RETRIES = 5
_RETRY_BACKOFF_S = 0.05
_RETRY_BACKOFF_CAP_S = 5.0


async def _measure(
    host: str,
    port: int,
    jobs: list[tuple[str, dict]],
    concurrency: int,
) -> tuple[list[float], float, int, int]:
    """Run ``jobs`` over ``concurrency`` keep-alive connections.

    Returns (per-request latencies in seconds, wall-clock seconds, number
    of 503-retried requests, number of *failed* requests).  A 503 is the
    server's documented shed signal, so the client honors its
    ``Retry-After`` with exponential backoff before giving up; a request
    that still is not 200 after the retry budget is counted as failed —
    and surfaced in the payload, where chaos runs (worker SIGKILL
    mid-load) assert the count stays zero.  A load generator that quietly
    counted errors as throughput would measure nothing, so failed
    requests never contribute a latency sample.  Retried requests bill
    their full wall-clock (including backoff sleeps) to latency:
    shed-and-retry *is* the user experience under overload.
    """
    queue: asyncio.Queue[tuple[str, dict]] = asyncio.Queue()
    for job in jobs:
        queue.put_nowait(job)
    latencies: list[float] = []
    retried = 0
    failed = 0

    async def worker() -> None:
        nonlocal retried, failed
        client = _Client(host, port)
        await client.connect()
        try:
            while True:
                try:
                    path, document = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                start = time.perf_counter()
                status, raw, headers = await client.request(
                    "POST", path, document
                )
                attempts = 0
                backoff = _RETRY_BACKOFF_S
                while status == 503 and attempts < _MAX_RETRIES:
                    attempts += 1
                    try:
                        retry_after = float(headers.get("retry-after", "0"))
                    except ValueError:
                        retry_after = 0.0
                    await asyncio.sleep(
                        min(max(retry_after, backoff), _RETRY_BACKOFF_CAP_S)
                    )
                    backoff = min(backoff * 2, _RETRY_BACKOFF_CAP_S)
                    status, raw, headers = await client.request(
                        "POST", path, document
                    )
                if attempts:
                    retried += 1
                if status != 200:
                    failed += 1
                    continue
                latencies.append(time.perf_counter() - start)
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(min(concurrency, len(jobs)))))
    elapsed = time.perf_counter() - started
    return latencies, elapsed, retried, failed


async def _get(host: str, port: int, path: str) -> dict:
    client = _Client(host, port)
    await client.connect()
    try:
        status, raw, _headers = await client.request("GET", path)
        if status not in (200, 503):  # /healthz answers 503 while draining
            raise RuntimeError(f"{path} returned {status}")
        return json.loads(raw) if raw else {}
    finally:
        await client.close()


def _phase_summary(
    latencies: list[float], elapsed: float, retried: int = 0, failed: int = 0
) -> dict:
    ordered = sorted(latencies)
    return {
        "requests": len(latencies) + failed,
        "retried": retried,
        "failed": failed,
        "p50_ms": round(_percentile(ordered, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(ordered, 0.95) * 1000, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1000, 3),
        "rps": round(len(latencies) / elapsed, 1),
    }


def _pool_corpus(config: ServeBenchConfig) -> tuple[list[str], list[str]]:
    """(timed pool-leg queries, warm-up queries) — distinct, never-seen.

    Every timed query is a first sight for both servers, so each request
    runs a full compile (plus, in pool mode, one learned-affinity key
    lookup) — the traffic shape the pool exists for.
    """
    from ..catalog.builtin import beers_schema, sailors_schema
    from ..catalog.chinook import chinook_schema

    schemas = {
        "sailors": sailors_schema,
        "beers": beers_schema,
        "chinook": chinook_schema,
    }
    generator = QueryGenerator(
        schemas[config.schema](),
        QueryGenConfig(max_depth=6, max_tables_per_block=4),
    )
    timed = [
        format_query(generator.generate(config.seed + _POOL_SEED_OFFSET + index))
        for index in range(max(1, config.pool_distinct))
    ]
    warmup = [
        format_query(
            generator.generate(config.seed + _POOL_WARMUP_OFFSET + index)
        )
        for index in range(max(2, 2 * config.workers))
    ]
    return timed, warmup


async def _run_pool_leg(config: ServeBenchConfig) -> dict:
    """Measure the same distinct-query corpus against a single process and
    an N-worker pool; both servers are fresh, then warmed with an untimed
    round of *different* queries (process boot and first-compile jitter
    must not bill either side).

    Both legs run with the same deterministic per-compile backend stall
    (``pool_stall_s``, injected at the existing ``serve.compile`` fault
    point): the single process serializes stalls on its one compile
    thread, the pool overlaps them across workers.  The stall is what
    makes ``pool_vs_single_warm_throughput`` a *portable* gate — CI
    runners span 1–4 vCPUs, so a purely CPU-bound ratio would measure the
    host's core count, not the serving architecture; with the stall
    dominating, the ratio measures dispatch overlap and converges on any
    host.  (On a multi-core host the pool additionally overlaps the CPU
    halves — the measured ratio is the architecture's floor.)
    """
    timed_queries, warmup_queries = _pool_corpus(config)
    formats = list(config.formats)
    timed_jobs = [
        ("/compile", {"sql": sql, "formats": formats}) for sql in timed_queries
    ]
    warmup_jobs = [
        ("/compile", {"sql": sql, "formats": formats}) for sql in warmup_queries
    ]
    stall_plan = {
        "seed": config.seed,
        "rules": [
            {
                "point": "serve.compile",
                "fault": "latency",
                "latency_s": config.pool_stall_s,
            }
        ],
    }

    async def one_server(service) -> dict:
        if isinstance(service, PoolService):
            await service.start()
        server = CompileServer(service, host="127.0.0.1", port=0)
        await server.start()
        try:
            await _measure(server.host, server.port, warmup_jobs, config.concurrency)
            return _phase_summary(
                *await _measure(
                    server.host, server.port, timed_jobs, config.concurrency
                )
            )
        finally:
            await server.stop(drain_timeout=10.0)

    # Single leg: the stall plan lives in this process (the compile thread
    # sleeps).  Pool leg: the same plan ships to the workers instead; the
    # front end stays plan-free, so the dispatch fault hook stays off.
    with active_plan(FaultPlan.from_spec(stall_plan)):
        single = await one_server(CompileService(config=config.service))
    pool_service = PoolService(
        config=config.service,
        pool_config=PoolConfig(
            workers=config.workers, worker_fault_plan=stall_plan
        ),
    )
    pool = await one_server(pool_service)
    pool_stats = pool_service.supervisor.stats
    return {
        "pool_workers": config.workers,
        "pool_distinct": len(timed_queries),
        "pool_requests": pool["requests"],
        "pool_single_rps": single["rps"],
        "pool_rps": pool["rps"],
        "pool_single_p50_ms": single["p50_ms"],
        "pool_p50_ms": pool["p50_ms"],
        "pool_p99_ms": pool["p99_ms"],
        "pool_vs_single_warm_throughput": round(
            pool["rps"] / max(single["rps"], 1e-9), 2
        ),
        "pool_failed_requests": single["failed"] + pool["failed"],
        "pool_worker_restarts": pool_stats.worker_restarts,
        "pool_worker_crashes": pool_stats.worker_crashes,
    }


async def run_serve_bench(
    config: ServeBenchConfig, url: str | None = None
) -> dict:
    """Run the three phases; returns the ``bench-serve`` JSON payload."""
    server: CompileServer | None = None
    if url is None:
        service = CompileService(config=config.service)
        server = CompileServer(service, host="127.0.0.1", port=0)
        await server.start()
        host, port = server.host, server.port
    else:
        parsed = urlparse(url)
        if parsed.hostname is None or parsed.port is None:
            raise ValueError(f"need an explicit host:port in url, got {url!r}")
        host, port = parsed.hostname, parsed.port

    try:
        main_queries, burst_queries = _corpus(config)
        formats = list(config.formats)
        compile_jobs = [
            ("/compile", {"sql": sql, "formats": formats})
            for sql in main_queries
        ]

        cold = _phase_summary(
            *await _measure(host, port, compile_jobs, config.concurrency)
        )
        warm = _phase_summary(
            *await _measure(
                host, port, compile_jobs * config.warm_repeat, config.concurrency
            )
        )

        # Duplicate-heavy burst over never-seen fingerprints; duplicates
        # are adjacent so they are in flight *together* — that is what
        # exercises in-flight coalescing rather than plain LRU hits.
        burst_spellings = burst_queries + list(FIG24_VARIANTS)
        burst_jobs = [
            ("/compile", {"sql": sql, "formats": formats})
            for sql in burst_spellings
            for _ in range(config.burst_duplicates)
        ]
        before = await _get(host, port, "/stats")
        burst = _phase_summary(
            *await _measure(host, port, burst_jobs, config.concurrency)
        )
        after = await _get(host, port, "/stats")

        burst_compiles = after["compiles"] - before["compiles"]
        payload = {
            "schema": config.schema,
            "formats": formats,
            "distinct_queries": len(main_queries),
            "concurrency": config.concurrency,
            "warm_repeat": config.warm_repeat,
            "burst_distinct": len(burst_queries),
            "burst_duplicates": config.burst_duplicates,
            "requests_cold": cold["requests"],
            "requests_warm": warm["requests"],
            "cold_p50_ms": cold["p50_ms"],
            "cold_p95_ms": cold["p95_ms"],
            "cold_p99_ms": cold["p99_ms"],
            "cold_rps": cold["rps"],
            "warm_p50_ms": warm["p50_ms"],
            "warm_p95_ms": warm["p95_ms"],
            "warm_p99_ms": warm["p99_ms"],
            "warm_rps": warm["rps"],
            "warm_speedup_p50": round(
                cold["p50_ms"] / max(warm["p50_ms"], 1e-9), 1
            ),
            "burst_requests": burst["requests"],
            "burst_p50_ms": burst["p50_ms"],
            "burst_p95_ms": burst["p95_ms"],
            "burst_p99_ms": burst["p99_ms"],
            "burst_rps": burst["rps"],
            "burst_unique_compiles": burst_compiles,
            "burst_unique_fraction": round(
                burst_compiles / burst["requests"], 4
            ),
            "coalesce_collapse": round(
                burst["requests"] / max(burst_compiles, 1), 1
            ),
            "coalesced_requests": after["coalesced"] - before["coalesced"],
            "retried_requests": (
                cold["retried"] + warm["retried"] + burst["retried"]
            ),
            "failed_requests": (
                cold["failed"] + warm["failed"] + burst["failed"]
            ),
            "server_stats": after,
        }
    finally:
        if server is not None:
            await server.stop(drain_timeout=10.0)

    if config.workers and config.workers > 1 and url is None:
        payload.update(await _run_pool_leg(config))
    return payload


def serve_bench(config: ServeBenchConfig, url: str | None = None) -> dict:
    """Synchronous wrapper (the CLI / pytest entry point)."""
    return asyncio.run(run_serve_bench(config, url=url))
