"""Synthetic data generators for the built-in schemas.

The relational engine only needs data to *verify semantics* (SQL execution vs
Logic Tree evaluation), so most generators aim for small databases with
enough value collisions that joins, NOT EXISTS and self-join predicates all
have non-trivial answers.  :func:`chinook_scaled_database` is the exception:
a parameterized generator producing 100k+-row databases (with optional
zipfian foreign-key skew) so the executor benchmarks measure the engines
where throughput actually matters.  All generators are deterministic given
the seed.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from itertools import accumulate
from typing import Callable

from ..catalog.builtin import beers_fig3_schema, beers_schema, sailors_schema
from ..catalog.chinook import chinook_schema
from ..catalog.schema import Schema
from ..relational.database import Database


def beers_database(
    n_drinkers: int = 6, n_beers: int = 5, n_bars: int = 4, seed: int = 0
) -> Database:
    """A small Likes/Frequents/Serves database (Ullman schema, Fig. 1)."""
    rng = random.Random(seed)
    db = Database(beers_schema())
    drinkers = [f"drinker{i}" for i in range(n_drinkers)]
    beers = [f"beer{i}" for i in range(n_beers)]
    bars = [f"bar{i}" for i in range(n_bars)]
    seen = set()
    for drinker in drinkers:
        liked = rng.sample(beers, k=rng.randint(1, n_beers))
        for beer in liked:
            if (drinker, beer) not in seen:
                seen.add((drinker, beer))
                db.insert("Likes", [drinker, beer])
    for drinker in drinkers:
        for bar in rng.sample(bars, k=rng.randint(0, n_bars)):
            db.insert("Frequents", [drinker, bar])
    for bar in bars:
        for beer in rng.sample(beers, k=rng.randint(1, n_beers)):
            db.insert("Serves", [bar, beer])
    return db


def beers_fig3_database(
    n_persons: int = 5, n_drinks: int = 4, n_bars: int = 4, seed: int = 1
) -> Database:
    """Data for the Fig. 3 spelling of the beers schema (person/drink)."""
    rng = random.Random(seed)
    db = Database(beers_fig3_schema())
    persons = [f"p{i}" for i in range(n_persons)]
    drinks = [f"d{i}" for i in range(n_drinks)]
    bars = [f"b{i}" for i in range(n_bars)]
    for person in persons:
        for drink in rng.sample(drinks, k=rng.randint(1, n_drinks)):
            db.insert("Likes", [person, drink])
        for bar in rng.sample(bars, k=rng.randint(0, n_bars)):
            db.insert("Frequents", [person, bar])
    for bar in bars:
        for drink in rng.sample(drinks, k=rng.randint(1, n_drinks)):
            db.insert("Serves", [bar, drink])
    return db


def sailors_database(
    n_sailors: int = 6, n_boats: int = 5, n_reservations: int = 14, seed: int = 2
) -> Database:
    """Sailors/Reserves/Boat data with both red and non-red boats."""
    rng = random.Random(seed)
    db = Database(sailors_schema())
    colors = ["red", "green", "blue"]
    for sid in range(1, n_sailors + 1):
        db.insert("Sailor", [sid, f"sailor{sid}", rng.randint(1, 10), rng.randint(18, 60)])
    for bid in range(1, n_boats + 1):
        db.insert("Boat", [bid, f"boat{bid}", colors[bid % len(colors)]])
    seen = set()
    for _ in range(n_reservations):
        sid = rng.randint(1, n_sailors)
        bid = rng.randint(1, n_boats)
        day = f"day{rng.randint(1, 7)}"
        if (sid, bid, day) not in seen:
            seen.add((sid, bid, day))
            db.insert("Reserves", [sid, bid, day])
    return db


def generic_database(
    schema: Schema,
    rows_per_table: int = 8,
    seed: int = 0,
    string_pool: tuple[str, ...] = ("red", "green", "blue", "art", "Hitchcock"),
) -> Database:
    """A small database for *any* schema, with heavy value collisions.

    Values are drawn from tiny pools per dtype so that joins, IN and NOT
    EXISTS predicates all have non-trivial answers on any schema — used by
    the differential tests to exercise schemas (students, actors, …) that
    have no hand-written generator.
    """
    rng = random.Random(seed)
    db = Database(schema)
    for table in schema:
        seen = set()
        for _ in range(rows_per_table):
            row = []
            for attribute in table.attributes:
                if attribute.dtype == "int":
                    row.append(rng.randint(1, max(3, rows_per_table // 2)))
                elif attribute.dtype == "float":
                    row.append(rng.choice((0.5, 1.0, 2.5)))
                else:
                    row.append(rng.choice(string_pool))
            key = tuple(row)
            if key not in seen:  # keep set semantics interesting, not degenerate
                seen.add(key)
                db.insert(table.name, row)
    return db


def zipf_sampler(
    rng: random.Random, n: int, skew: float
) -> Callable[[], int]:
    """A sampler of ids in ``[1, n]``; zipfian with exponent ``skew``.

    ``skew <= 0`` degenerates to the uniform sampler.  With skew, id 1 is
    the most popular, id ``n`` the least — the classic rank-frequency
    shape of real catalog traffic, which is exactly what makes join-order
    and build-side choices matter (a few hub rows fan out enormously).
    The cumulative weight table is built once; each draw is one ``random()``
    plus a binary search.
    """
    if n < 1:
        raise ValueError("zipf_sampler needs a non-empty id domain")
    if skew <= 0:
        return lambda: rng.randint(1, n)
    cumulative = list(accumulate(1.0 / (rank**skew) for rank in range(1, n + 1)))
    total = cumulative[-1]
    return lambda: bisect_left(cumulative, rng.random() * total) + 1


def chinook_scaled_database(
    total_rows: int = 100_000, seed: int = 7, skew: float = 0.0
) -> Database:
    """A parameterized Chinook database of roughly ``total_rows`` rows.

    Row budget (fractions of ``total_rows``): Track 33%, InvoiceLine 23%,
    PlaylistTrack 15%, Invoice 11%, Album 8%, Artist 5%, Customer 5%; plus
    the small fixed dimensions (Genre, MediaType, Playlist, Employee).
    ``skew > 0`` draws every foreign key zipfian with that exponent, so a
    few hub artists/albums/tracks concentrate most of the references —
    selection literals keep their selectivity, but join fan-outs become
    heavy-tailed.  Deterministic given ``(total_rows, seed, skew)``.
    """
    rng = random.Random(seed)
    db = Database(chinook_schema())

    n_artists = max(1, total_rows * 5 // 100)
    n_albums = max(1, total_rows * 8 // 100)
    n_tracks = max(1, total_rows * 33 // 100)
    n_customers = max(1, total_rows * 5 // 100)
    n_invoices = max(1, total_rows * 11 // 100)
    n_invoice_lines = max(1, total_rows * 23 // 100)
    n_playlist_tracks = max(1, total_rows * 15 // 100)
    n_playlists = max(3, total_rows // 5000)

    genres = ["Rock", "Pop", "Jazz", "Classical"]
    media_types = ["AAC audio file", "MPEG audio file"]
    composers = ["Carlos", "artist1", "someone else"]
    states = ["Michigan", "Ohio", "Texas", "California", "Nevada"]
    countries = ["USA", "France", "Canada", "Germany", "Brazil"]

    for genre_id, name in enumerate(genres, start=1):
        db.insert("Genre", [genre_id, name])
    for media_id, name in enumerate(media_types, start=1):
        db.insert("MediaType", [media_id, name])
    for employee_id in range(1, 4):
        db.insert(
            "Employee",
            {
                "EmployeeId": employee_id,
                "LastName": f"last{employee_id}",
                "FirstName": f"first{employee_id}",
                "Title": "Support",
                "ReportsTo": max(1, employee_id - 1),
                "Country": "USA",
            },
        )

    artist_of = zipf_sampler(rng, n_artists, skew)
    album_of = zipf_sampler(rng, n_albums, skew)
    track_of = zipf_sampler(rng, n_tracks, skew)
    customer_of = zipf_sampler(rng, n_customers, skew)
    invoice_of = zipf_sampler(rng, n_invoices, skew)
    playlist_of = zipf_sampler(rng, n_playlists, skew)

    artist_rel = db.relation("Artist")
    for artist_id in range(1, n_artists + 1):
        artist_rel.insert([artist_id, f"artist{artist_id}"])
    album_rel = db.relation("Album")
    for album_id in range(1, n_albums + 1):
        album_rel.insert([album_id, f"album{album_id}", artist_of()])
    track_rel = db.relation("Track")
    for track_id in range(1, n_tracks + 1):
        track_rel.insert(
            [
                track_id,
                f"track{track_id}",
                album_of(),
                rng.randint(1, len(media_types)),
                rng.randint(1, len(genres)),
                rng.choice(composers),
                rng.randint(120_000, 420_000),
                rng.randint(1_000_000, 9_000_000),
                0.99,
            ]
        )
    playlist_rel = db.relation("Playlist")
    for playlist_id in range(1, n_playlists + 1):
        playlist_rel.insert([playlist_id, f"playlist{playlist_id}"])
    playlist_track_rel = db.relation("PlaylistTrack")
    seen_playlist_entries: set[tuple[int, int]] = set()
    for _ in range(n_playlist_tracks):
        entry = (playlist_of(), track_of())
        if entry not in seen_playlist_entries:  # composite primary key
            seen_playlist_entries.add(entry)
            playlist_track_rel.insert(entry)
    customer_rel = db.relation("Customer")
    customer_columns = customer_rel.columns
    for customer_id in range(1, n_customers + 1):
        values = dict.fromkeys(customer_columns, "")
        values.update(
            CustomerId=customer_id,
            FirstName=f"cfirst{customer_id}",
            LastName=f"clast{customer_id}",
            City=f"city{customer_id % 17}",
            State=rng.choice(states),
            Country=rng.choice(countries),
            SupportRepId=rng.randint(1, 3),
        )
        customer_rel.insert([values[column] for column in customer_columns])
    invoice_rel = db.relation("Invoice")
    invoice_columns = invoice_rel.columns
    for invoice_id in range(1, n_invoices + 1):
        values = dict.fromkeys(invoice_columns, "")
        values.update(
            InvoiceId=invoice_id,
            CustomerId=customer_of(),
            BillingState=rng.choice(states),
            BillingCountry=rng.choice(countries),
            Total=round(rng.uniform(1, 30), 2),
        )
        invoice_rel.insert([values[column] for column in invoice_columns])
    invoice_line_rel = db.relation("InvoiceLine")
    for line_id in range(1, n_invoice_lines + 1):
        invoice_line_rel.insert(
            [line_id, invoice_of(), track_of(), 0.99, rng.randint(1, 3)]
        )
    return db


def chinook_database(
    n_artists: int = 5,
    n_albums: int = 8,
    n_tracks: int = 20,
    n_customers: int = 5,
    n_invoices: int = 10,
    seed: int = 3,
) -> Database:
    """A miniature Chinook database covering the tables the stimuli touch."""
    rng = random.Random(seed)
    db = Database(chinook_schema())
    genres = ["Rock", "Pop", "Jazz", "Classical"]
    media_types = ["AAC audio file", "MPEG audio file"]
    composers = ["Carlos", "artist1", "someone else"]

    for genre_id, name in enumerate(genres, start=1):
        db.insert("Genre", [genre_id, name])
    for media_id, name in enumerate(media_types, start=1):
        db.insert("MediaType", [media_id, name])
    for artist_id in range(1, n_artists + 1):
        db.insert("Artist", [artist_id, f"artist{artist_id}"])
    for album_id in range(1, n_albums + 1):
        db.insert("Album", [album_id, f"album{album_id}", rng.randint(1, n_artists)])
    for track_id in range(1, n_tracks + 1):
        db.insert(
            "Track",
            [
                track_id,
                f"track{track_id}",
                rng.randint(1, n_albums),
                rng.randint(1, len(media_types)),
                rng.randint(1, len(genres)),
                rng.choice(composers),
                rng.randint(120_000, 420_000),
                rng.randint(1_000_000, 9_000_000),
                0.99,
            ],
        )
    for playlist_id in range(1, 4):
        db.insert("Playlist", [playlist_id, ["workout", "focus", "road trip"][playlist_id - 1]])
        for track_id in rng.sample(range(1, n_tracks + 1), k=min(6, n_tracks)):
            db.insert("PlaylistTrack", [playlist_id, track_id])
    for employee_id in range(1, 4):
        db.insert(
            "Employee",
            {
                "EmployeeId": employee_id,
                "LastName": f"last{employee_id}",
                "FirstName": f"first{employee_id}",
                "Title": "Support",
                "ReportsTo": max(1, employee_id - 1),
                "Country": ["USA", "Canada", "USA"][employee_id - 1],
            },
        )
    states = ["Michigan", "Ohio", "Michigan", "Texas", "Michigan"]
    countries = ["USA", "France", "USA", "France", "Canada"]
    for customer_id in range(1, n_customers + 1):
        db.insert(
            "Customer",
            {
                "CustomerId": customer_id,
                "FirstName": f"cfirst{customer_id}",
                "LastName": f"clast{customer_id}",
                "City": f"city{customer_id % 3}",
                "State": states[(customer_id - 1) % len(states)],
                "Country": countries[(customer_id - 1) % len(countries)],
                "SupportRepId": rng.randint(1, 3),
            },
        )
    for invoice_id in range(1, n_invoices + 1):
        customer_id = rng.randint(1, n_customers)
        db.insert(
            "Invoice",
            {
                "InvoiceId": invoice_id,
                "CustomerId": customer_id,
                "BillingState": rng.choice(states),
                "BillingCountry": rng.choice(countries),
                "Total": round(rng.uniform(1, 30), 2),
            },
        )
        for line_index in range(rng.randint(1, 3)):
            db.insert(
                "InvoiceLine",
                {
                    "InvoiceLineId": invoice_id * 10 + line_index,
                    "InvoiceId": invoice_id,
                    "TrackId": rng.randint(1, n_tracks),
                    "UnitPrice": 0.99,
                    "Quantity": rng.randint(1, 3),
                },
            )
    return db
