"""Chaos differential workload: ``repro chaos``.

The robustness contract of this codebase (docs/robustness.md) is not "no
faults" but "faults never change answers".  This workload *proves* it the
same way the differential suites prove engine equivalence: run a seeded
querygen corpus twice — once fault-free, once under a deterministic
:class:`~repro.faults.FaultPlan` — and require byte-identical results,
layer by layer:

* **engine** — the fallback-wrapped SQL and COLUMNAR engines execute the
  corpus while injected IO errors knock the primary over; the PLANNED
  rows engine absorbs every failure, and canonicalized result bytes must
  match the fault-free run exactly (``fallbacks`` asserted > 0, so the
  pass is never vacuous).
* **cache** — a disk store is populated fault-free, then a fresh compiler
  re-reads it under injected corruption and write failures; evicted
  entries recompute, artifacts must match.
* **serve** — an in-process :class:`~repro.serve.CompileService` answers
  the corpus while compile faults fire; the client retries shed (503)
  requests, and every request must end in the fault-free payload.
* **pool** — a 2-worker :class:`~repro.serve.PoolService` answers the
  corpus concurrently while one worker is SIGKILLed with requests in
  flight; the supervisor's sibling failover and restart machinery must
  deliver *zero* failed client requests and byte-identical bodies, and
  the kill must actually have landed (``worker_crashes`` asserted > 0).

Faults are seeded, so a failing run is exactly reproducible from its
config — chaos without flakes.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..catalog.builtin import sailors_schema
from ..faults import FaultPlan, FaultRule, active_plan, suspended_plan
from ..relational import ExecutionMode, Executor, reset_breakers
from ..relational.errors import EngineError
from ..serve import CompileService, PoolConfig, PoolService, ServiceConfig
from ..serve.service import ServiceUnavailable
from ..sql.formatter import format_query
from .datagen import sailors_database
from .querygen import QueryGenConfig, QueryGenerator


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one ``repro chaos`` run."""

    #: Distinct generated queries per leg.
    queries: int = 30
    #: Base seed of the querygen corpus.
    seed: int = 0
    #: Seed of the fault plans (each leg gets a fresh plan with this seed).
    fault_seed: int = 1337
    #: Formats compiled in the cache and serve legs.
    formats: tuple[str, ...] = ("text",)
    #: Client-side attempts per serve request (retrying 503s).
    serve_attempts: int = 4
    #: Optional :meth:`FaultPlan.from_spec` spec (inline JSON or a path)
    #: replacing the per-leg default rules — ``repro chaos --fault-plan``.
    plan_spec: "str | None" = None
    #: Worker-pool size of the pool leg (< 2 skips the leg).
    pool_workers: int = 2


#: The default chaos rules, one list per leg.  Probabilities are tuned so
#: every leg both *fires* (non-vacuous) and *converges* (fallback, evict,
#: or retry always reaches the fault-free answer) under any seed: engine
#: faults are absorbed per-query by the PLANNED engine, cache corruption
#: is absorbed per-entry by recompute, and serve faults fire in a bounded
#: burst (``times``) smaller than the retry budget.
ENGINE_RULES = (
    FaultRule(point="engine.sql.execute", fault="io", probability=0.5),
    FaultRule(point="engine.columnar.execute", fault="io", probability=0.4),
)
CACHE_RULES = (
    FaultRule(point="diskcache.read.bytes", fault="corrupt", probability=0.3),
    FaultRule(point="diskcache.write", fault="io", probability=0.15),
)
SERVE_RULES = (
    FaultRule(point="serve.compile", fault="io", probability=0.25),
    FaultRule(point="serve.compile", fault="crash", nth=5, times=1),
)


def _leg_plan(config: ChaosConfig, default_rules: tuple) -> FaultPlan:
    if config.plan_spec:
        return FaultPlan.from_spec(config.plan_spec)
    return FaultPlan(default_rules, seed=config.fault_seed)


def _corpus(config: ChaosConfig) -> list:
    generator = QueryGenerator(
        sailors_schema(), QueryGenConfig(max_depth=3, max_tables_per_block=3)
    )
    return [generator.generate(config.seed + i) for i in range(config.queries)]


def _canonical_bytes(result) -> bytes:
    """Order-insensitive byte encoding of a result set.

    Engines agree on row *sets*, not enumeration order (the documented
    cross-engine contract); repr is deterministic for the Value union.
    """
    return repr(
        (result.columns, tuple(sorted(result.rows, key=repr)))
    ).encode("utf-8")


def _engine_leg(config: ChaosConfig) -> dict:
    db = sailors_database(n_sailors=12, n_boats=6, n_reservations=30)
    corpus = _corpus(config)
    legs: dict[str, dict] = {}
    for mode in (ExecutionMode.SQL, ExecutionMode.COLUMNAR):
        reset_breakers()
        baseline: list[bytes | type] = []
        executor = Executor(db, mode=mode, fallback=True)
        with suspended_plan():
            for query in corpus:
                try:
                    baseline.append(_canonical_bytes(executor.execute(query)))
                except EngineError as error:
                    # Semantic divergence (e.g. the SQL engine's static
                    # typecheck): contractual, identical under faults too.
                    baseline.append(type(error))

        reset_breakers()
        plan = _leg_plan(config, ENGINE_RULES)
        faulted_executor = Executor(db, mode=mode, fallback=True)
        faulted: list[bytes | type] = []
        with active_plan(plan):
            for query in corpus:
                try:
                    faulted.append(
                        _canonical_bytes(faulted_executor.execute(query))
                    )
                except EngineError as error:
                    faulted.append(type(error))
        stats = faulted_executor.context.stats
        legs[mode.value] = {
            "queries": len(corpus),
            "identical": faulted == baseline,
            "fallbacks": stats.fallbacks,
            "breaker_skips": stats.breaker_skips,
            "breaker_state": dict(stats.breaker_state),
            "fault_fires": plan.total_fires(),
        }
        reset_breakers()
    return legs


def _cache_leg(config: ChaosConfig, cache_dir: Path) -> dict:
    from ..pipeline import DiagramCompiler

    corpus = [format_query(query) for query in _corpus(config)]
    populate = DiagramCompiler(disk_cache=cache_dir)
    with suspended_plan():
        baseline = [
            (a.fingerprint, dict(a.outputs))
            for a in (
                populate.compile(sql, formats=config.formats)
                for sql in corpus
            )
        ]

    plan = _leg_plan(config, CACHE_RULES)
    faulted_compiler = DiagramCompiler(disk_cache=cache_dir)
    with active_plan(plan):
        faulted = [
            (a.fingerprint, dict(a.outputs))
            for a in (
                faulted_compiler.compile(sql, formats=config.formats)
                for sql in corpus
            )
        ]
    disk = faulted_compiler.disk_cache.stats
    return {
        "queries": len(corpus),
        "identical": faulted == baseline,
        "disk_hits": disk.hits,
        "corrupt_evictions": disk.corrupt_evictions,
        "write_errors": disk.write_errors,
        "fault_fires": plan.total_fires(),
    }


async def _serve_round(
    service: CompileService, corpus: list[str], config: ChaosConfig
) -> tuple[list, int]:
    """Fire the corpus; clients retry shed requests.  Returns (payloads,
    number of requests that needed more than one attempt)."""
    payloads = []
    client_retries = 0
    for sql in corpus:
        last: Exception | None = None
        for attempt in range(config.serve_attempts):
            try:
                response = await service.compile(sql, config.formats)
                break
            except ServiceUnavailable as error:
                last = error
        else:
            raise RuntimeError(
                f"request never succeeded in {config.serve_attempts} "
                f"attempts: {last}"
            )
        if attempt:
            client_retries += 1
        payloads.append(response.payload)
    return payloads, client_retries


def _serve_leg(config: ChaosConfig) -> dict:
    corpus = [format_query(query) for query in _corpus(config)]

    async def run() -> dict:
        baseline_service = CompileService()
        try:
            with suspended_plan():
                baseline, _ = await _serve_round(
                    baseline_service, corpus, config
                )
        finally:
            baseline_service.close()

        service = CompileService()
        plan = _leg_plan(config, SERVE_RULES)
        try:
            with active_plan(plan):
                faulted, client_retries = await _serve_round(
                    service, corpus, config
                )
        finally:
            service.close()
        return {
            "requests": len(corpus),
            "identical": faulted == baseline,
            "client_retries": client_retries,
            "compile_retries": service.stats.compile_retries,
            "executor_restarts": service.stats.executor_restarts,
            "fault_fires": plan.total_fires(),
        }

    return asyncio.run(run())


def _pool_leg(config: ChaosConfig) -> dict:
    """Worker-crash differential: SIGKILL one pool worker mid-load.

    The corpus is fired *concurrently* at a small pool whose workers run
    a deterministic per-compile stall (so requests are reliably in flight
    when the kill lands); one worker is SIGKILLed as soon as it has work
    pending.  The supervisor's sibling failover plus the client's 503
    retries must end every request in the fault-free body.
    """
    corpus = [format_query(query) for query in _corpus(config)]

    async def run() -> dict:
        baseline_service = CompileService()
        try:
            with suspended_plan():
                baseline, _ = await _serve_round(
                    baseline_service, corpus, config
                )
        finally:
            baseline_service.close()

        stall_plan = {
            "seed": config.fault_seed,
            "rules": [
                {
                    "point": "serve.compile",
                    "fault": "latency",
                    "latency_s": 0.01,
                }
            ],
        }
        service = PoolService(
            config=ServiceConfig(max_pending=4096, request_timeout=60.0),
            pool_config=PoolConfig(
                workers=config.pool_workers,
                worker_fault_plan=stall_plan,
                min_uptime=0.0,
                backoff_base=0.01,
                backoff_cap=0.1,
            ),
        )
        client_retries = 0
        failed = 0
        try:
            await service.start()

            async def one(sql: str) -> dict | None:
                nonlocal client_retries, failed
                last: Exception | None = None
                for attempt in range(config.serve_attempts):
                    try:
                        response = await service.compile(sql, config.formats)
                    except ServiceUnavailable as error:
                        last = error
                        await asyncio.sleep(0.05)
                        continue
                    if attempt:
                        client_retries += 1
                    return json.loads(response.body)
                failed += 1
                return {"error": str(last)}

            async def assassin() -> int | None:
                # Wait until the victim actually has requests in flight —
                # a kill with nothing pending proves nothing.
                supervisor = service.supervisor
                for _ in range(400):
                    worker = supervisor._slots[0].worker
                    if worker is not None and worker.pending:
                        break
                    await asyncio.sleep(0.005)
                return supervisor.kill_slot(0)

            tasks = [asyncio.ensure_future(one(sql)) for sql in corpus]
            killer = asyncio.ensure_future(assassin())
            faulted = await asyncio.gather(*tasks)
            killed_pid = await killer
            stats = service.supervisor.stats
            return {
                # Deterministic facts: same seeds → byte-identical.
                "requests": len(corpus),
                "workers": config.pool_workers,
                "identical": list(faulted) == baseline,
                "failed_requests": failed,
                "worker_crashes": stats.worker_crashes,
                # Timing-dependent observations: the SIGKILL is real OS
                # concurrency, so *how many* requests were in flight on the
                # victim (failovers, retries) varies run to run.  Keeping
                # them under one key lets the seed-reproducibility test
                # compare everything else exactly.
                "observed": {
                    "killed_pid": killed_pid,
                    "client_retries": client_retries,
                    "worker_restarts": stats.worker_restarts,
                    "failovers": stats.failovers,
                },
            }
        finally:
            service.begin_drain()
            await service.drain(5.0)
            service.close()

    return asyncio.run(run())


def run_chaos(
    config: ChaosConfig | None = None, cache_dir: Path | str | None = None
) -> dict:
    """Run all four legs; ``payload["ok"]`` is the overall verdict."""
    config = config or ChaosConfig()
    engine = _engine_leg(config)
    if cache_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            cache = _cache_leg(config, Path(tmp) / "store")
    else:
        cache = _cache_leg(config, Path(cache_dir))
    serve = _serve_leg(config)
    pool = _pool_leg(config) if config.pool_workers >= 2 else None
    ok = (
        all(leg["identical"] for leg in engine.values())
        and cache["identical"]
        and serve["identical"]
    )
    if pool is not None:
        # The kill must have landed (non-vacuous) and cost no request.
        ok = ok and (
            pool["identical"]
            and pool["failed_requests"] == 0
            and pool["worker_crashes"] > 0
        )
    # A chaos run where nothing fired proves nothing: require injection.
    fired = (
        sum(leg["fault_fires"] for leg in engine.values())
        + cache["fault_fires"]
        + serve["fault_fires"]
    )
    payload = {
        "ok": ok and fired > 0,
        "fault_fires": fired,
        "engine": engine,
        "cache": cache,
        "serve": serve,
    }
    if pool is not None:
        payload["pool"] = pool
    return payload
