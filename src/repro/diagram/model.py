"""The QueryVis diagram model (Section 4).

A diagram consists of exactly the marks described in the paper:

* **table composite marks** (:class:`DiagramTable`) — a header row with the
  table name plus one row per relevant attribute, selection predicate,
  GROUP BY attribute or aggregate;
* a distinguished **SELECT table** listing the query's output attributes;
* **bounding boxes** (:class:`BoundingBox`) — dashed for ∄ and double-lined
  for ∀ — enclosing the tables of a quantified query block;
* **lines/arrows** (:class:`Edge`) between attribute rows for join
  predicates, labelled with the comparison operator unless it is an equijoin.

The model is purely structural: layout and styling belong to
:mod:`repro.render`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class RowKind(enum.Enum):
    """The kinds of rows a table composite mark can contain."""

    ATTRIBUTE = "attribute"
    SELECTION = "selection"  # yellow background: ``Name = 'AC/DC'``
    GROUP_BY = "group_by"  # gray background (Appendix C.3 extension)
    AGGREGATE = "aggregate"  # e.g. ``SUM(Quantity)``
    ORDER_BY = "order_by"  # ranked-output key on the SELECT table: ``Name ↓``
    LIMIT = "limit"  # ranked-output cutoff on the SELECT table: ``LIMIT 10``


class BoxStyle(enum.Enum):
    """Visual style of a bounding box, one per quantifier it encodes."""

    NOT_EXISTS = "dashed"
    FOR_ALL = "double"

    @property
    def symbol(self) -> str:
        return "∄" if self is BoxStyle.NOT_EXISTS else "∀"


@dataclass(frozen=True)
class TableRow:
    """One row of a table composite mark.

    ``key`` identifies the row for edge endpoints (the lower-cased attribute
    name for attribute / GROUP BY rows, the full label for selection and
    aggregate rows).
    """

    kind: RowKind
    label: str
    key: str


@dataclass(frozen=True)
class DiagramTable:
    """A table composite mark (or the SELECT table when ``is_select``)."""

    table_id: str
    name: str
    alias: str | None
    rows: tuple[TableRow, ...]
    is_select: bool = False

    def row(self, key: str) -> TableRow:
        lowered = key.lower()
        for row in self.rows:
            if row.key.lower() == lowered:
                return row
        raise KeyError(f"table {self.table_id} has no row {key!r}")

    def has_row(self, key: str) -> bool:
        lowered = key.lower()
        return any(row.key.lower() == lowered for row in self.rows)

    def row_keys(self) -> tuple[str, ...]:
        return tuple(row.key for row in self.rows)


@dataclass(frozen=True)
class BoundingBox:
    """A quantifier bounding box enclosing the tables of one query block."""

    box_id: str
    style: BoxStyle
    table_ids: frozenset[str]

    @property
    def quantifier_symbol(self) -> str:
        return self.style.symbol


@dataclass(frozen=True)
class Endpoint:
    """One end of an edge: a specific row of a specific table."""

    table_id: str
    row_key: str


@dataclass(frozen=True)
class Edge:
    """A line mark between two rows, optionally directed and labelled.

    ``operator`` is ``None`` for equijoins (which are rendered unlabelled,
    Section 4.3.1); for any other operator the label reads
    ``source.row operator target.row``.
    """

    source: Endpoint
    target: Endpoint
    operator: str | None = None
    directed: bool = False

    def touches(self, table_id: str) -> bool:
        return table_id in (self.source.table_id, self.target.table_id)


@dataclass(frozen=True)
class Diagram:
    """A complete QueryVis diagram."""

    tables: tuple[DiagramTable, ...]
    boxes: tuple[BoundingBox, ...]
    edges: tuple[Edge, ...]
    select_table_id: str
    metadata: dict[str, str] = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def table(self, table_id: str) -> DiagramTable:
        for table in self.tables:
            if table.table_id == table_id:
                return table
        raise KeyError(f"no table with id {table_id!r}")

    def has_table(self, table_id: str) -> bool:
        return any(table.table_id == table_id for table in self.tables)

    @property
    def select_table(self) -> DiagramTable:
        return self.table(self.select_table_id)

    def data_tables(self) -> tuple[DiagramTable, ...]:
        """All table marks except the SELECT table."""
        return tuple(table for table in self.tables if not table.is_select)

    def box_of(self, table_id: str) -> BoundingBox | None:
        """The bounding box containing ``table_id``, or None."""
        for box in self.boxes:
            if table_id in box.table_ids:
                return box
        return None

    def unboxed_table_ids(self) -> frozenset[str]:
        """Data tables not enclosed by any bounding box."""
        boxed: set[str] = set()
        for box in self.boxes:
            boxed.update(box.table_ids)
        return frozenset(
            table.table_id for table in self.data_tables() if table.table_id not in boxed
        )

    def edges_of(self, table_id: str) -> tuple[Edge, ...]:
        return tuple(edge for edge in self.edges if edge.touches(table_id))

    def join_edges(self) -> tuple[Edge, ...]:
        """Edges between two data tables (excludes SELECT-table edges)."""
        return tuple(
            edge
            for edge in self.edges
            if self.select_table_id not in (edge.source.table_id, edge.target.table_id)
        )

    def select_edges(self) -> tuple[Edge, ...]:
        return tuple(
            edge
            for edge in self.edges
            if self.select_table_id in (edge.source.table_id, edge.target.table_id)
        )

    # ------------------------------------------------------------------ #
    # reading order (Section 4.6)
    # ------------------------------------------------------------------ #

    def reading_order(self) -> list[str]:
        """Table ids in reading order.

        Reading starts from the SELECT table and follows arrows depth-first;
        whenever the traversal exhausts its frontier it restarts from an
        unvisited source table (one with no incoming arrows), and finally
        visits any remaining tables.  For the unique-set query this yields
        L1, L2, L3, L4 then L5, L6 (footnote 1 of the paper).
        """
        successors: dict[str, list[str]] = {table.table_id: [] for table in self.tables}
        incoming: dict[str, int] = {table.table_id: 0 for table in self.tables}
        for edge in self.edges:
            source, target = edge.source.table_id, edge.target.table_id
            if source == target:
                continue
            if edge.directed:
                successors[source].append(target)
                incoming[target] += 1
            else:
                successors[source].append(target)
                successors[target].append(source)
        order: list[str] = []
        visited: set[str] = set()

        def visit(table_id: str) -> None:
            if table_id in visited:
                return
            visited.add(table_id)
            order.append(table_id)
            for nxt in successors[table_id]:
                visit(nxt)

        visit(self.select_table_id)
        # Restart from unvisited source nodes (no incoming arrows).
        for table in self.tables:
            if table.table_id not in visited and incoming[table.table_id] == 0:
                visit(table.table_id)
        for table in self.tables:
            visit(table.table_id)
        return order

    # ------------------------------------------------------------------ #
    # iteration helpers
    # ------------------------------------------------------------------ #

    def iter_rows(self) -> Iterator[tuple[DiagramTable, TableRow]]:
        for table in self.tables:
            for row in table.rows:
                yield table, row

    def __len__(self) -> int:
        """Total number of visual element marks (see diagram.metrics)."""
        return len(self.tables) + sum(len(t.rows) for t in self.tables) + len(
            self.edges
        ) + len(self.boxes)
