"""Structural validation of QueryVis diagrams.

These checks encode the well-formedness conditions implied by the design in
Section 4: every edge endpoint must exist, bounding boxes must be disjoint
and non-empty, exactly one SELECT table must exist and it must never sit
inside a box, and the SELECT table must only be connected by undirected,
unlabelled edges.  They are used by the property-based tests to assert that
every diagram the builder produces is well-formed.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import Diagram


class InvalidDiagramError(Exception):
    """The diagram violates a structural well-formedness condition."""


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of :func:`validate_diagram` in non-raising mode."""

    problems: tuple[str, ...]

    @property
    def is_valid(self) -> bool:
        return not self.problems


def validate_diagram(diagram: Diagram, raise_on_error: bool = True) -> ValidationReport:
    """Check all structural invariants of ``diagram``."""
    problems: list[str] = []
    _check_tables(diagram, problems)
    _check_boxes(diagram, problems)
    _check_edges(diagram, problems)
    report = ValidationReport(problems=tuple(problems))
    if raise_on_error and problems:
        raise InvalidDiagramError("; ".join(problems))
    return report


def _check_tables(diagram: Diagram, problems: list[str]) -> None:
    ids = [table.table_id for table in diagram.tables]
    if len(ids) != len(set(ids)):
        problems.append("duplicate table ids")
    select_tables = [table for table in diagram.tables if table.is_select]
    if len(select_tables) != 1:
        problems.append(f"expected exactly one SELECT table, found {len(select_tables)}")
    elif select_tables[0].table_id != diagram.select_table_id:
        problems.append("select_table_id does not point at the SELECT table")
    for table in diagram.tables:
        keys = [row.key.lower() for row in table.rows]
        if len(keys) != len(set(keys)):
            problems.append(f"table {table.table_id} has duplicate row keys")


def _check_boxes(diagram: Diagram, problems: list[str]) -> None:
    seen: set[str] = set()
    for box in diagram.boxes:
        if not box.table_ids:
            problems.append(f"box {box.box_id} is empty")
        overlap = seen & set(box.table_ids)
        if overlap:
            problems.append(f"tables {sorted(overlap)} appear in more than one box")
        seen.update(box.table_ids)
        for table_id in box.table_ids:
            if not diagram.has_table(table_id):
                problems.append(f"box {box.box_id} references unknown table {table_id}")
            elif diagram.table(table_id).is_select:
                problems.append("the SELECT table may not be inside a bounding box")


def _check_edges(diagram: Diagram, problems: list[str]) -> None:
    for edge in diagram.edges:
        for endpoint in (edge.source, edge.target):
            if not diagram.has_table(endpoint.table_id):
                problems.append(f"edge references unknown table {endpoint.table_id}")
                continue
            table = diagram.table(endpoint.table_id)
            if not table.has_row(endpoint.row_key):
                problems.append(
                    f"edge references unknown row {endpoint.row_key!r} of "
                    f"table {endpoint.table_id}"
                )
        touches_select = diagram.select_table_id in (
            edge.source.table_id,
            edge.target.table_id,
        )
        if touches_select and (edge.directed or edge.operator is not None):
            problems.append("SELECT-table edges must be undirected and unlabelled")
        if edge.source == edge.target:
            problems.append("self-loop edge")
