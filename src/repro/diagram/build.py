"""Logic Tree → QueryVis diagram construction (Section 4.7, Appendix A).

The construction follows the four steps of Appendix A:

1. create a table composite mark for every table of every Logic Tree node;
2. create a bounding box per quantified block (dashed for ∄, double for ∀;
   ∃ blocks are drawn without a box);
3. write selection predicates, GROUP BY attributes and aggregates as extra
   rows of the referencing table;
4. create edges for join predicates, with direction determined *solely* by
   the arrow rules:

   * both tables in the same block              → undirected;
   * nesting depths differ by exactly one       → arrow from the shallower
     to the deeper table;
   * nesting depths differ by more than one     → arrow from the deeper to
     the shallower table;

   and the operator label oriented so that it reads ``source op target``
   (rewriting e.g. ``A.x > B.y`` into ``B.y < A.x`` when the arrow must go
   from B to A, Section 4.5.1).

Finally the SELECT table is added with undirected edges to the selected
attributes.

Before the construction, existential blocks are *flattened* into their parent
block when the parent is not a ∀ block — ``∃S.(P ∧ ∃T.Q) ≡ ∃S,T.(P ∧ Q)`` —
which is why IN/EXISTS subqueries do not clutter the diagram with boxes.
"""

from __future__ import annotations

from ..catalog.schema import Schema
from ..sql.ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    FLIPPED_OP,
    Literal,
    SelectQuery,
    TableRef,
)
from ..logic.errors import TranslationError
from ..logic.logic_tree import LogicTree, LogicTreeNode, Quantifier
from .model import (
    BoundingBox,
    BoxStyle,
    Diagram,
    DiagramTable,
    Edge,
    Endpoint,
    RowKind,
    TableRow,
)

SELECT_TABLE_ID = "__select__"


def sql_to_diagram(
    query: SelectQuery, schema: Schema | None = None, simplify: bool = True
) -> Diagram:
    """Build a QueryVis diagram straight from a parsed SQL query.

    Thin wrapper over the staged pipeline (:mod:`repro.pipeline`); corpus
    callers should use :class:`repro.pipeline.DiagramBatchCompiler` directly
    to share stage caches across queries.
    """
    # Imported lazily: the pipeline consumes build_diagram from this module.
    from ..pipeline.compiler import compile_sql

    return compile_sql(query, schema=schema, simplify=simplify, formats=()).diagram


def build_diagram(tree: LogicTree, schema: Schema | None = None) -> Diagram:
    """Build a QueryVis diagram from a Logic Tree."""
    tree = ensure_unique_aliases(tree)
    tree = flatten_existential_blocks(tree)
    builder = _DiagramBuilder(tree, schema)
    return builder.build()


# ---------------------------------------------------------------------- #
# Logic Tree pre-processing
# ---------------------------------------------------------------------- #


def ensure_unique_aliases(tree: LogicTree) -> LogicTree:
    """Rename reused table aliases so every alias is unique tree-wide.

    Trees without alias collisions — the overwhelmingly common case — are
    returned unchanged (same object), so the cold compile path does not pay
    a full tree copy just to discover there was nothing to rename.
    """
    used: set[str] = set()
    new_root = _unique_aliases_node(tree.root, used)
    if new_root is tree.root:
        return tree
    return tree.with_root(new_root)


def _unique_aliases_node(node: LogicTreeNode, used: set[str]) -> LogicTreeNode:
    renames: dict[str, str] = {}
    new_tables: list[TableRef] = []
    for table in node.tables:
        alias = table.effective_alias
        if alias.lower() in used:
            suffix = 2
            while f"{alias}_{suffix}".lower() in used:
                suffix += 1
            new_alias = f"{alias}_{suffix}"
            renames[alias.lower()] = new_alias
            table = TableRef(name=table.name, alias=new_alias)
            alias = new_alias
        used.add(alias.lower())
        new_tables.append(table)
    if renames:
        node = LogicTreeNode(
            tuple(new_tables), node.predicates, node.quantifier, node.children
        )
        node = _rename_aliases(node, renames)
    children = tuple(_unique_aliases_node(child, used) for child in node.children)
    if children == node.children and not renames:
        return node
    return node.with_children(children)


def _rename_aliases(node: LogicTreeNode, renames: dict[str, str]) -> LogicTreeNode:
    """Rewrite column references for renamed aliases in ``node`` and below."""

    def rename_column(column: ColumnRef) -> ColumnRef:
        if column.table is not None and column.table.lower() in renames:
            return ColumnRef(renames[column.table.lower()], column.column)
        return column

    def rename_predicate(predicate: Comparison) -> Comparison:
        left = rename_column(predicate.left) if isinstance(predicate.left, ColumnRef) else predicate.left
        right = rename_column(predicate.right) if isinstance(predicate.right, ColumnRef) else predicate.right
        return Comparison(left, predicate.op, right)

    new_predicates = tuple(rename_predicate(p) for p in node.predicates)
    new_children = tuple(_rename_aliases(child, renames) for child in node.children)
    return LogicTreeNode(node.tables, new_predicates, node.quantifier, new_children)


def flatten_existential_blocks(tree: LogicTree) -> LogicTree:
    """Merge ∃ blocks into their parent when the parent is not a ∀ block.

    ``∃S.(P ∧ ∃T.Q) ≡ ∃S,T.(P ∧ Q)`` and ``¬∃S.(P ∧ ∃T.Q) ≡ ¬∃S,T.(P ∧ Q)``,
    so flattening preserves semantics; it is what makes IN/EXISTS subqueries
    appear as plain joins in the diagram (Fig. 6 of the paper draws the
    tables of the NOT EXISTS block inside a single dashed box).

    Trees without ∃ children anywhere are returned unchanged (same object).
    """
    new_root = _flatten_node(tree.root)
    if new_root is tree.root:
        return tree
    return tree.with_root(new_root)


def _flatten_node(node: LogicTreeNode) -> LogicTreeNode:
    children = tuple(_flatten_node(child) for child in node.children)
    if node.quantifier is Quantifier.FOR_ALL:
        if children == node.children:
            return node
        return node.with_children(children)
    if not any(child.quantifier is Quantifier.EXISTS for child in children):
        if children == node.children:
            return node
        return node.with_children(children)
    merged_tables = list(node.tables)
    merged_predicates = list(node.predicates)
    new_children: list[LogicTreeNode] = []
    for child in children:
        if child.quantifier is Quantifier.EXISTS:
            merged_tables.extend(child.tables)
            merged_predicates.extend(child.predicates)
            new_children.extend(child.children)
        else:
            new_children.append(child)
    return LogicTreeNode(
        tuple(merged_tables),
        tuple(merged_predicates),
        node.quantifier,
        tuple(new_children),
    )


# ---------------------------------------------------------------------- #
# the builder
# ---------------------------------------------------------------------- #


class _DiagramBuilder:
    def __init__(self, tree: LogicTree, schema: Schema | None) -> None:
        self._tree = tree
        self._schema = schema
        self._depth_of_alias: dict[str, int] = {}
        self._node_of_alias: dict[str, LogicTreeNode] = {}
        self._table_name_of_alias: dict[str, str] = {}
        self._parent_child: set[tuple[int, int]] = set()
        self._rows: dict[str, list[TableRow]] = {}
        self._table_id_of_alias: dict[str, str] = {}
        self._index_tree()

    # -------------------------- indexing ----------------------------- #

    def _index_tree(self) -> None:
        node_ids: dict[int, int] = {}
        for index, (node, depth) in enumerate(self._tree.iter_with_depth()):
            node_ids[id(node)] = index
            for table in node.tables:
                alias = table.effective_alias.lower()
                if alias in self._depth_of_alias:
                    raise TranslationError(
                        f"table alias {table.effective_alias!r} is defined twice"
                    )
                self._depth_of_alias[alias] = depth
                self._node_of_alias[alias] = node
                self._table_name_of_alias[alias] = table.name
                self._table_id_of_alias[alias] = table.effective_alias
                self._rows[alias] = []

    # --------------------------- building ---------------------------- #

    def build(self) -> Diagram:
        join_edges = self._collect_rows_and_edges()
        select_rows, select_edges = self._build_select()
        tables = [self._make_select_table(select_rows)]
        for node, _depth in self._tree.iter_with_depth():
            for table in node.tables:
                alias = table.effective_alias.lower()
                tables.append(
                    DiagramTable(
                        table_id=self._table_id_of_alias[alias],
                        name=table.name,
                        alias=table.alias,
                        rows=tuple(self._rows[alias]),
                    )
                )
        boxes = self._build_boxes()
        metadata = {
            f"depth.{self._table_id_of_alias[alias]}": str(depth)
            for alias, depth in self._depth_of_alias.items()
        }
        # Machine-readable order spec (the τ/LIMIT rows are presentation):
        # lets diagram consumers and the inverse reader recover the ranking.
        if self._tree.distinct:
            metadata["distinct"] = "1"
        if self._tree.order_by:
            metadata["order_by"] = ",".join(
                f"{item.column}{' desc' if item.descending else ''}"
                for item in self._tree.order_by
            )
        if self._tree.limit is not None:
            metadata["limit"] = str(self._tree.limit)
            if self._tree.offset:
                metadata["offset"] = str(self._tree.offset)
        return Diagram(
            tables=tuple(tables),
            boxes=tuple(boxes),
            edges=tuple(select_edges + join_edges),
            select_table_id=SELECT_TABLE_ID,
            metadata=metadata,
        )

    # ------------------------ rows and edges -------------------------- #

    def _collect_rows_and_edges(self) -> list[Edge]:
        edges: list[Edge] = []
        for node, _depth in self._tree.iter_with_depth():
            for predicate in node.predicates:
                if predicate.is_join:
                    edges.append(self._join_edge(predicate, node))
                else:
                    self._add_selection_row(predicate, node)
        for column in self._tree.group_by:
            alias = self._resolve_alias(column, self._tree.root)
            self._ensure_attribute_row(alias, column.column, kind=RowKind.GROUP_BY)
        return edges

    def _join_edge(self, predicate: Comparison, node: LogicTreeNode) -> Edge:
        left: ColumnRef = predicate.left  # type: ignore[assignment]
        right: ColumnRef = predicate.right  # type: ignore[assignment]
        left_alias = self._resolve_alias(left, node)
        right_alias = self._resolve_alias(right, node)
        self._ensure_attribute_row(left_alias, left.column)
        self._ensure_attribute_row(right_alias, right.column)
        left_depth = self._depth_of_alias[left_alias]
        right_depth = self._depth_of_alias[right_alias]
        op = predicate.op
        if left_depth == right_depth:
            directed = False
            source_alias, source_col = left_alias, left.column
            target_alias, target_col = right_alias, right.column
        else:
            directed = True
            diff = abs(left_depth - right_depth)
            if diff == 1:
                source_is_left = left_depth < right_depth
            else:
                source_is_left = left_depth > right_depth
            if source_is_left:
                source_alias, source_col = left_alias, left.column
                target_alias, target_col = right_alias, right.column
            else:
                source_alias, source_col = right_alias, right.column
                target_alias, target_col = left_alias, left.column
                op = FLIPPED_OP[op]
        return Edge(
            source=Endpoint(self._table_id_of_alias[source_alias], source_col.lower()),
            target=Endpoint(self._table_id_of_alias[target_alias], target_col.lower()),
            operator=None if op == "=" else op,
            directed=directed,
        )

    def _add_selection_row(self, predicate: Comparison, node: LogicTreeNode) -> None:
        normalized = predicate.normalized_selection()
        column: ColumnRef = normalized.left  # type: ignore[assignment]
        literal: Literal = normalized.right  # type: ignore[assignment]
        alias = self._resolve_alias(column, node)
        label = f"{column.column} {normalized.op} {literal}"
        rows = self._rows[alias]
        if not any(row.key.lower() == label.lower() for row in rows):
            rows.append(TableRow(kind=RowKind.SELECTION, label=label, key=label))

    def _ensure_attribute_row(
        self, alias: str, column: str, kind: RowKind = RowKind.ATTRIBUTE
    ) -> None:
        rows = self._rows[alias]
        for index, row in enumerate(rows):
            if row.key.lower() == column.lower() and row.kind in (
                RowKind.ATTRIBUTE,
                RowKind.GROUP_BY,
            ):
                if kind is RowKind.GROUP_BY and row.kind is RowKind.ATTRIBUTE:
                    rows[index] = TableRow(kind=RowKind.GROUP_BY, label=row.label, key=row.key)
                return
        rows.append(TableRow(kind=kind, label=column, key=column))

    # ---------------------------- SELECT ------------------------------ #

    def _build_select(self) -> tuple[list[TableRow], list[Edge]]:
        rows, edges = self._build_select_items()
        # Ranked-output notation: ORDER BY keys become τ rows of the SELECT
        # table (reading "sorted by", direction arrows matching SQL), and
        # LIMIT/OFFSET one cutoff row — output modifiers, so they live on
        # the output table rather than on any data table.
        for position, item in enumerate(self._tree.order_by):
            arrow = "↓" if item.descending else "↑"
            label = f"{item.column.column} {arrow}"
            rows.append(
                TableRow(kind=RowKind.ORDER_BY, label=label, key=f"order:{position}")
            )
            if isinstance(item.column, ColumnRef):
                alias = self._resolve_alias(item.column, self._tree.root)
                self._ensure_attribute_row(alias, item.column.column)
        if self._tree.limit is not None:
            label = f"LIMIT {self._tree.limit}"
            if self._tree.offset:
                label += f" OFFSET {self._tree.offset}"
            rows.append(TableRow(kind=RowKind.LIMIT, label=label, key="limit"))
        return rows, edges

    def _build_select_items(self) -> tuple[list[TableRow], list[Edge]]:
        rows: list[TableRow] = []
        edges: list[Edge] = []
        for item in self._tree.select_items:
            if isinstance(item, ColumnRef):
                alias = self._resolve_alias(item, self._tree.root)
                self._ensure_attribute_row(alias, item.column)
                key = item.column
                rows.append(TableRow(kind=RowKind.ATTRIBUTE, label=item.column, key=key))
                edges.append(
                    Edge(
                        source=Endpoint(SELECT_TABLE_ID, key.lower()),
                        target=Endpoint(
                            self._table_id_of_alias[alias], item.column.lower()
                        ),
                        operator=None,
                        directed=False,
                    )
                )
            elif isinstance(item, AggregateCall):
                label = str(item)
                rows.append(TableRow(kind=RowKind.AGGREGATE, label=label, key=label))
                if isinstance(item.argument, ColumnRef):
                    alias = self._resolve_alias(item.argument, self._tree.root)
                    agg_rows = self._rows[alias]
                    simple_label = f"{item.func}({item.argument.column})"
                    if not any(r.key.lower() == simple_label.lower() for r in agg_rows):
                        agg_rows.append(
                            TableRow(
                                kind=RowKind.AGGREGATE,
                                label=simple_label,
                                key=simple_label,
                            )
                        )
                    edges.append(
                        Edge(
                            source=Endpoint(SELECT_TABLE_ID, label.lower()),
                            target=Endpoint(
                                self._table_id_of_alias[alias], simple_label.lower()
                            ),
                            operator=None,
                            directed=False,
                        )
                    )
            else:  # pragma: no cover - excluded by the translator
                raise TranslationError(f"unexpected select item {item!r}")
        return rows, edges

    def _make_select_table(self, rows: list[TableRow]) -> DiagramTable:
        return DiagramTable(
            table_id=SELECT_TABLE_ID,
            name="SELECT",
            alias=None,
            rows=tuple(rows),
            is_select=True,
        )

    # ---------------------------- boxes ------------------------------- #

    def _build_boxes(self) -> list[BoundingBox]:
        boxes: list[BoundingBox] = []
        counter = 0
        for node, depth in self._tree.iter_with_depth():
            if depth == 0 or node.quantifier is Quantifier.EXISTS:
                continue
            style = (
                BoxStyle.NOT_EXISTS
                if node.quantifier is Quantifier.NOT_EXISTS
                else BoxStyle.FOR_ALL
            )
            table_ids = frozenset(
                self._table_id_of_alias[table.effective_alias.lower()]
                for table in node.tables
            )
            counter += 1
            boxes.append(BoundingBox(box_id=f"box{counter}", style=style, table_ids=table_ids))
        return boxes

    # --------------------------- resolution --------------------------- #

    def _resolve_alias(self, column: ColumnRef, node: LogicTreeNode) -> str:
        """Resolve the (lower-cased) alias that owns ``column``."""
        if column.table is not None:
            alias = column.table.lower()
            if alias not in self._depth_of_alias:
                raise TranslationError(f"unknown table alias {column.table!r}")
            return alias
        # Unqualified column: prefer the defining block's own tables, then
        # fall back to a schema lookup across all tables.
        candidates = [
            table.effective_alias.lower()
            for table in node.tables
            if self._schema is None
            or self._schema.table(table.name).has_attribute(column.column)
        ]
        if self._schema is None and len(node.tables) == 1:
            return node.tables[0].effective_alias.lower()
        if len(candidates) == 1:
            return candidates[0]
        if self._schema is not None:
            everywhere = [
                alias
                for alias, name in self._table_name_of_alias.items()
                if self._schema.table(name).has_attribute(column.column)
            ]
            if len(everywhere) == 1:
                return everywhere[0]
        raise TranslationError(
            f"cannot resolve unqualified column {column.column!r} unambiguously"
        )
