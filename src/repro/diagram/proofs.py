"""Enumeration of the depth-3 path patterns from the unambiguity proof.

Appendix B.1 of the paper names the six possible edge types of a depth-3
path Logic Tree (nodes at depths 0–3):

====  ==================  =========================================
name  connects depths      arrow in the diagram (per the §4.7 rules)
====  ==================  =========================================
A     0 – 1               0 → 1   (parent to child)
B     1 – 2               1 → 2   (parent to child)
C     0 – 2               2 → 0   (difference > 1: deeper to shallower)
D     2 – 3               2 → 3   (parent to child; always present)
E     1 – 3               3 → 1   (difference > 1)
F     0 – 3               3 → 0   (difference > 1)
====  ==================  =========================================

and partitions the 16 valid patterns into three families: ⟨A,B⟩ (8 patterns,
C/E/F optional), ⟨A,B̄⟩ (4 patterns, E forced, C/F optional) and ⟨Ā⟩
(4 patterns, B and C forced, E/F optional).  :func:`enumerate_valid_path_patterns`
materialises each pattern as a synthetic Logic Tree so the recovery algorithm
can be exercised on exactly the case analysis of the proof.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from ..sql.ast import ColumnRef, Comparison, TableRef
from ..logic.logic_tree import LogicTree, LogicTreeNode, Quantifier

#: Edge name -> (shallower depth, deeper depth)
PATH_EDGES: dict[str, tuple[int, int]] = {
    "A": (0, 1),
    "B": (1, 2),
    "C": (0, 2),
    "D": (2, 3),
    "E": (1, 3),
    "F": (0, 3),
}


def pattern_families() -> dict[str, list[frozenset[str]]]:
    """The three families of valid depth-3 path patterns (Appendix B.1)."""
    families: dict[str, list[frozenset[str]]] = {"<A,B>": [], "<A,~B>": [], "<~A>": []}
    # <A,B>: A, B, D present; any subset of {C, E, F}.
    for extra in _subsets(("C", "E", "F")):
        families["<A,B>"].append(frozenset({"A", "B", "D", *extra}))
    # <A,~B>: A present, B absent; D and E forced; any subset of {C, F}.
    for extra in _subsets(("C", "F")):
        families["<A,~B>"].append(frozenset({"A", "D", "E", *extra}))
    # <~A>: A absent; B, C and D forced; any subset of {E, F}.
    for extra in _subsets(("E", "F")):
        families["<~A>"].append(frozenset({"B", "C", "D", *extra}))
    return families


def enumerate_valid_path_patterns() -> list[tuple[str, frozenset[str], LogicTree]]:
    """All 16 valid depth-3 path patterns as (family, edge set, Logic Tree)."""
    patterns: list[tuple[str, frozenset[str], LogicTree]] = []
    for family, edge_sets in pattern_families().items():
        for edges in edge_sets:
            patterns.append((family, edges, build_path_logic_tree(edges)))
    return patterns


def build_path_logic_tree(edges: frozenset[str], depth: int = 3) -> LogicTree:
    """Build a synthetic path Logic Tree realising the given edge set.

    Each depth gets one single-attribute table ``T<d>`` aliased ``t<d>``; a
    pattern edge between depths *i* < *j* becomes an equality predicate in
    the deeper block *j* (predicates are placed "where they belong",
    Section 5.1).
    """
    predicates_by_depth: dict[int, list[Comparison]] = {d: [] for d in range(depth + 1)}
    for name in sorted(edges):
        shallow, deep = PATH_EDGES[name]
        if deep > depth:
            raise ValueError(f"edge {name} exceeds requested depth {depth}")
        predicates_by_depth[deep].append(
            Comparison(
                ColumnRef(f"t{deep}", "a"), "=", ColumnRef(f"t{shallow}", "a")
            )
        )

    def make_node(d: int) -> LogicTreeNode:
        children = (make_node(d + 1),) if d < depth else ()
        return LogicTreeNode(
            tables=(TableRef(name=f"T{d}", alias=f"t{d}"),),
            predicates=tuple(predicates_by_depth[d]),
            quantifier=None if d == 0 else Quantifier.NOT_EXISTS,
            children=children,
        )

    root = make_node(0)
    return LogicTree(root=root, select_items=(ColumnRef("t0", "a"),))


def _subsets(items: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
    for size in range(len(items) + 1):
        yield from combinations(items, size)
