"""Logical pattern signatures for diagrams (Section 1.1, Appendix G).

The same logical pattern — e.g. "x is related to *no* / *only* / *all* y of
kind z" — produces the same diagram shape regardless of schema: sailors
reserving red boats, students taking art classes and actors playing in
Hitchcock movies all map to the same three diagrams (Figs. 25/26).

:func:`pattern_signature` canonicalises a diagram by abstracting away table
names, attribute names and constant values while keeping everything that
carries logic: the grouping of tables into quantifier boxes, the edges with
their directions and operator labels, the presence of constant
qualifications, and which table the SELECT box points at.  Two queries have
the same underlying logical pattern exactly when their signatures are equal.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .model import Diagram, RowKind


@dataclass(frozen=True)
class PatternSignature:
    """A canonical, schema-independent fingerprint of a diagram."""

    text: str

    @property
    def digest(self) -> str:
        return hashlib.sha256(self.text.encode("utf-8")).hexdigest()[:16]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PatternSignature) and self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)


def pattern_signature(diagram: Diagram) -> PatternSignature:
    """Compute the canonical pattern signature of ``diagram``."""
    table_index = _canonical_table_indices(diagram)
    row_index = _canonical_row_indices(diagram, table_index)

    table_parts = []
    for table in sorted(diagram.tables, key=lambda t: table_index[t.table_id]):
        kinds = []
        for row in table.rows:
            if row.kind is RowKind.SELECTION:
                kinds.append("const")
            elif row.kind is RowKind.GROUP_BY:
                kinds.append("group")
            elif row.kind is RowKind.AGGREGATE:
                kinds.append("agg")
            else:
                kinds.append("attr")
        role = "select" if table.is_select else "table"
        table_parts.append(f"{role}#{table_index[table.table_id]}({','.join(kinds)})")

    box_parts = []
    for box in diagram.boxes:
        members = sorted(table_index[table_id] for table_id in box.table_ids)
        box_parts.append(f"{box.style.value}{members}")
    box_parts.sort()

    edge_parts = []
    for edge in diagram.edges:
        source = (
            table_index[edge.source.table_id],
            row_index[(edge.source.table_id, edge.source.row_key.lower())],
        )
        target = (
            table_index[edge.target.table_id],
            row_index[(edge.target.table_id, edge.target.row_key.lower())],
        )
        direction = "->" if edge.directed else "--"
        operator = edge.operator or "="
        edge_parts.append(f"{source}{direction}{target}[{operator}]")
    edge_parts.sort()

    text = " | ".join(
        ["T:" + " ".join(table_parts), "B:" + " ".join(box_parts), "E:" + " ".join(edge_parts)]
    )
    return PatternSignature(text=text)


def same_pattern(left: Diagram, right: Diagram) -> bool:
    """True when the two diagrams share the same logical pattern."""
    return pattern_signature(left) == pattern_signature(right)


# ---------------------------------------------------------------------- #
# canonical numbering
# ---------------------------------------------------------------------- #


def _canonical_table_indices(diagram: Diagram) -> dict[str, int]:
    """Number tables by reading order (SELECT box first) for stability."""
    order = diagram.reading_order()
    return {table_id: index for index, table_id in enumerate(order)}


def _canonical_row_indices(
    diagram: Diagram, table_index: dict[str, int]
) -> dict[tuple[str, str], int]:
    mapping: dict[tuple[str, str], int] = {}
    for table in diagram.tables:
        for position, row in enumerate(table.rows):
            mapping[(table.table_id, row.key.lower())] = position
    return mapping
