"""Diagram → Logic Tree recovery and the unambiguity check (Section 5, App. B).

QueryVis deliberately does not draw the nesting hierarchy explicitly; the
paper proves that for *valid* diagrams (generated from non-degenerate queries
of depth ≤ 3) the hierarchy — and therefore the unique Logic Tree — can be
recovered from the arrow directions alone.

This module implements that recovery:

* :func:`consistent_logic_trees` enumerates every candidate nesting hierarchy
  over the diagram's table groups and keeps those that (a) would regenerate
  exactly the observed arrow directions under the §4.7 arrow rules,
  (b) respect nesting depth ≤ 3, and (c) satisfy the connectedness property
  (Property 5.2).  For a valid diagram exactly one candidate survives —
  which is precisely Proposition 5.1.
* :func:`recover_logic_tree` returns that unique Logic Tree (raising
  :class:`AmbiguousDiagramError` otherwise), reconstructing tables,
  predicates, quantifiers and the SELECT list from the diagram content.
* :func:`logic_trees_match` compares two Logic Trees up to predicate order
  and orientation — used to verify the round trip LT → diagram → LT.

The recovery operates on diagrams built *without* the ∀ simplification (every
non-root block is a dashed ∄ box), which is the setting of the proof in
Appendix B.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..sql.ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    FLIPPED_OP,
    Literal,
    OrderItem,
    TableRef,
)
from ..logic.logic_tree import LogicTree, LogicTreeNode, Quantifier
from ..sql.lexer import tokenize
from ..sql.tokens import TokenType
from .model import BoxStyle, Diagram, Edge, RowKind

#: Maximum nesting depth covered by the proof (Section 5.2).
MAX_DEPTH = 3


class AmbiguousDiagramError(Exception):
    """The diagram admits zero or more than one consistent Logic Tree."""


@dataclass(frozen=True)
class _Group:
    """One query block as visible in the diagram: a box or the root group."""

    group_id: str
    table_ids: frozenset[str]
    quantifier: Quantifier | None  # None for the root group


# ---------------------------------------------------------------------- #
# group extraction
# ---------------------------------------------------------------------- #


def diagram_groups(diagram: Diagram) -> list[_Group]:
    """Extract the table groups of ``diagram`` (root group first)."""
    root_tables = diagram.unboxed_table_ids()
    if not root_tables:
        raise AmbiguousDiagramError("diagram has no unboxed root tables")
    groups = [_Group(group_id="root", table_ids=root_tables, quantifier=None)]
    for box in diagram.boxes:
        quantifier = (
            Quantifier.NOT_EXISTS if box.style is BoxStyle.NOT_EXISTS else Quantifier.FOR_ALL
        )
        groups.append(
            _Group(group_id=box.box_id, table_ids=box.table_ids, quantifier=quantifier)
        )
    return groups


def _group_of_table(groups: list[_Group]) -> dict[str, int]:
    mapping: dict[str, int] = {}
    for index, group in enumerate(groups):
        for table_id in group.table_ids:
            mapping[table_id] = index
    return mapping


# ---------------------------------------------------------------------- #
# candidate enumeration
# ---------------------------------------------------------------------- #


def consistent_logic_trees(
    diagram: Diagram,
    *,
    require_connected: bool = True,
    use_directions: bool = True,
    max_depth: int = MAX_DEPTH,
) -> list[dict[int, int]]:
    """Enumerate parent assignments consistent with the diagram.

    Returns a list of mappings ``group index -> parent group index`` (the
    root group, index 0, is never a key).  ``use_directions=False`` ignores
    the observed arrow directions; this is the ablation showing that without
    the arrow rules the diagram becomes ambiguous.
    """
    groups = diagram_groups(diagram)
    group_of = _group_of_table(groups)
    join_edges = diagram.join_edges()
    candidates: list[dict[int, int]] = []
    non_root = list(range(1, len(groups)))
    if not non_root:
        return [{}]
    for parents in product(range(len(groups)), repeat=len(non_root)):
        assignment = dict(zip(non_root, parents))
        if not _is_tree(assignment, len(groups)):
            continue
        depths = _depths(assignment, len(groups))
        if max(depths.values()) > max_depth:
            continue
        if not _edges_consistent(
            join_edges, group_of, assignment, depths, use_directions=use_directions
        ):
            continue
        if require_connected and not _connected_property(
            join_edges, group_of, assignment, len(groups)
        ):
            continue
        candidates.append(assignment)
    return candidates


def _is_tree(assignment: dict[int, int], group_count: int) -> bool:
    """True if the parent assignment forms a tree rooted at group 0."""
    for start in assignment:
        seen = {start}
        node = start
        while node != 0:
            node = assignment.get(node, 0)
            if node in seen:
                return False
            seen.add(node)
    return True


def _depths(assignment: dict[int, int], group_count: int) -> dict[int, int]:
    depths = {0: 0}

    def depth(node: int) -> int:
        if node in depths:
            return depths[node]
        depths[node] = depth(assignment[node]) + 1
        return depths[node]

    for node in range(1, group_count):
        depth(node)
    return depths


def _ancestors(node: int, assignment: dict[int, int]) -> set[int]:
    result = set()
    while node != 0:
        node = assignment[node]
        result.add(node)
    return result


def _edges_consistent(
    edges: tuple[Edge, ...],
    group_of: dict[str, int],
    assignment: dict[int, int],
    depths: dict[int, int],
    use_directions: bool,
) -> bool:
    for edge in edges:
        source_group = group_of[edge.source.table_id]
        target_group = group_of[edge.target.table_id]
        if source_group == target_group:
            if use_directions and edge.directed:
                return False
            continue
        # Cross-group predicates can only reference an ancestor block's
        # aliases (scoping), so the two groups must be in an ancestor
        # relationship in any consistent tree.
        if source_group not in _ancestors(target_group, assignment) and (
            target_group not in _ancestors(source_group, assignment)
        ):
            return False
        if not use_directions:
            continue
        source_depth = depths[source_group]
        target_depth = depths[target_group]
        if source_depth == target_depth:
            return False
        diff = abs(source_depth - target_depth)
        if diff == 1:
            expected_source_is_shallower = True
        else:
            expected_source_is_shallower = False
        source_is_shallower = source_depth < target_depth
        if not edge.directed:
            return False
        if source_is_shallower != expected_source_is_shallower:
            return False
    return True


def _connected_property(
    edges: tuple[Edge, ...],
    group_of: dict[str, int],
    assignment: dict[int, int],
    group_count: int,
) -> bool:
    """Property 5.2 on the candidate hierarchy."""
    links: set[tuple[int, int]] = set()
    for edge in edges:
        a = group_of[edge.source.table_id]
        b = group_of[edge.target.table_id]
        if a != b:
            links.add((a, b))
            links.add((b, a))

    children: dict[int, list[int]] = {index: [] for index in range(group_count)}
    for child, parent in assignment.items():
        children[parent].append(child)

    for child, parent in assignment.items():
        if (child, parent) in links:
            continue
        grandchildren = children[child]
        if grandchildren and all(
            (gc, child) in links and (gc, parent) in links for gc in grandchildren
        ):
            continue
        return False
    return True


# ---------------------------------------------------------------------- #
# full Logic Tree reconstruction
# ---------------------------------------------------------------------- #


def recover_logic_tree(diagram: Diagram) -> LogicTree:
    """Recover the unique Logic Tree of a valid (unsimplified) diagram."""
    candidates = consistent_logic_trees(diagram)
    if len(candidates) != 1:
        raise AmbiguousDiagramError(
            f"diagram admits {len(candidates)} consistent logic trees"
        )
    assignment = candidates[0]
    groups = diagram_groups(diagram)
    group_of = _group_of_table(groups)
    depths = _depths(assignment, len(groups))

    predicates_per_group: dict[int, list[Comparison]] = {
        index: [] for index in range(len(groups))
    }
    # Join predicates from edges: a cross-group predicate belongs to the
    # deeper of the two blocks ("as early as possible" placement).
    for edge in diagram.join_edges():
        source_group = group_of[edge.source.table_id]
        target_group = group_of[edge.target.table_id]
        owner = (
            source_group
            if depths[source_group] >= depths[target_group]
            else target_group
        )
        op = edge.operator or "="
        predicate = Comparison(
            ColumnRef(edge.source.table_id, edge.source.row_key),
            op,
            ColumnRef(edge.target.table_id, edge.target.row_key),
        )
        predicates_per_group[owner].append(predicate)
    # Selection predicates from highlighted rows.
    for table in diagram.data_tables():
        for row in table.rows:
            if row.kind is RowKind.SELECTION:
                predicates_per_group[group_of[table.table_id]].append(
                    _parse_selection_row(table.table_id, row.label)
                )

    children_of: dict[int, list[int]] = {index: [] for index in range(len(groups))}
    for child, parent in assignment.items():
        children_of[parent].append(child)

    def build_node(index: int) -> LogicTreeNode:
        group = groups[index]
        tables = tuple(
            TableRef(name=diagram.table(table_id).name, alias=table_id)
            for table_id in sorted(group.table_ids)
        )
        return LogicTreeNode(
            tables=tables,
            predicates=tuple(predicates_per_group[index]),
            quantifier=group.quantifier,
            children=tuple(build_node(child) for child in sorted(children_of[index])),
        )

    root = build_node(0)
    select_items = _recover_select_items(diagram)
    group_by = tuple(
        ColumnRef(table.table_id, row.label)
        for table in diagram.data_tables()
        for row in table.rows
        if row.kind is RowKind.GROUP_BY
    )
    distinct, order_by, limit, offset = _recover_order_spec(diagram)
    return LogicTree(
        root=root,
        select_items=select_items,
        group_by=group_by,
        distinct=distinct,
        order_by=order_by,
        limit=limit,
        offset=offset,
    )


def _recover_order_spec(
    diagram: Diagram,
) -> tuple[bool, tuple[OrderItem, ...], int | None, int]:
    """Read the ranked-output modifiers back out of the diagram metadata."""
    metadata = diagram.metadata
    distinct = metadata.get("distinct") == "1"
    order_by: list[OrderItem] = []
    for part in filter(None, metadata.get("order_by", "").split(",")):
        text = part.strip()
        descending = text.lower().endswith(" desc")
        if descending:
            text = text[: -len(" desc")].strip()
        if "." in text:
            column = ColumnRef(*text.split(".", 1))
        else:
            column = ColumnRef(None, text)
        order_by.append(OrderItem(column=column, descending=descending))
    limit = int(metadata["limit"]) if "limit" in metadata else None
    offset = int(metadata.get("offset", "0"))
    return distinct, tuple(order_by), limit, offset


def _parse_selection_row(table_id: str, label: str) -> Comparison:
    tokens = [t for t in tokenize(label) if t.type is not TokenType.EOF]
    if len(tokens) != 3 or tokens[1].type is not TokenType.OPERATOR:
        raise AmbiguousDiagramError(f"cannot parse selection row {label!r}")
    column = ColumnRef(table_id, tokens[0].value)
    literal_token = tokens[2]
    if literal_token.type is TokenType.NUMBER:
        text = literal_token.value
        value: int | float | str = float(text) if "." in text else int(text)
    else:
        value = literal_token.value
    return Comparison(column, tokens[1].value, Literal(value))


def _recover_select_items(diagram: Diagram) -> tuple[ColumnRef | AggregateCall, ...]:
    items: list[ColumnRef | AggregateCall] = []
    select_edges = {edge.source.row_key: edge for edge in diagram.select_edges()}
    for row in diagram.select_table.rows:
        if row.kind in (RowKind.ORDER_BY, RowKind.LIMIT):
            continue  # ranked-output annotations, not output attributes
        edge = select_edges.get(row.key.lower()) or select_edges.get(row.key)
        if row.kind is RowKind.AGGREGATE:
            func, _, rest = row.label.partition("(")
            argument = rest.rstrip(")")
            column = (
                ColumnRef(None, argument)
                if "." not in argument
                else ColumnRef(*argument.split(".", 1))
            )
            items.append(AggregateCall(func=func, argument=column))
        elif edge is not None:
            items.append(ColumnRef(edge.target.table_id, edge.target.row_key))
        else:
            items.append(ColumnRef(None, row.label))
    return tuple(items)


# ---------------------------------------------------------------------- #
# Logic Tree equivalence (round-trip checking)
# ---------------------------------------------------------------------- #


def logic_trees_match(left: LogicTree, right: LogicTree) -> bool:
    """Structural equivalence up to predicate order/orientation and casing."""
    if _canonical_node(left.root) != _canonical_node(right.root):
        return False
    return _canonical_select(left) == _canonical_select(right)


def _canonical_select(tree: LogicTree) -> tuple:
    items = []
    for item in tree.select_items:
        if isinstance(item, ColumnRef):
            items.append(("col", (item.table or "").lower(), item.column.lower()))
        else:
            argument = item.argument
            arg_text = str(argument).lower()
            items.append(("agg", item.func.lower(), arg_text.split(".")[-1]))
    return tuple(sorted(items))


def _canonical_predicate(predicate: Comparison) -> tuple:
    def operand_key(operand) -> tuple:
        if isinstance(operand, ColumnRef):
            return ("col", (operand.table or "").lower(), operand.column.lower())
        return ("lit", str(operand.value))

    direct = (operand_key(predicate.left), predicate.op, operand_key(predicate.right))
    flipped = (
        operand_key(predicate.right),
        FLIPPED_OP[predicate.op],
        operand_key(predicate.left),
    )
    return min(direct, flipped)


def _canonical_node(node: LogicTreeNode) -> tuple:
    tables = tuple(
        sorted((table.name.lower(), table.effective_alias.lower()) for table in node.tables)
    )
    predicates = tuple(sorted(_canonical_predicate(p) for p in node.predicates))
    children = tuple(sorted(_canonical_node(child) for child in node.children))
    quantifier = node.quantifier.value if node.quantifier else "root"
    return (quantifier, tables, predicates, children)
