"""Visual-complexity metrics for QueryVis diagrams (Section 4.8).

The paper argues that when a query gains nesting, its SQL text grows much
faster than its diagram: Q_only has about 167 % more words than Q_some, but
its diagram has only about 13 % more visual elements (7 % once the ∀
simplification is applied).  We count visual elements as the number of marks
in the diagram — table composite marks, rows, edges and bounding boxes —
which reproduces exactly those ratios for the Fig. 2/3 queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import Diagram, RowKind


@dataclass(frozen=True)
class DiagramMetrics:
    """Counts of the marks making up one diagram."""

    table_count: int
    row_count: int
    edge_count: int
    box_count: int
    arrow_count: int
    label_count: int
    selection_row_count: int

    @property
    def element_count(self) -> int:
        """Total visual elements: tables + rows + edges + boxes (§4.8)."""
        return self.table_count + self.row_count + self.edge_count + self.box_count

    @property
    def ink_count(self) -> int:
        """A finer-grained 'ink' measure including arrowheads and labels."""
        return self.element_count + self.arrow_count + self.label_count


def diagram_metrics(diagram: Diagram) -> DiagramMetrics:
    """Compute :class:`DiagramMetrics` for ``diagram``."""
    row_count = sum(len(table.rows) for table in diagram.tables)
    selection_rows = sum(
        1 for _table, row in diagram.iter_rows() if row.kind is RowKind.SELECTION
    )
    arrow_count = sum(1 for edge in diagram.edges if edge.directed)
    label_count = sum(1 for edge in diagram.edges if edge.operator is not None)
    return DiagramMetrics(
        table_count=len(diagram.tables),
        row_count=row_count,
        edge_count=len(diagram.edges),
        box_count=len(diagram.boxes),
        arrow_count=arrow_count,
        label_count=label_count,
        selection_row_count=selection_rows,
    )


def element_count(diagram: Diagram) -> int:
    """Shortcut for the §4.8 element count of ``diagram``."""
    return diagram_metrics(diagram).element_count


def relative_increase(base: Diagram, other: Diagram) -> float:
    """Fractional increase in element count of ``other`` over ``base``."""
    base_count = element_count(base)
    if base_count == 0:
        raise ValueError("base diagram has no elements")
    return (element_count(other) - base_count) / base_count
