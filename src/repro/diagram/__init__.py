"""QueryVis diagrams: model, construction, recovery, patterns and metrics."""

from .build import (
    SELECT_TABLE_ID,
    build_diagram,
    ensure_unique_aliases,
    flatten_existential_blocks,
    sql_to_diagram,
)
from .inverse import (
    AmbiguousDiagramError,
    consistent_logic_trees,
    logic_trees_match,
    recover_logic_tree,
)
from .metrics import DiagramMetrics, diagram_metrics, element_count
from .model import (
    BoundingBox,
    BoxStyle,
    Diagram,
    DiagramTable,
    Edge,
    Endpoint,
    RowKind,
    TableRow,
)
from .patterns import PatternSignature, pattern_signature, same_pattern
from .proofs import (
    PATH_EDGES,
    build_path_logic_tree,
    enumerate_valid_path_patterns,
    pattern_families,
)
from .validate import InvalidDiagramError, ValidationReport, validate_diagram

__all__ = [
    "AmbiguousDiagramError",
    "BoundingBox",
    "BoxStyle",
    "Diagram",
    "DiagramMetrics",
    "DiagramTable",
    "Edge",
    "Endpoint",
    "InvalidDiagramError",
    "PATH_EDGES",
    "PatternSignature",
    "RowKind",
    "SELECT_TABLE_ID",
    "TableRow",
    "ValidationReport",
    "build_diagram",
    "build_path_logic_tree",
    "consistent_logic_trees",
    "diagram_metrics",
    "element_count",
    "ensure_unique_aliases",
    "enumerate_valid_path_patterns",
    "flatten_existential_blocks",
    "logic_trees_match",
    "pattern_families",
    "pattern_signature",
    "recover_logic_tree",
    "same_pattern",
    "sql_to_diagram",
    "validate_diagram",
]
