"""Command-line interface for the QueryVis reproduction.

Usage (after ``pip install -e .``)::

    python -m repro render query.sql --format svg -o query.svg
    python -m repro render query.sql --format text --no-simplify
    python -m repro render query.sql --row-height 18 --table-width 140
    python -m repro fingerprint a.sql b.sql c.sql
    python -m repro trc query.sql
    python -m repro study --questions 9
    python -m repro explain query.sql
    python -m repro bench-exec --scale 10 --repeat 3
    python -m repro bench-diagram --queries 1200 --distinct 200
    python -m repro serve --port 8080 --disk-cache ~/.cache/repro
    python -m repro bench-serve --concurrency 16 --json serve.json
    python -m repro chaos --queries 30 --fault-seed 1337

``render`` turns an SQL file (or stdin when the path is ``-``) into a DOT,
SVG or plain-text diagram via the staged compilation pipeline;
``fingerprint`` prints the canonical semantic fingerprint of one or more
queries and groups them into equivalence classes; ``trc`` prints the Logic
Tree and its tuple relational calculus; ``study`` runs the simulated
user-study replication and prints the Fig. 7-style report; ``explain``
prints the relational engine's execution plan for a query; ``bench-exec``
runs the Chinook batch workload through the planned executor; and
``bench-diagram`` compiles a generated corpus through the diagram pipeline
cold vs. batched and reports the speedup and per-stage cache statistics;
``serve`` runs the long-lived compile server (see ``docs/serving.md``); and
``bench-serve`` load-tests it, reporting sustained req/s, p50/p99 latency
cold vs. warm, and how far in-flight coalescing collapses duplicate bursts;
and ``chaos`` runs the seeded fault-injection differential (engines must
fall back, caches must evict-never-trust, the server must retry — and
every answer must stay byte-identical to the fault-free run; see
``docs/robustness.md``).  ``--fault-plan`` (on ``serve``, ``bench-exec``,
``bench-serve`` and ``chaos``) and the ``REPRO_FAULT_PLAN`` environment
variable install a :class:`repro.faults.FaultPlan` from inline JSON or a
JSON file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .logic.simplify import simplify_logic_tree
from .logic.translate import sql_to_logic_tree
from .logic.trc import logic_tree_to_trc
from .pipeline import RENDERERS, DiagramBatchCompiler, DiagramCompiler
from .relational.errors import EngineError
from .render.layout import DEFAULT_LAYOUT_CONFIG, LayoutConfig
from .sql.errors import SQLError
from .sql.parser import parse

#: (cli flag, LayoutConfig field) pairs for the ``render`` geometry knobs.
_LAYOUT_OVERRIDES = (
    ("row_height", "height of one attribute row in px"),
    ("header_height", "height of the table-name header in px"),
    ("table_width", "width of a table composite mark in px"),
    ("column_gap", "horizontal gap between layout columns in px"),
    ("row_gap", "vertical gap between stacked tables in px"),
    ("margin", "outer canvas margin in px"),
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="QueryVis: logic-based diagrams for SQL queries"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    render = subparsers.add_parser("render", help="render an SQL query as a diagram")
    render.add_argument("sql_file", help="path to a .sql file, or - for stdin")
    render.add_argument(
        "--format", choices=sorted(RENDERERS), default="text", help="output format"
    )
    render.add_argument("-o", "--output", help="output file (default: stdout)")
    render.add_argument(
        "--no-simplify",
        action="store_true",
        help="keep the literal NOT EXISTS form instead of the ∀ simplification",
    )
    for name, help_text in _LAYOUT_OVERRIDES:
        default = getattr(DEFAULT_LAYOUT_CONFIG, name)
        render.add_argument(
            "--" + name.replace("_", "-"),
            type=float,
            default=None,
            help=f"{help_text} (default: {default})",
        )

    fingerprint = subparsers.add_parser(
        "fingerprint",
        help="print the canonical semantic fingerprint of one or more queries",
    )
    fingerprint.add_argument(
        "sql_files", nargs="+", help="paths to .sql files, or - for stdin"
    )
    fingerprint.add_argument(
        "--no-simplify",
        action="store_true",
        help="fingerprint the literal Logic Tree instead of the simplified one",
    )
    fingerprint.add_argument(
        "--full", action="store_true", help="print full 64-hex digests"
    )

    trc = subparsers.add_parser("trc", help="print the Logic Tree and TRC of a query")
    trc.add_argument("sql_file", help="path to a .sql file, or - for stdin")
    trc.add_argument(
        "--simplify", action="store_true", help="apply the ∄∄ → ∀∃ simplification first"
    )

    study = subparsers.add_parser("study", help="run the simulated user-study replication")
    study.add_argument(
        "--questions", type=int, choices=(9, 12), default=9,
        help="analyse the 9 non-GROUP BY questions (Fig. 7) or all 12 (Fig. 19)",
    )
    study.add_argument("--seed", type=int, default=None, help="simulation seed")

    explain = subparsers.add_parser(
        "explain", help="print the relational engine's execution plan for a query"
    )
    explain.add_argument("sql_file", help="path to a .sql file, or - for stdin")
    explain.add_argument(
        "--schema",
        choices=("chinook", "sailors", "beers"),
        default="chinook",
        help="schema the query's tables belong to",
    )
    explain.add_argument(
        "--engine",
        choices=("rows", "sql"),
        default="rows",
        help="backend whose explanation to print: the planned row pipeline "
        "(the plan tree) or the SQL backend (plan tree plus the lowered "
        "sqlite SQL and its bind parameters)",
    )

    bench = subparsers.add_parser(
        "bench-exec",
        help="run the Chinook batch workload through the relational engines",
    )
    bench.add_argument(
        "--engine",
        choices=("rows", "columnar", "sql", "both", "all"),
        default="rows",
        help="execution backend: planned row pipeline, vectorized columnar, "
        "sqlite transpilation, both row engines (measures the columnar "
        "speedup), or all three (also measures sql vs the row pipeline)",
    )
    bench.add_argument(
        "--scale", type=int, default=10,
        help="database scale factor (rows grow roughly linearly)",
    )
    bench.add_argument(
        "--rows", type=int, default=None,
        help="target total row count; selects the scaled zipfian database "
        "instead of --scale (e.g. --rows 110000 for the 100k-row workload)",
    )
    bench.add_argument(
        "--skew", type=float, default=1.1,
        help="zipf exponent for foreign keys of the scaled database "
        "(only with --rows; 0 disables skew)",
    )
    bench.add_argument(
        "--repeat", type=int, default=3,
        help="how many times the 12-query batch is repeated",
    )
    bench.add_argument(
        "--naive", action="store_true",
        help="also run the naive nested-loop oracle and report the speedup",
    )
    bench.add_argument(
        "--json", help="also write the measurements to this JSON file"
    )
    bench.add_argument(
        "--fault-plan",
        help="fault-injection plan (inline JSON or a JSON file path); "
        "see docs/robustness.md",
    )
    bench.add_argument(
        "--fallback",
        action="store_true",
        help="wrap each engine in the breaker-guarded PLANNED fallback "
        "(recoverable failures degrade instead of aborting the run)",
    )

    bench_diagram = subparsers.add_parser(
        "bench-diagram",
        help="compile a generated corpus through the diagram pipeline, "
        "cold vs. batched",
    )
    bench_diagram.add_argument(
        "--queries", type=int, default=1200,
        help="total corpus size (repeats distinct queries, like real traffic)",
    )
    bench_diagram.add_argument(
        "--distinct", type=int, default=200,
        help="number of distinct generated queries in the corpus",
    )
    bench_diagram.add_argument(
        "--schema",
        choices=("sailors", "beers", "chinook"),
        default="sailors",
        help="schema the generated queries range over",
    )
    bench_diagram.add_argument(
        "--formats", default="svg",
        help="comma-separated output formats to render (svg,dot,text)",
    )
    bench_diagram.add_argument(
        "--seed", type=int, default=0, help="base seed for the query generator"
    )
    bench_diagram.add_argument(
        "--json", help="also write the measurements to this JSON file"
    )
    bench_diagram.add_argument(
        "--workers", type=int, default=None,
        help="also time a process-parallel run with this many workers",
    )
    bench_diagram.add_argument(
        "--disk-cache",
        help="persistent cache directory; also times a cross-process warm start",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived diagram-compilation HTTP server",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--disk-cache",
        help="persistent cache directory shared with batch runs/warm-cache",
    )
    serve.add_argument(
        "--lru-size", type=int, default=1024,
        help="bounded response-LRU capacity in rendered payloads",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64,
        help="admitted-request bound; excess load is shed with 503",
    )
    serve.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-request wall-clock budget in seconds (503 beyond it)",
    )
    serve.add_argument(
        "--no-simplify",
        action="store_true",
        help="serve the literal NOT EXISTS form instead of the ∀ simplification",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="run a supervised multi-process worker pool of this size "
        "(0/1 = single-process; SIGHUP hot-reloads the pool's workers)",
    )
    serve.add_argument(
        "--fault-plan",
        help="fault-injection plan (inline JSON or a JSON file path); "
        "see docs/robustness.md",
    )

    bench_serve = subparsers.add_parser(
        "bench-serve",
        help="load-test the compile server: cold/warm latency and coalescing",
    )
    bench_serve.add_argument(
        "--distinct", type=int, default=50,
        help="distinct queries in the cold/warm phases",
    )
    bench_serve.add_argument(
        "--warm-repeat", type=int, default=4,
        help="how many rounds of the distinct set the warm phase replays",
    )
    bench_serve.add_argument(
        "--concurrency", type=int, default=16,
        help="concurrent keep-alive client connections",
    )
    bench_serve.add_argument(
        "--burst-distinct", type=int, default=10,
        help="distinct never-seen queries in the duplicate-heavy burst",
    )
    bench_serve.add_argument(
        "--burst-duplicates", type=int, default=20,
        help="copies of each burst query fired concurrently",
    )
    bench_serve.add_argument(
        "--schema",
        choices=("sailors", "beers", "chinook"),
        default="sailors",
        help="schema the generated queries range over",
    )
    bench_serve.add_argument(
        "--formats", default="svg,dot,text",
        help="comma-separated output formats requested per compile",
    )
    bench_serve.add_argument(
        "--seed", type=int, default=0, help="base seed for the query generator"
    )
    bench_serve.add_argument(
        "--workers", type=int, default=0,
        help="also run the pool leg: compile-bound throughput of an "
        "N-worker pool vs a single process (ignored with --url)",
    )
    bench_serve.add_argument(
        "--url",
        help="drive an already-running server instead of an in-process one "
        "(cold numbers then reflect that server's current cache state)",
    )
    bench_serve.add_argument(
        "--json", help="also write the measurements to this JSON file"
    )
    bench_serve.add_argument(
        "--fault-plan",
        help="fault-injection plan (inline JSON or a JSON file path); "
        "see docs/robustness.md",
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="seeded fault-injection differential: answers must survive "
        "injected engine, cache and serve failures unchanged",
    )
    chaos.add_argument(
        "--queries", type=int, default=30,
        help="distinct generated queries per leg",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, help="base seed for the query generator"
    )
    chaos.add_argument(
        "--fault-seed", type=int, default=1337,
        help="seed of the injected fault plans (reproduces a chaos run)",
    )
    chaos.add_argument(
        "--fault-plan",
        help="replace the built-in per-leg rules with this plan "
        "(inline JSON or a JSON file path)",
    )
    chaos.add_argument(
        "--cache-dir",
        help="directory for the cache leg's disk store "
        "(default: a fresh temporary directory)",
    )
    chaos.add_argument(
        "--json", help="also write the verdict payload to this JSON file"
    )

    warm = subparsers.add_parser(
        "warm-cache",
        help="precompile a corpus into a persistent on-disk cache",
    )
    warm.add_argument(
        "--disk-cache", required=True,
        help="directory of the persistent cache to populate",
    )
    warm.add_argument(
        "--queries", type=int, default=1200,
        help="total corpus size (repeats distinct queries, like real traffic)",
    )
    warm.add_argument(
        "--distinct", type=int, default=200,
        help="number of distinct generated queries in the corpus",
    )
    warm.add_argument(
        "--schema",
        choices=("sailors", "beers", "chinook"),
        default="sailors",
        help="schema the generated queries range over",
    )
    warm.add_argument(
        "--formats", default="svg",
        help="comma-separated output formats to prebuild (svg,dot,text)",
    )
    warm.add_argument(
        "--seed", type=int, default=0, help="base seed for the query generator"
    )
    warm.add_argument(
        "--workers", type=int, default=None,
        help="fan the corpus over this many worker processes",
    )
    warm.add_argument(
        "sql_files", nargs="*",
        help="additional .sql files to precompile into the cache",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    from .faults import (
        FaultPlan,
        InjectedFault,
        install_plan,
        install_plan_from_env,
    )

    # The environment plan first, an explicit --fault-plan over it.  The
    # chaos command manages its own per-leg plans instead (its flag
    # replaces the leg rules, not the global plan).
    install_plan_from_env()
    if args.command != "chaos" and getattr(args, "fault_plan", None):
        install_plan(FaultPlan.from_spec(args.fault_plan))
    try:
        if args.command == "render":
            return _run_render(args)
        if args.command == "fingerprint":
            return _run_fingerprint(args)
        if args.command == "trc":
            return _run_trc(args)
        if args.command == "explain":
            return _run_explain(args)
        if args.command == "bench-exec":
            return _run_bench_exec(args)
        if args.command == "bench-diagram":
            return _run_bench_diagram(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "bench-serve":
            return _run_bench_serve(args)
        if args.command == "warm-cache":
            return _run_warm_cache(args)
        if args.command == "chaos":
            return _run_chaos(args)
        return _run_study(args)
    except (SQLError, EngineError, InjectedFault) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. `head`).
        return 0


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #


def _read_sql(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _layout_config(args: argparse.Namespace) -> LayoutConfig:
    """The layout geometry for this invocation: defaults plus CLI overrides."""
    overrides = {
        name: value
        for name, _help in _LAYOUT_OVERRIDES
        if (value := getattr(args, name)) is not None
    }
    if not overrides:
        return DEFAULT_LAYOUT_CONFIG
    return LayoutConfig(**overrides)


def _run_render(args: argparse.Namespace) -> int:
    compiler = DiagramCompiler(
        simplify=not args.no_simplify, layout_config=_layout_config(args)
    )
    artifact = compiler.compile(_read_sql(args.sql_file), formats=(args.format,))
    rendered = artifact.output(args.format)
    if args.output:
        Path(args.output).write_text(rendered)
    else:
        print(rendered)
    return 0


def _run_fingerprint(args: argparse.Namespace) -> int:
    batch = DiagramBatchCompiler(simplify=not args.no_simplify)
    for path in args.sql_files:
        artifact = batch.compile(_read_sql(path), formats=())
        digest = artifact.fingerprint if args.full else artifact.fingerprint[:16]
        print(f"{digest}  {path}")
    if len(args.sql_files) > 1:
        print()
        print(batch.report())
    return 0


def _run_trc(args: argparse.Namespace) -> int:
    tree = sql_to_logic_tree(parse(_read_sql(args.sql_file)))
    if args.simplify:
        tree = simplify_logic_tree(tree)
    print(tree.describe())
    print()
    print(logic_tree_to_trc(tree).text)
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    from .catalog.builtin import beers_schema, sailors_schema
    from .catalog.chinook import chinook_schema
    from .relational import Database, ExecutionMode, Executor

    schemas = {
        "chinook": chinook_schema,
        "sailors": sailors_schema,
        "beers": beers_schema,
    }
    database = Database(schemas[args.schema]())
    query = parse(_read_sql(args.sql_file))
    mode = ExecutionMode.SQL if args.engine == "sql" else ExecutionMode.PLANNED
    print(Executor(database, mode=mode).explain(query))
    return 0


def _run_bench_exec(args: argparse.Namespace) -> int:
    import json
    import time

    from .relational import BatchExecutor, ExecutionMode
    from .workloads import (
        chinook_bench_database,
        chinook_join_workload,
        chinook_topk_workload,
        scaled_bench_database,
    )

    if args.rows is not None:
        database = scaled_bench_database(total_rows=args.rows, skew=args.skew)
        shape = f"scaled rows={args.rows} skew={args.skew}"
    else:
        database = chinook_bench_database(scale=args.scale)
        shape = f"scale={args.scale}"
    queries = chinook_join_workload(repeat=args.repeat)
    print(
        f"database: chinook {shape} ({database.total_rows()} rows), "
        f"workload: {len(queries)} queries"
    )

    engines = {
        "rows": (ExecutionMode.PLANNED,),
        "columnar": (ExecutionMode.COLUMNAR,),
        "sql": (ExecutionMode.SQL,),
        "both": (ExecutionMode.PLANNED, ExecutionMode.COLUMNAR),
        "all": (ExecutionMode.PLANNED, ExecutionMode.COLUMNAR, ExecutionMode.SQL),
    }[args.engine]
    engine_names = {
        ExecutionMode.PLANNED: "rows",
        ExecutionMode.COLUMNAR: "columnar",
        ExecutionMode.SQL: "sql",
    }

    import platform
    import sqlite3

    from .relational import columnar as _columnar

    payload: dict = {
        "engine": args.engine,
        "workload_queries": len(queries),
        "database_rows": database.total_rows(),
        "skew": args.skew if args.rows is not None else None,
        # Environment provenance: checked-in BENCH artifacts are compared
        # on other machines, so they record what actually executed —
        # whether the columnar engine had NumPy, and which sqlite/python
        # the SQL backend and interpreter were.
        "python_version": platform.python_version(),
        "sqlite_version": sqlite3.sqlite_version,
        "numpy_version": (
            getattr(_columnar._np, "__version__", None)
            if _columnar._np is not None
            else None
        ),
    }
    timings: dict[str, tuple[float, float]] = {}
    results: dict[str, list] = {}
    for mode in engines:
        name = engine_names[mode]
        batch = BatchExecutor(database, mode=mode, fallback=args.fallback)
        start = time.perf_counter()
        cold_results = batch.run(queries)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        batch.run(queries)
        warm = time.perf_counter() - start
        timings[name] = (cold, warm)
        results[name] = cold_results
        total_rows = sum(len(result) for result in cold_results)
        print(
            f"{name}:{' ' * (9 - len(name))}{cold * 1000:8.1f} ms cold "
            f"({len(queries) / cold:8.1f} q/s, {total_rows} result rows), "
            f"{warm * 1000:8.1f} ms warm ({len(queries) / warm:8.1f} q/s)"
        )
        print(f"caches:   {batch.stats().describe()}")
        stats = batch.context.stats
        if stats.fallbacks or stats.breaker_skips:
            print(
                f"fallback: {stats.fallbacks} queries degraded to the rows "
                f"engine ({stats.breaker_skips} skipped by an open breaker; "
                f"state {stats.breaker_state})"
            )
            payload[f"{name}_fallbacks"] = stats.fallbacks
        payload[f"{name}_cold_ms"] = round(cold * 1000, 1)
        payload[f"{name}_warm_ms"] = round(warm * 1000, 1)
        payload["result_rows"] = total_rows

    reference_name = engine_names[engines[0]]
    reference = results[reference_name]
    if len(engines) > 1:
        identical = all(
            all(a.as_set() == b.as_set() for a, b in zip(reference, results[name]))
            for name in (engine_names[mode] for mode in engines[1:])
        )
        payload["results_identical"] = identical
        rows_cold, rows_warm = timings["rows"]
        if "columnar" in timings:
            col_cold, col_warm = timings["columnar"]
            payload["columnar_speedup_cold"] = round(rows_cold / col_cold, 1)
            payload["columnar_speedup_warm"] = round(rows_warm / col_warm, 1)
            print(
                f"columnar: {rows_cold / col_cold:.1f}x cold, "
                f"{rows_warm / col_warm:.1f}x warm vs the row pipeline"
            )
        if "sql" in timings:
            sql_cold, sql_warm = timings["sql"]
            payload["sql_vs_planned_cold"] = round(rows_cold / sql_cold, 1)
            payload["sql_vs_planned_warm"] = round(rows_warm / sql_warm, 1)
            print(
                f"sql:      {rows_cold / sql_cold:.1f}x cold, "
                f"{rows_warm / sql_warm:.1f}x warm vs the row pipeline"
            )
        print(f"identical results across engines: {'yes' if identical else 'NO'}")
        if not identical:
            return 1

    # --- top-k leg: ranked queries vs their full-materialization twins ----
    # Runs on the columnar engine when selected (the vectorized executor is
    # where the partial-selection kernels live), else on the first engine.
    topk_mode = (
        ExecutionMode.COLUMNAR
        if ExecutionMode.COLUMNAR in engines
        else engines[0]
    )
    triples = chinook_topk_workload()
    ranked_queries = [ranked for _, ranked, _ in triples]
    full_queries = [full for _, _, full in triples]
    batch_ranked = BatchExecutor(database, mode=topk_mode)
    batch_full = BatchExecutor(database, mode=topk_mode)

    def _timed(batch: BatchExecutor, batch_queries: list) -> tuple[float, list]:
        start = time.perf_counter()
        batch_results = batch.run(batch_queries)
        return time.perf_counter() - start, batch_results

    topk_cold, ranked_results = _timed(batch_ranked, ranked_queries)
    full_cold, full_results = _timed(batch_full, full_queries)
    topk_warm, _ = _timed(batch_ranked, ranked_queries)
    full_warm, _ = _timed(batch_full, full_queries)
    # The gated warm ratio is the k=10 subset (the acceptance point of the
    # ranked-execution work), best-of-3 so a handful-of-ms measurement is
    # not at the mercy of one scheduler hiccup.
    k10_ranked = [ranked for k, ranked, _ in triples if k == 10]
    k10_full = [full for k, _, full in triples if k == 10]
    k10_topk = min(_timed(batch_ranked, k10_ranked)[0] for _ in range(3))
    k10_full_time = min(_timed(batch_full, k10_full)[0] for _ in range(3))
    consistent = all(
        ranked.as_set() <= full.as_set() and len(ranked) == min(k, len(full))
        for (k, _, _), ranked, full in zip(triples, ranked_results, full_results)
    )
    print(
        f"topk:     {topk_cold * 1000:8.1f} ms cold, {topk_warm * 1000:8.1f} ms "
        f"warm over {len(triples)} ranked queries ({engine_names[topk_mode]}; "
        f"full sort: {full_cold * 1000:.1f} / {full_warm * 1000:.1f} ms)"
    )
    print(
        f"topk:     {full_cold / topk_cold:.1f}x cold, "
        f"{k10_full_time / k10_topk:.1f}x warm at k=10 vs full materialization"
    )
    print(f"ranked results consistent with full results: {'yes' if consistent else 'NO'}")
    payload["topk_engine"] = engine_names[topk_mode]
    payload["topk_queries"] = len(triples)
    payload["topk_cold_ms"] = round(topk_cold * 1000, 1)
    payload["topk_warm_ms"] = round(topk_warm * 1000, 1)
    payload["topk_full_cold_ms"] = round(full_cold * 1000, 1)
    payload["topk_full_warm_ms"] = round(full_warm * 1000, 1)
    payload["topk_vs_full_cold"] = round(full_cold / topk_cold, 1)
    payload["topk_vs_full_warm"] = round(k10_full_time / k10_topk, 1)
    payload["topk_results_consistent"] = consistent
    if not consistent:
        return 1

    if args.naive:
        oracle = BatchExecutor(database, mode=ExecutionMode.NAIVE)
        start = time.perf_counter()
        naive_results = oracle.run(queries)
        naive_elapsed = time.perf_counter() - start
        fastest = min(warm for _, warm in timings.values())
        print(
            f"naive:    {naive_elapsed * 1000:8.1f} ms "
            f"({len(queries) / naive_elapsed:8.1f} q/s), "
            f"{naive_elapsed / fastest:.1f}x slower than the fastest engine"
        )
        agree = all(
            p.as_set() == n.as_set() for p, n in zip(reference, naive_results)
        )
        print(f"results identical to naive oracle: {'yes' if agree else 'NO'}")
        if not agree:
            return 1

    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"json:     wrote {args.json}")
    return 0


def _resolve_formats(args: argparse.Namespace) -> tuple[str, ...] | None:
    formats = tuple(fmt.strip() for fmt in args.formats.split(",") if fmt.strip())
    unknown = [fmt for fmt in formats if fmt not in RENDERERS]
    if unknown or not formats:
        print(
            f"error: unknown --formats {','.join(unknown) or '(empty)'}; "
            f"choose from {','.join(sorted(RENDERERS))}",
            file=sys.stderr,
        )
        return None
    return formats


def _generated_corpus(args: argparse.Namespace) -> tuple[list[str], int]:
    """The benchmark/warm-up corpus: generated queries + the Fig. 24 trio."""
    from .catalog.builtin import beers_schema, sailors_schema
    from .catalog.chinook import chinook_schema
    from .paper_queries import FIG24_VARIANTS
    from .sql.formatter import format_query
    from .workloads import QueryGenConfig, QueryGenerator

    schemas = {
        "sailors": sailors_schema,
        "beers": beers_schema,
        "chinook": chinook_schema,
    }
    schema = schemas[args.schema]()
    generator = QueryGenerator(
        schema, QueryGenConfig(max_depth=2, max_tables_per_block=2)
    )
    distinct = [
        format_query(generator.generate(args.seed + index))
        for index in range(max(1, args.distinct))
    ]
    corpus = [distinct[index % len(distinct)] for index in range(max(1, args.queries))]
    corpus.extend(FIG24_VARIANTS)  # the paper's equivalence trio rides along
    return corpus, len(distinct)


def _run_bench_diagram(args: argparse.Namespace) -> int:
    import json
    import time

    from .paper_queries import FIG24_VARIANTS

    formats = _resolve_formats(args)
    if formats is None:
        return 2
    corpus, distinct_count = _generated_corpus(args)
    print(
        f"corpus: {len(corpus)} queries "
        f"({distinct_count} distinct generated + Fig. 24 trio), "
        f"schema={args.schema}, formats={','.join(formats)}"
    )

    cold = DiagramBatchCompiler(cache=False)
    start = time.perf_counter()
    cold.run(corpus, formats=formats)
    cold_elapsed = time.perf_counter() - start
    print(
        f"cold:     {cold_elapsed * 1000:8.1f} ms "
        f"({len(corpus) / cold_elapsed:8.1f} q/s, every stage recompiled)"
    )

    batch = DiagramBatchCompiler()
    start = time.perf_counter()
    batched_artifacts = batch.run(corpus, formats=formats)
    batched_elapsed = time.perf_counter() - start
    stats = batch.stats()
    speedup = cold_elapsed / batched_elapsed
    print(
        f"batched:  {batched_elapsed * 1000:8.1f} ms "
        f"({len(corpus) / batched_elapsed:8.1f} q/s)"
    )
    print(f"speedup:  {speedup:.1f}x")
    print(f"caches:   {stats.describe()}")
    print(
        f"dedup:    {batch.distinct_diagrams()} distinct diagrams "
        f"for {len(corpus)} queries"
    )
    fig24_class = next(
        (
            cls
            for cls in batch.equivalence_classes()
            if any(variant.strip() in cls.queries for variant in FIG24_VARIANTS)
        ),
        None,
    )
    if fig24_class is not None:
        print(
            f"fig24:    {len(FIG24_VARIANTS)} variants -> 1 fingerprint "
            f"({fig24_class.fingerprint[:16]})"
        )

    payload = {
        "corpus_queries": len(corpus),
        "distinct_generated": distinct_count,
        "schema": args.schema,
        "formats": list(formats),
        "cold_ms": round(cold_elapsed * 1000, 1),
        "batched_ms": round(batched_elapsed * 1000, 1),
        "speedup": round(speedup, 1),
        "cache_hit_rate": round(stats.hit_rate, 4),
        "distinct_diagrams": batch.distinct_diagrams(),
        "stages": stats.as_dict()["stages"],
    }

    if args.workers:
        parallel = DiagramBatchCompiler()
        start = time.perf_counter()
        parallel_artifacts = parallel.run(corpus, formats=formats, workers=args.workers)
        parallel_elapsed = time.perf_counter() - start
        identical = all(
            a.fingerprint == b.fingerprint and a.outputs == b.outputs
            for a, b in zip(batched_artifacts, parallel_artifacts)
        ) and parallel.equivalence_classes() == batch.equivalence_classes()
        print(
            f"parallel: {parallel_elapsed * 1000:8.1f} ms "
            f"({len(corpus) / parallel_elapsed:8.1f} q/s, workers={args.workers}, "
            f"identical to serial: {'yes' if identical else 'NO'})"
        )
        payload["workers"] = args.workers
        payload["parallel_ms"] = round(parallel_elapsed * 1000, 1)
        payload["parallel_identical"] = identical
        if not identical:
            return 1

    if args.disk_cache:
        populate = DiagramBatchCompiler(disk_cache=args.disk_cache)
        start = time.perf_counter()
        populate.run(corpus, formats=formats)
        populate_elapsed = time.perf_counter() - start
        warm = DiagramBatchCompiler(disk_cache=args.disk_cache)
        start = time.perf_counter()
        warm.run(corpus, formats=formats)
        warm_elapsed = time.perf_counter() - start
        disk_stats = warm.compiler.disk_cache.stats
        print(
            f"persist:  {populate_elapsed * 1000:8.1f} ms populate, "
            f"{warm_elapsed * 1000:8.1f} ms cross-process warm start "
            f"({cold_elapsed / warm_elapsed:.1f}x vs cold, "
            f"{disk_stats.hits} disk hits, {disk_stats.evictions} evicted: "
            f"{disk_stats.corrupt_evictions} corrupt / "
            f"{disk_stats.stale_evictions} stale)"
        )
        payload["persistent_populate_ms"] = round(populate_elapsed * 1000, 1)
        payload["persistent_warm_ms"] = round(warm_elapsed * 1000, 1)
        payload["persistent_speedup_vs_cold"] = round(
            cold_elapsed / warm_elapsed, 1
        )
        payload["disk"] = disk_stats.as_dict()
        # Flat duplicates for benchmarks/compare.py's INFO keys (it only
        # inspects scalars).
        payload["disk_evictions"] = disk_stats.evictions
        payload["disk_corrupt_evictions"] = disk_stats.corrupt_evictions
        payload["disk_stale_evictions"] = disk_stats.stale_evictions
        payload["disk_degraded"] = disk_stats.disk_degraded

    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"json:     wrote {args.json}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import (
        CompileServer,
        CompileService,
        PoolConfig,
        PoolService,
        ServiceConfig,
    )

    pooled = args.workers and args.workers > 1
    service_config = ServiceConfig(
        lru_entries=args.lru_size,
        max_pending=args.max_pending,
        request_timeout=args.timeout,
    )
    if pooled:
        # The front end admits; workers get generous bounds plus the
        # per-request knobs the operator chose.  A fault plan reaches the
        # workers too (the front end never compiles, so a serve.* plan
        # that only lived in this process would inject nothing).
        service = PoolService(
            config=ServiceConfig(
                max_pending=args.max_pending, request_timeout=args.timeout
            ),
            pool_config=PoolConfig(
                workers=args.workers,
                simplify=not args.no_simplify,
                disk_cache=args.disk_cache,
                worker_service=ServiceConfig(
                    lru_entries=args.lru_size,
                    max_pending=max(args.max_pending, 1024),
                    request_timeout=max(args.timeout, 30.0),
                ),
                worker_fault_plan=args.fault_plan,
            ),
        )
    else:
        service = CompileService(
            simplify=not args.no_simplify,
            disk_cache=args.disk_cache,
            config=service_config,
        )

    async def _serve() -> int:
        if pooled:
            ready = await service.start()
            print(f"pool: {ready}/{args.workers} workers ready", flush=True)
        server = CompileServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"serving on {server.url}", flush=True)
        if args.disk_cache:
            print(f"disk cache: {args.disk_cache}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover — non-POSIX loop
                signal.signal(signum, lambda *_: stop.set())
        if pooled:

            def _reload_done(task: asyncio.Task) -> None:
                if task.cancelled() or task.exception() is not None:
                    print("reload failed", flush=True)
                    return
                result = task.result()
                print(
                    f"reload complete: {len(result['replaced'])} workers "
                    f"replaced (min ready "
                    f"{service.supervisor.stats.reload_min_ready})",
                    flush=True,
                )

            def _on_hup() -> None:
                print("SIGHUP: rolling workers one at a time...", flush=True)
                loop.create_task(service.reload()).add_done_callback(
                    _reload_done
                )

            try:
                loop.add_signal_handler(signal.SIGHUP, _on_hup)
            except (NotImplementedError, AttributeError):  # pragma: no cover
                pass
        await stop.wait()
        print("draining in-flight work...", flush=True)
        drained = await server.stop(drain_timeout=args.timeout + 5.0)
        print(
            f"shutdown {'clean' if drained else 'with undrained work'}; "
            f"served {sum(service.stats.requests.values())} requests",
            flush=True,
        )
        return 0 if drained else 1

    return asyncio.run(_serve())


def _run_bench_serve(args: argparse.Namespace) -> int:
    import json

    from .workloads import ServeBenchConfig, serve_bench

    formats = _resolve_formats(args)
    if formats is None:
        return 2
    config = ServeBenchConfig(
        distinct=args.distinct,
        warm_repeat=args.warm_repeat,
        concurrency=args.concurrency,
        burst_distinct=args.burst_distinct,
        burst_duplicates=args.burst_duplicates,
        schema=args.schema,
        formats=formats,
        seed=args.seed,
        workers=args.workers,
    )
    payload = serve_bench(config, url=args.url)
    print(
        f"server:   {'external ' + args.url if args.url else 'in-process (fresh)'}"
    )
    print(
        f"workload: {payload['distinct_queries']} distinct queries "
        f"(schema={args.schema}, formats={','.join(formats)}), "
        f"concurrency {payload['concurrency']}"
    )
    for phase in ("cold", "warm", "burst"):
        requests = payload[
            "requests_cold" if phase == "cold"
            else "requests_warm" if phase == "warm"
            else "burst_requests"
        ]
        print(
            f"{phase}:{' ' * (9 - len(phase) - 1)}{requests:5d} requests, "
            f"p50 {payload[f'{phase}_p50_ms']:8.2f} ms, "
            f"p99 {payload[f'{phase}_p99_ms']:8.2f} ms, "
            f"{payload[f'{phase}_rps']:8.1f} req/s"
        )
    print(
        f"speedup:  {payload['warm_speedup_p50']:.1f}x warm p50 vs cold "
        "(response LRU vs full pipeline)"
    )
    print(
        f"coalesce: {payload['burst_requests']} duplicate-heavy requests -> "
        f"{payload['burst_unique_compiles']} unique compiles "
        f"({payload['burst_unique_fraction']:.1%} unique, "
        f"collapse {payload['coalesce_collapse']:.1f}x, "
        f"{payload['coalesced_requests']} coalesced in flight)"
    )
    if payload.get("failed_requests"):
        print(f"FAILED:   {payload['failed_requests']} requests never got a 200")
    if "pool_vs_single_warm_throughput" in payload:
        print(
            f"pool:     {payload['pool_workers']} workers, "
            f"{payload['pool_rps']:.1f} req/s vs single "
            f"{payload['pool_single_rps']:.1f} req/s -> "
            f"{payload['pool_vs_single_warm_throughput']:.2f}x "
            f"(stalled-compile corpus of {payload['pool_distinct']}; "
            f"{payload['pool_failed_requests']} failed, "
            f"{payload['pool_worker_restarts']} worker restarts)"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"json:     wrote {args.json}")
    # A request that exhausted its retry budget is a failed experiment,
    # not a statistic — the CI pool-chaos leg relies on this exit code.
    failed = payload.get("failed_requests", 0) + payload.get(
        "pool_failed_requests", 0
    )
    return 1 if failed else 0


def _run_warm_cache(args: argparse.Namespace) -> int:
    import time

    formats = _resolve_formats(args)
    if formats is None:
        return 2
    corpus, distinct_count = _generated_corpus(args)
    for path in args.sql_files:
        corpus.append(_read_sql(path))
    batch = DiagramBatchCompiler(disk_cache=args.disk_cache)
    start = time.perf_counter()
    batch.run(corpus, formats=formats, workers=args.workers)
    elapsed = time.perf_counter() - start
    disk = batch.compiler.disk_cache
    if args.workers and args.workers > 1:
        # The parent compiler never touched the store itself; reopen for
        # accurate entry counts (workers wrote through their own handles).
        from .pipeline import DiskCache

        disk = DiskCache(Path(args.disk_cache))
    print(
        f"warmed {args.disk_cache}: {len(corpus)} queries "
        f"({distinct_count} distinct generated) in {elapsed * 1000:.1f} ms"
        + (f" with {args.workers} workers" if args.workers else "")
    )
    print(f"entries:  {disk.entry_count()} cached stage products on disk")
    # Merged across workers (each worker folds its own store handle's
    # counters into the PipelineStats it ships back).
    merged = batch.stats().disk
    print(
        "disk:     "
        f"{merged.get('hits', 0)} hits, {merged.get('writes', 0)} writes, "
        f"{merged.get('evictions', 0)} evicted "
        f"({merged.get('corrupt_evictions', 0)} corrupt / "
        f"{merged.get('stale_evictions', 0)} stale)"
        + (
            ", DEGRADED to memory-only"
            if merged.get("disk_degraded", 0)
            else ""
        )
    )
    print(f"caches:   {batch.stats().describe()}")
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    import json

    from .workloads.chaosbench import ChaosConfig, run_chaos

    config = ChaosConfig(
        queries=args.queries,
        seed=args.seed,
        fault_seed=args.fault_seed,
        plan_spec=args.fault_plan,
    )
    payload = run_chaos(config, cache_dir=args.cache_dir)
    for mode, leg in payload["engine"].items():
        print(
            f"engine/{mode}: {leg['queries']} queries, "
            f"{leg['fallbacks']} fallbacks "
            f"({leg['breaker_skips']} breaker skips, "
            f"breaker {leg['breaker_state']}), "
            f"identical: {'yes' if leg['identical'] else 'NO'}"
        )
    cache = payload["cache"]
    print(
        f"cache:      {cache['queries']} queries, "
        f"{cache['corrupt_evictions']} corrupt evictions, "
        f"{cache['write_errors']} write errors, "
        f"identical: {'yes' if cache['identical'] else 'NO'}"
    )
    serve = payload["serve"]
    print(
        f"serve:      {serve['requests']} requests, "
        f"{serve['compile_retries']} compile retries, "
        f"{serve['executor_restarts']} executor restarts, "
        f"{serve['client_retries']} client retries, "
        f"identical: {'yes' if serve['identical'] else 'NO'}"
    )
    pool = payload.get("pool")
    if pool is not None:
        observed = pool["observed"]
        print(
            f"pool:       {pool['requests']} requests over {pool['workers']} "
            f"workers, killed pid {observed['killed_pid']}, "
            f"{pool['worker_crashes']} crashes / "
            f"{observed['worker_restarts']} restarts / "
            f"{observed['failovers']} failovers, "
            f"{pool['failed_requests']} failed, "
            f"identical: {'yes' if pool['identical'] else 'NO'}"
        )
    print(
        f"chaos:      {payload['fault_fires']} faults injected, verdict "
        f"{'OK' if payload['ok'] else 'FAILED'}"
    )
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"json:       wrote {args.json}")
    return 0 if payload["ok"] else 1


def _run_study(args: argparse.Namespace) -> int:
    from .study import (
        analyze_study,
        apply_exclusion,
        format_fig7,
        format_participant_deltas,
        legitimate_responses,
        questions_without_grouping,
        simulate_study,
    )
    from .study.simulate import DEFAULT_SEED

    study = simulate_study(seed=args.seed if args.seed is not None else DEFAULT_SEED)
    exclusion = apply_exclusion(study)
    responses = legitimate_responses(study, exclusion)
    if args.questions == 9:
        nine_ids = {q.question_id for q in questions_without_grouping()}
        responses = [r for r in responses if r.question_id in nine_ids]
    results = analyze_study(responses)
    print(
        f"{exclusion.n_total} workers simulated, {exclusion.n_excluded} excluded, "
        f"{exclusion.n_legitimate} legitimate"
    )
    print()
    print(format_fig7(results, title=f"Study results ({args.questions} questions)"))
    print()
    print(format_participant_deltas(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
