"""Command-line interface for the QueryVis reproduction.

Usage (after ``pip install -e .``)::

    python -m repro render query.sql --format svg -o query.svg
    python -m repro render query.sql --format text --no-simplify
    python -m repro trc query.sql
    python -m repro study --questions 9
    python -m repro explain query.sql
    python -m repro bench-exec --scale 10 --repeat 3

``render`` turns an SQL file (or stdin when the path is ``-``) into a DOT,
SVG or plain-text diagram; ``trc`` prints the Logic Tree and its tuple
relational calculus; ``study`` runs the simulated user-study replication and
prints the Fig. 7-style report; ``explain`` prints the relational engine's
execution plan for a query; ``bench-exec`` runs the Chinook batch workload
through the planned executor (optionally also the naive oracle) and reports
throughput and cache statistics.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .diagram.build import sql_to_diagram
from .logic.simplify import simplify_logic_tree
from .logic.translate import sql_to_logic_tree
from .logic.trc import logic_tree_to_trc
from .render.ascii_art import diagram_to_text
from .render.dot import diagram_to_dot
from .render.svg import diagram_to_svg
from .relational.errors import EngineError
from .sql.errors import SQLError
from .sql.parser import parse

_RENDERERS = {
    "dot": diagram_to_dot,
    "svg": diagram_to_svg,
    "text": diagram_to_text,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="QueryVis: logic-based diagrams for SQL queries"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    render = subparsers.add_parser("render", help="render an SQL query as a diagram")
    render.add_argument("sql_file", help="path to a .sql file, or - for stdin")
    render.add_argument(
        "--format", choices=sorted(_RENDERERS), default="text", help="output format"
    )
    render.add_argument("-o", "--output", help="output file (default: stdout)")
    render.add_argument(
        "--no-simplify",
        action="store_true",
        help="keep the literal NOT EXISTS form instead of the ∀ simplification",
    )

    trc = subparsers.add_parser("trc", help="print the Logic Tree and TRC of a query")
    trc.add_argument("sql_file", help="path to a .sql file, or - for stdin")
    trc.add_argument(
        "--simplify", action="store_true", help="apply the ∄∄ → ∀∃ simplification first"
    )

    study = subparsers.add_parser("study", help="run the simulated user-study replication")
    study.add_argument(
        "--questions", type=int, choices=(9, 12), default=9,
        help="analyse the 9 non-GROUP BY questions (Fig. 7) or all 12 (Fig. 19)",
    )
    study.add_argument("--seed", type=int, default=None, help="simulation seed")

    explain = subparsers.add_parser(
        "explain", help="print the relational engine's execution plan for a query"
    )
    explain.add_argument("sql_file", help="path to a .sql file, or - for stdin")
    explain.add_argument(
        "--schema",
        choices=("chinook", "sailors", "beers"),
        default="chinook",
        help="schema the query's tables belong to",
    )

    bench = subparsers.add_parser(
        "bench-exec",
        help="run the Chinook batch workload through the plan-based executor",
    )
    bench.add_argument(
        "--scale", type=int, default=10,
        help="database scale factor (rows grow roughly linearly)",
    )
    bench.add_argument(
        "--repeat", type=int, default=3,
        help="how many times the 12-query batch is repeated",
    )
    bench.add_argument(
        "--naive", action="store_true",
        help="also run the naive nested-loop oracle and report the speedup",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "render":
            return _run_render(args)
        if args.command == "trc":
            return _run_trc(args)
        if args.command == "explain":
            return _run_explain(args)
        if args.command == "bench-exec":
            return _run_bench_exec(args)
        return _run_study(args)
    except (SQLError, EngineError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. `head`).
        return 0


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #


def _read_sql(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _run_render(args: argparse.Namespace) -> int:
    query = parse(_read_sql(args.sql_file))
    diagram = sql_to_diagram(query, simplify=not args.no_simplify)
    rendered = _RENDERERS[args.format](diagram)
    if args.output:
        Path(args.output).write_text(rendered)
    else:
        print(rendered)
    return 0


def _run_trc(args: argparse.Namespace) -> int:
    tree = sql_to_logic_tree(parse(_read_sql(args.sql_file)))
    if args.simplify:
        tree = simplify_logic_tree(tree)
    print(tree.describe())
    print()
    print(logic_tree_to_trc(tree).text)
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    from .catalog.builtin import beers_schema, sailors_schema
    from .catalog.chinook import chinook_schema
    from .relational import Database, Executor

    schemas = {
        "chinook": chinook_schema,
        "sailors": sailors_schema,
        "beers": beers_schema,
    }
    database = Database(schemas[args.schema]())
    query = parse(_read_sql(args.sql_file))
    print(Executor(database).explain(query))
    return 0


def _run_bench_exec(args: argparse.Namespace) -> int:
    import time

    from .relational import BatchExecutor, ExecutionMode
    from .workloads import chinook_bench_database, chinook_join_workload

    database = chinook_bench_database(scale=args.scale)
    queries = chinook_join_workload(repeat=args.repeat)
    print(
        f"database: chinook scale={args.scale} ({database.total_rows()} rows), "
        f"workload: {len(queries)} queries"
    )

    batch = BatchExecutor(database)
    start = time.perf_counter()
    planned_results = batch.run(queries)
    planned_elapsed = time.perf_counter() - start
    total_rows = sum(len(result) for result in planned_results)
    print(
        f"planned:  {planned_elapsed * 1000:8.1f} ms "
        f"({len(queries) / planned_elapsed:8.1f} q/s, {total_rows} result rows)"
    )
    print(f"caches:   {batch.stats().describe()}")

    if args.naive:
        oracle = BatchExecutor(database, mode=ExecutionMode.NAIVE)
        start = time.perf_counter()
        naive_results = oracle.run(queries)
        naive_elapsed = time.perf_counter() - start
        print(
            f"naive:    {naive_elapsed * 1000:8.1f} ms "
            f"({len(queries) / naive_elapsed:8.1f} q/s)"
        )
        print(f"speedup:  {naive_elapsed / planned_elapsed:.1f}x")
        agree = all(
            p.as_set() == n.as_set()
            for p, n in zip(planned_results, naive_results)
        )
        print(f"results identical to naive oracle: {'yes' if agree else 'NO'}")
        if not agree:
            return 1
    return 0


def _run_study(args: argparse.Namespace) -> int:
    from .study import (
        analyze_study,
        apply_exclusion,
        format_fig7,
        format_participant_deltas,
        legitimate_responses,
        questions_without_grouping,
        simulate_study,
    )
    from .study.simulate import DEFAULT_SEED

    study = simulate_study(seed=args.seed if args.seed is not None else DEFAULT_SEED)
    exclusion = apply_exclusion(study)
    responses = legitimate_responses(study, exclusion)
    if args.questions == 9:
        nine_ids = {q.question_id for q in questions_without_grouping()}
        responses = [r for r in responses if r.question_id in nine_ids]
    results = analyze_study(responses)
    print(
        f"{exclusion.n_total} workers simulated, {exclusion.n_excluded} excluded, "
        f"{exclusion.n_legitimate} legitimate"
    )
    print()
    print(format_fig7(results, title=f"Study results ({args.questions} questions)"))
    print()
    print(format_participant_deltas(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
