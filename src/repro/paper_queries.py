"""The example queries used throughout the paper, as reusable constants.

Having the running examples in the library (rather than only in tests) lets
examples, benchmarks and downstream users reproduce the paper's figures with
one import:

* :data:`UNIQUE_SET_SQL` — the unique-set query of Fig. 1a;
* :data:`Q_SOME_SQL` / :data:`Q_ONLY_SQL` — Figs. 3a/3b;
* :data:`FIG24_VARIANTS` — the three syntactic variants of "sailors who
  reserve only red boats" (Fig. 24);
* :func:`pattern_query` — the no / only / all pattern over the three
  Fig. 22 schemas (Figs. 23/25).
"""

from __future__ import annotations

UNIQUE_SET_SQL = """
SELECT L1.drinker
FROM Likes L1
WHERE NOT EXISTS(
    SELECT * FROM Likes L2
    WHERE L1.drinker <> L2.drinker
    AND NOT EXISTS(
        SELECT * FROM Likes L3
        WHERE L3.drinker = L2.drinker
        AND NOT EXISTS(
            SELECT * FROM Likes L4
            WHERE L4.drinker = L1.drinker AND L4.beer = L3.beer))
    AND NOT EXISTS(
        SELECT * FROM Likes L5
        WHERE L5.drinker = L1.drinker
        AND NOT EXISTS(
            SELECT * FROM Likes L6
            WHERE L6.drinker = L2.drinker AND L6.beer = L5.beer)))
"""

Q_SOME_SQL = """
SELECT F.person
FROM Frequents F, Likes L, Serves S
WHERE F.person = L.person
AND F.bar = S.bar
AND L.drink = S.drink
"""

Q_ONLY_SQL = """
SELECT F.person
FROM Frequents F
WHERE NOT EXISTS
   (SELECT *
    FROM Serves S
    WHERE S.bar = F.bar
    AND NOT EXISTS
       (SELECT L.drink
        FROM Likes L
        WHERE L.person = F.person
        AND S.drink = L.drink))
"""

#: Fig. 24 — three semantically equivalent spellings of "only red boats".
FIG24_VARIANTS: tuple[str, ...] = (
    """
SELECT S.sname FROM Sailor S
WHERE NOT EXISTS(
    SELECT * FROM Reserves R WHERE R.sid = S.sid
    AND NOT EXISTS(
        SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))
""",
    """
SELECT S.sname FROM Sailor S
WHERE S.sid NOT IN(
    SELECT R.sid FROM Reserves R
    WHERE R.bid NOT IN(
        SELECT B.bid FROM Boat B WHERE B.color = 'red'))
""",
    """
SELECT S.sname FROM Sailor S
WHERE NOT S.sid = ANY(
    SELECT R.sid FROM Reserves R
    WHERE NOT R.bid = ANY(
        SELECT B.bid FROM Boat B WHERE B.color = 'red'))
""",
)

#: The three schemas of Fig. 22, as template parameters for pattern_query().
PATTERN_SCHEMAS: dict[str, dict[str, str]] = {
    "sailors": dict(entity="Sailor", link="Reserves", target="Boat", ekey="sid",
                    tkey="bid", column="color", value="red", select="sname"),
    "students": dict(entity="Student", link="Takes", target="Class", ekey="sid",
                     tkey="cid", column="department", value="art", select="sname"),
    "actors": dict(entity="Actor", link="Casts", target="Movie", ekey="aid",
                   tkey="mid", column="director", value="Hitchcock", select="aname"),
}


def pattern_query(kind: str, schema: str) -> str:
    """Return the Fig. 23/25 query for a pattern kind on one of the schemas.

    ``kind`` is ``"no"``, ``"only"`` or ``"all"``; ``schema`` is ``"sailors"``,
    ``"students"`` or ``"actors"``.
    """
    spec = PATTERN_SCHEMAS[schema]
    if kind == "no":
        return f"""
SELECT S.{spec['select']} FROM {spec['entity']} S
WHERE NOT EXISTS(
    SELECT * FROM {spec['link']} R WHERE R.{spec['ekey']} = S.{spec['ekey']}
    AND EXISTS(
        SELECT * FROM {spec['target']} B
        WHERE B.{spec['column']} = '{spec['value']}' AND R.{spec['tkey']} = B.{spec['tkey']}))
"""
    if kind == "only":
        return f"""
SELECT S.{spec['select']} FROM {spec['entity']} S
WHERE NOT EXISTS(
    SELECT * FROM {spec['link']} R WHERE R.{spec['ekey']} = S.{spec['ekey']}
    AND NOT EXISTS(
        SELECT * FROM {spec['target']} B
        WHERE B.{spec['column']} = '{spec['value']}' AND R.{spec['tkey']} = B.{spec['tkey']}))
"""
    if kind == "all":
        return f"""
SELECT S.{spec['select']} FROM {spec['entity']} S
WHERE NOT EXISTS(
    SELECT * FROM {spec['target']} B
    WHERE B.{spec['column']} = '{spec['value']}'
    AND NOT EXISTS(
        SELECT * FROM {spec['link']} R
        WHERE R.{spec['tkey']} = B.{spec['tkey']} AND R.{spec['ekey']} = S.{spec['ekey']}))
"""
    raise ValueError(f"unknown pattern kind {kind!r}")
