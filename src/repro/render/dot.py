"""Graphviz DOT emitter for QueryVis diagrams.

The original QueryVis prototype rendered its diagrams with GraphViz
(Appendix A.4).  :func:`diagram_to_dot` emits equivalent DOT text: each table
composite mark becomes an HTML-like label node (header row with black
background, attribute rows, yellow selection rows, gray GROUP BY rows), each
quantifier bounding box becomes a cluster subgraph (dashed for ∄, double
border approximated with ``peripheries=2`` for ∀), and join edges become
(optionally directed and labelled) edges between row ports.

The emitter has no dependency on the GraphViz binary — it only produces the
text, which renders with any stock ``dot`` installation.
"""

from __future__ import annotations

from ..diagram.model import BoxStyle, Diagram, DiagramTable, RowKind
from .layout import Layout

_HEADER_BG = "#000000"
_HEADER_FG = "#ffffff"
_SELECT_BG = "#bbbbbb"
_SELECTION_BG = "#ffffaa"
_GROUP_BY_BG = "#dddddd"


def diagram_to_dot(
    diagram: Diagram, graph_name: str = "queryvis", layout: Layout | None = None
) -> str:
    """Render ``diagram`` as GraphViz DOT text.

    When the pipeline's layout stage already ran, pass its :class:`Layout`:
    the shared reading order then fixes the emission order of unboxed nodes
    (GraphViz uses statement order as a layout hint) instead of this emitter
    deriving its own ordering from the diagram.
    """
    lines: list[str] = []
    lines.append(f"digraph {_quote_id(graph_name)} {{")
    lines.append("    rankdir=LR;")
    lines.append("    node [shape=plaintext, fontname=\"Helvetica\"];")
    lines.append("    edge [fontname=\"Helvetica\", arrowsize=0.7];")

    boxed: set[str] = set()
    for index, box in enumerate(diagram.boxes):
        boxed.update(box.table_ids)
        style = "dashed" if box.style is BoxStyle.NOT_EXISTS else "solid"
        peripheries = 1 if box.style is BoxStyle.NOT_EXISTS else 2
        lines.append(f"    subgraph cluster_{index} {{")
        lines.append(f"        style={style};")
        lines.append(f"        peripheries={peripheries};")
        lines.append("        label=\"\";")
        for table_id in sorted(box.table_ids):
            lines.append(_node_statement(diagram.table(table_id), indent="        "))
        lines.append("    }")

    unboxed = [table for table in diagram.tables if table.table_id not in boxed]
    if layout is not None and layout.order:
        position = {table_id: index for index, table_id in enumerate(layout.order)}
        unboxed.sort(key=lambda t: position.get(t.table_id, len(position)))
    for table in unboxed:
        lines.append(_node_statement(table, indent="    "))

    for edge in diagram.edges:
        source = f"{_quote_id(edge.source.table_id)}:{_port(edge.source.row_key)}"
        target = f"{_quote_id(edge.target.table_id)}:{_port(edge.target.row_key)}"
        attributes = []
        if not edge.directed:
            attributes.append("dir=none")
        if edge.operator:
            attributes.append(f"label=\"{_escape(edge.operator)}\"")
        attribute_text = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"    {source} -> {target}{attribute_text};")

    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _node_statement(table: DiagramTable, indent: str) -> str:
    label = _table_label(table)
    return f"{indent}{_quote_id(table.table_id)} [label=<{label}>];"


def _table_label(table: DiagramTable) -> str:
    header_bg = _SELECT_BG if table.is_select else _HEADER_BG
    header_fg = "#000000" if table.is_select else _HEADER_FG
    rows = [
        '<TABLE BORDER="1" CELLBORDER="0" CELLSPACING="0" CELLPADDING="4">',
        f'<TR><TD BGCOLOR="{header_bg}"><FONT COLOR="{header_fg}"><B>'
        f"{_escape(table.name)}</B></FONT></TD></TR>",
    ]
    for row in table.rows:
        bgcolor = ""
        if row.kind is RowKind.SELECTION:
            bgcolor = f' BGCOLOR="{_SELECTION_BG}"'
        elif row.kind is RowKind.GROUP_BY:
            bgcolor = f' BGCOLOR="{_GROUP_BY_BG}"'
        elif row.kind in (RowKind.ORDER_BY, RowKind.LIMIT):
            bgcolor = ' BGCOLOR="#cce8ff"'
        rows.append(
            f'<TR><TD PORT="{_port(row.key)}"{bgcolor}>{_escape(row.label)}</TD></TR>'
        )
    rows.append("</TABLE>")
    return "".join(rows)


def _port(row_key: str) -> str:
    sanitized = "".join(ch if ch.isalnum() else "_" for ch in row_key.lower())
    return f"p_{sanitized}"


def _quote_id(identifier: str) -> str:
    return f'"{identifier}"'


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )
