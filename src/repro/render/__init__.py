"""Renderers: GraphViz DOT, standalone SVG and plain-text output."""

from .ascii_art import diagram_summary, diagram_to_text
from .dot import diagram_to_dot
from .layout import (
    DEFAULT_LAYOUT_CONFIG,
    Layout,
    LayoutConfig,
    TablePlacement,
    layout_diagram,
)
from .svg import diagram_to_svg

__all__ = [
    "DEFAULT_LAYOUT_CONFIG",
    "Layout",
    "LayoutConfig",
    "TablePlacement",
    "diagram_summary",
    "diagram_to_dot",
    "diagram_to_svg",
    "diagram_to_text",
    "layout_diagram",
]
