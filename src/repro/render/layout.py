"""A small layered layout for QueryVis diagrams.

GraphViz is not available offline, so the SVG and ASCII renderers need their
own coordinates.  The diagrams are small (a handful of tables of a few rows)
and their natural reading order is left to right from the SELECT box
(Section 4.6), so a simple layered layout suffices:

* tables are assigned to columns by their nesting depth when available
  (stored by the builder in the diagram metadata), falling back to their
  breadth-first distance from the SELECT table;
* within a column, tables are stacked top to bottom in reading order;
* each table's pixel size follows from its row count.

All pixel geometry is collected in :class:`LayoutConfig` so callers (the CLI
and the diagram-compilation pipeline) can override it; the module-level
constants remain as the defaults.  The computed :class:`Layout` also records
the diagram's reading order so every renderer can reuse the one computation
from the pipeline's layout stage instead of re-deriving it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagram.model import Diagram, DiagramTable

ROW_HEIGHT = 22
HEADER_HEIGHT = 24
TABLE_WIDTH = 170
COLUMN_GAP = 90
ROW_GAP = 40
MARGIN = 30


@dataclass(frozen=True)
class LayoutConfig:
    """Pixel geometry of the layered layout (one knob per old constant)."""

    row_height: float = ROW_HEIGHT
    header_height: float = HEADER_HEIGHT
    table_width: float = TABLE_WIDTH
    column_gap: float = COLUMN_GAP
    row_gap: float = ROW_GAP
    margin: float = MARGIN

    def cache_key(self) -> tuple[float, ...]:
        """Hashable identity used by the pipeline's stage caches."""
        return (
            self.row_height,
            self.header_height,
            self.table_width,
            self.column_gap,
            self.row_gap,
            self.margin,
        )


DEFAULT_LAYOUT_CONFIG = LayoutConfig()


@dataclass(frozen=True)
class TablePlacement:
    """Pixel-space placement of one table composite mark."""

    table_id: str
    x: float
    y: float
    width: float
    height: float
    header_height: float = HEADER_HEIGHT
    row_height: float = ROW_HEIGHT

    @property
    def right(self) -> float:
        return self.x + self.width

    @property
    def bottom(self) -> float:
        return self.y + self.height

    def row_anchor(self, row_index: int) -> tuple[float, float]:
        """Centre-left/right anchor y-coordinate of a row."""
        y = self.y + self.header_height + self.row_height * (row_index + 0.5)
        return self.x, y


@dataclass(frozen=True)
class Layout:
    """Placements for every table plus the overall canvas size.

    ``order`` is the diagram's reading order (Section 4.6), computed once
    here and shared by the SVG, DOT and text renderers; ``config`` is the
    geometry the placements were computed with.
    """

    placements: dict[str, TablePlacement]
    width: float
    height: float
    order: tuple[str, ...] = ()
    config: LayoutConfig = field(default=DEFAULT_LAYOUT_CONFIG)

    def placement(self, table_id: str) -> TablePlacement:
        return self.placements[table_id]


def layout_diagram(diagram: Diagram, config: LayoutConfig | None = None) -> Layout:
    """Compute a layered layout for ``diagram``."""
    config = config or DEFAULT_LAYOUT_CONFIG
    order = tuple(diagram.reading_order())
    columns = _assign_columns(diagram, order)
    placements: dict[str, TablePlacement] = {}
    max_bottom = 0.0
    max_right = 0.0
    for column_index in sorted(columns):
        x = config.margin + column_index * (config.table_width + config.column_gap)
        y = float(config.margin)
        for table in columns[column_index]:
            height = config.header_height + config.row_height * max(1, len(table.rows))
            placements[table.table_id] = TablePlacement(
                table_id=table.table_id,
                x=x,
                y=y,
                width=config.table_width,
                height=height,
                header_height=config.header_height,
                row_height=config.row_height,
            )
            y += height + config.row_gap
            max_bottom = max(max_bottom, y)
        max_right = max(max_right, x + config.table_width)
    return Layout(
        placements=placements,
        width=max_right + config.margin,
        height=max_bottom + config.margin,
        order=order,
        config=config,
    )


def _assign_columns(
    diagram: Diagram, order: tuple[str, ...]
) -> dict[int, list[DiagramTable]]:
    depth_of: dict[str, int] = {}
    for key, value in diagram.metadata.items():
        if key.startswith("depth."):
            depth_of[key[len("depth.") :]] = int(value)

    rank: dict[str, int] = {}
    for table in diagram.tables:
        if table.is_select:
            rank[table.table_id] = 0
        elif table.table_id in depth_of:
            rank[table.table_id] = depth_of[table.table_id] + 1
        else:
            rank[table.table_id] = 1 + _bfs_distance(diagram, table.table_id)

    columns: dict[int, list[DiagramTable]] = {}
    position = {table_id: index for index, table_id in enumerate(order)}
    for table in sorted(diagram.tables, key=lambda t: position.get(t.table_id, 0)):
        columns.setdefault(rank[table.table_id], []).append(table)
    return columns


def _bfs_distance(diagram: Diagram, table_id: str) -> int:
    """Distance from the SELECT table ignoring edge direction."""
    adjacency: dict[str, set[str]] = {table.table_id: set() for table in diagram.tables}
    for edge in diagram.edges:
        adjacency[edge.source.table_id].add(edge.target.table_id)
        adjacency[edge.target.table_id].add(edge.source.table_id)
    frontier = [diagram.select_table_id]
    distances = {diagram.select_table_id: 0}
    while frontier:
        current = frontier.pop(0)
        for neighbour in adjacency[current]:
            if neighbour not in distances:
                distances[neighbour] = distances[current] + 1
                frontier.append(neighbour)
    return distances.get(table_id, len(diagram.tables))
