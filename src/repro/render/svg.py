"""Standalone SVG renderer for QueryVis diagrams.

GraphViz is unavailable offline, so this renderer substitutes for it: it
draws the same marks (table composite marks, dashed/double bounding boxes,
lines with arrowheads and operator labels) using the layered layout from
:mod:`repro.render.layout`.  The output is a self-contained SVG document.
"""

from __future__ import annotations

from ..diagram.model import BoxStyle, Diagram, RowKind
from .layout import Layout, LayoutConfig, layout_diagram

_FONT = "font-family=\"Helvetica, Arial, sans-serif\" font-size=\"12\""


def diagram_to_svg(
    diagram: Diagram,
    layout: Layout | None = None,
    config: LayoutConfig | None = None,
) -> str:
    """Render ``diagram`` as an SVG document string.

    Pass a precomputed ``layout`` (the pipeline's layout stage does) to share
    one layout computation across renderers; otherwise one is derived here
    from ``config``.
    """
    layout = layout or layout_diagram(diagram, config=config)
    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{layout.width:.0f}" '
        f'height="{layout.height:.0f}" viewBox="0 0 {layout.width:.0f} {layout.height:.0f}">'
    )
    parts.append(_arrow_marker())
    parts.extend(_render_boxes(diagram, layout))
    parts.extend(_render_edges(diagram, layout))
    parts.extend(_render_tables(diagram, layout))
    parts.append("</svg>")
    return "\n".join(parts)


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #


def _arrow_marker() -> str:
    return (
        "<defs><marker id=\"arrow\" markerWidth=\"8\" markerHeight=\"8\" refX=\"7\" "
        "refY=\"3\" orient=\"auto\"><path d=\"M0,0 L7,3 L0,6 z\" fill=\"#333\"/></marker></defs>"
    )


def _render_tables(diagram: Diagram, layout: Layout) -> list[str]:
    parts: list[str] = []
    for table in diagram.tables:
        placement = layout.placement(table.table_id)
        header_fill = "#bbbbbb" if table.is_select else "#000000"
        header_color = "#000000" if table.is_select else "#ffffff"
        parts.append(
            f'<rect x="{placement.x}" y="{placement.y}" width="{placement.width}" '
            f'height="{placement.height}" fill="#ffffff" stroke="#333333"/>'
        )
        parts.append(
            f'<rect x="{placement.x}" y="{placement.y}" width="{placement.width}" '
            f'height="{placement.header_height}" fill="{header_fill}"/>'
        )
        parts.append(
            f'<text x="{placement.x + 6}" y="{placement.y + placement.header_height - 7}" '
            f'fill="{header_color}" {_FONT} font-weight="bold">{_escape(table.name)}</text>'
        )
        for index, row in enumerate(table.rows):
            row_y = placement.y + placement.header_height + index * placement.row_height
            fill = None
            if row.kind is RowKind.SELECTION:
                fill = "#ffffaa"
            elif row.kind is RowKind.GROUP_BY:
                fill = "#dddddd"
            elif row.kind in (RowKind.ORDER_BY, RowKind.LIMIT):
                fill = "#cce8ff"
            if fill:
                parts.append(
                    f'<rect x="{placement.x}" y="{row_y}" width="{placement.width}" '
                    f'height="{placement.row_height}" fill="{fill}"/>'
                )
            parts.append(
                f'<text x="{placement.x + 6}" y="{row_y + placement.row_height - 7}" '
                f'fill="#000000" {_FONT}>{_escape(row.label)}</text>'
            )
    return parts


def _render_boxes(diagram: Diagram, layout: Layout) -> list[str]:
    parts: list[str] = []
    padding = 12.0
    for box in diagram.boxes:
        placements = [layout.placement(table_id) for table_id in box.table_ids]
        left = min(p.x for p in placements) - padding
        top = min(p.y for p in placements) - padding
        right = max(p.right for p in placements) + padding
        bottom = max(p.bottom for p in placements) + padding
        if box.style is BoxStyle.NOT_EXISTS:
            parts.append(
                f'<rect x="{left}" y="{top}" width="{right - left}" height="{bottom - top}" '
                'fill="none" stroke="#555555" stroke-dasharray="6,4" rx="10"/>'
            )
        else:
            parts.append(
                f'<rect x="{left}" y="{top}" width="{right - left}" height="{bottom - top}" '
                'fill="none" stroke="#555555" rx="10"/>'
            )
            parts.append(
                f'<rect x="{left - 4}" y="{top - 4}" width="{right - left + 8}" '
                f'height="{bottom - top + 8}" fill="none" stroke="#555555" rx="12"/>'
            )
    return parts


def _render_edges(diagram: Diagram, layout: Layout) -> list[str]:
    parts: list[str] = []
    for edge in diagram.edges:
        source_table = diagram.table(edge.source.table_id)
        target_table = diagram.table(edge.target.table_id)
        source_placement = layout.placement(edge.source.table_id)
        target_placement = layout.placement(edge.target.table_id)
        source_index = _row_index(source_table, edge.source.row_key)
        target_index = _row_index(target_table, edge.target.row_key)
        _, source_y = source_placement.row_anchor(source_index)
        _, target_y = target_placement.row_anchor(target_index)
        if source_placement.x <= target_placement.x:
            x1 = source_placement.right
            x2 = target_placement.x
        else:
            x1 = source_placement.x
            x2 = target_placement.right
        marker = ' marker-end="url(#arrow)"' if edge.directed else ""
        parts.append(
            f'<line x1="{x1}" y1="{source_y}" x2="{x2}" y2="{target_y}" '
            f'stroke="#333333" stroke-width="1.2"{marker}/>'
        )
        if edge.operator:
            mid_x = (x1 + x2) / 2
            mid_y = (source_y + target_y) / 2 - 4
            parts.append(
                f'<text x="{mid_x}" y="{mid_y}" text-anchor="middle" {_FONT}>'
                f"{_escape(edge.operator)}</text>"
            )
    return parts


def _row_index(table, row_key: str) -> int:
    lowered = row_key.lower()
    for index, row in enumerate(table.rows):
        if row.key.lower() == lowered:
            return index
    return 0


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
