"""Plain-text rendering of QueryVis diagrams for terminals and tests.

The ASCII renderer does not attempt 2-D layout; it prints the diagram in
reading order (Section 4.6): each table with its quantifier box style and
rows, followed by the list of edges written as ``source.row -op-> target.row``.
This keeps golden-file tests readable and lets the examples show diagrams in
a terminal without any graphics stack.
"""

from __future__ import annotations

from ..diagram.model import BoxStyle, Diagram, RowKind
from .layout import Layout

_ROW_PREFIX = {
    RowKind.ATTRIBUTE: "",
    RowKind.SELECTION: "σ ",
    RowKind.GROUP_BY: "γ ",
    RowKind.AGGREGATE: "Σ ",
    RowKind.ORDER_BY: "τ ",  # tau: the sort operator of relational algebra
    RowKind.LIMIT: "",
}


def diagram_to_text(diagram: Diagram, layout: Layout | None = None) -> str:
    """Render ``diagram`` as readable plain text.

    When the pipeline already computed a :class:`Layout`, pass it in: its
    ``order`` is the same reading order this renderer would otherwise
    re-derive from the diagram.
    """
    lines: list[str] = []
    order = layout.order if layout is not None and layout.order else diagram.reading_order()
    for table_id in order:
        table = diagram.table(table_id)
        box = diagram.box_of(table_id)
        quantifier = ""
        if box is not None:
            symbol = "∄" if box.style is BoxStyle.NOT_EXISTS else "∀"
            quantifier = f"  [{symbol}]"
        header = f"┌─ {table.name}{quantifier}"
        if table.alias and table.alias != table.name:
            header += f"  (alias {table.alias})"
        lines.append(header)
        for row in table.rows:
            prefix = _ROW_PREFIX[row.kind]
            lines.append(f"│   {prefix}{row.label}")
        lines.append("└─")
    lines.append("")
    lines.append("edges:")
    for edge in diagram.edges:
        connector = "──>" if edge.directed else "───"
        operator = f" [{edge.operator}]" if edge.operator else ""
        lines.append(
            f"  {edge.source.table_id}.{edge.source.row_key} {connector} "
            f"{edge.target.table_id}.{edge.target.row_key}{operator}"
        )
    return "\n".join(lines)


def diagram_summary(diagram: Diagram) -> str:
    """One-line summary used in example output and logs."""
    return (
        f"{len(diagram.data_tables())} tables, {len(diagram.edges)} edges, "
        f"{len(diagram.boxes)} boxes"
    )
