"""Built-in schemas used throughout the paper.

* :func:`beers_schema` — Ullman's beer-drinkers schema (Section 1.1):
  ``Likes(drinker, beer)``, ``Frequents(drinker, bar)``, ``Serves(bar, drink)``.
  Note that the paper uses ``person``/``drinker`` and ``drink``/``beer``
  interchangeably; we keep the attribute names that appear in the example
  queries (Figs. 1 and 3).
* :func:`sailors_schema`, :func:`students_schema`, :func:`actors_schema` —
  the three schemas of Fig. 22 used for the pattern gallery in Appendix G.
"""

from __future__ import annotations

from .schema import Schema


def beers_schema() -> Schema:
    """The bar-drinker-beer schema from Ullman used in Figs. 1–3."""
    schema = Schema(name="beers")
    schema.add_table("Likes", ["drinker", "beer"], primary_key=["drinker", "beer"])
    schema.add_table("Frequents", ["person", "bar"], primary_key=["person", "bar"])
    schema.add_table("Serves", ["bar", "drink"], primary_key=["bar", "drink"])
    # The example queries join Frequents.person with Likes.person and
    # Serves.drink with Likes.drink; mirror the paper's attribute aliases by
    # also exposing `person` on Likes and `drink` on Likes via a second table
    # definition would be confusing, so we instead follow Fig. 3 exactly:
    # Likes(person, drink) is what Q_some / Q_only reference.
    return schema


def beers_fig3_schema() -> Schema:
    """The attribute spelling used by Q_some/Q_only in Fig. 3.

    Fig. 3 references ``F.person = L.person`` and ``L.drink = S.drink``, i.e.
    Likes(person, drink) rather than Likes(drinker, beer).  Both spellings
    appear in the paper; this helper returns the Fig. 3 variant.
    """
    schema = Schema(name="beers_fig3")
    schema.add_table("Likes", ["person", "drink"], primary_key=["person", "drink"])
    schema.add_table("Frequents", ["person", "bar"], primary_key=["person", "bar"])
    schema.add_table("Serves", ["bar", "drink"], primary_key=["bar", "drink"])
    schema.add_foreign_key("Frequents", "person", "Likes", "person")
    schema.add_foreign_key("Serves", "drink", "Likes", "drink")
    return schema


def sailors_schema() -> Schema:
    """Sailors reserving boats (Fig. 22a, after Ramakrishnan & Gehrke)."""
    schema = Schema(name="sailors")
    schema.add_table(
        "Sailor",
        [("sid", "int"), ("sname", "str"), ("rating", "int"), ("age", "int")],
        primary_key=["sid"],
    )
    schema.add_table(
        "Reserves",
        [("sid", "int"), ("bid", "int"), ("day", "str")],
        primary_key=["sid", "bid", "day"],
    )
    schema.add_table(
        "Boat",
        [("bid", "int"), ("bname", "str"), ("color", "str")],
        primary_key=["bid"],
    )
    schema.add_foreign_key("Reserves", "sid", "Sailor", "sid")
    schema.add_foreign_key("Reserves", "bid", "Boat", "bid")
    return schema


def students_schema() -> Schema:
    """Students taking classes (Fig. 22b)."""
    schema = Schema(name="students")
    schema.add_table("Student", [("sid", "int"), ("sname", "str")], primary_key=["sid"])
    schema.add_table(
        "Takes",
        [("sid", "int"), ("cid", "int"), ("semester", "str")],
        primary_key=["sid", "cid", "semester"],
    )
    schema.add_table(
        "Class",
        [("cid", "int"), ("cname", "str"), ("department", "str")],
        primary_key=["cid"],
    )
    schema.add_foreign_key("Takes", "sid", "Student", "sid")
    schema.add_foreign_key("Takes", "cid", "Class", "cid")
    return schema


def actors_schema() -> Schema:
    """Actors playing in movies (Fig. 22c)."""
    schema = Schema(name="actors")
    schema.add_table("Actor", [("aid", "int"), ("aname", "str")], primary_key=["aid"])
    schema.add_table(
        "Casts",
        [("aid", "int"), ("mid", "int"), ("role", "str")],
        primary_key=["aid", "mid", "role"],
    )
    schema.add_table(
        "Movie",
        [("mid", "int"), ("mname", "str"), ("director", "str")],
        primary_key=["mid"],
    )
    schema.add_foreign_key("Casts", "aid", "Actor", "aid")
    schema.add_foreign_key("Casts", "mid", "Movie", "mid")
    return schema
