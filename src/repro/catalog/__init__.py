"""Schema catalog: relational schema model and the paper's built-in schemas."""

from .builtin import (
    actors_schema,
    beers_fig3_schema,
    beers_schema,
    sailors_schema,
    students_schema,
)
from .chinook import chinook_schema
from .schema import Attribute, ForeignKey, Schema, SchemaError, Table

__all__ = [
    "Attribute",
    "ForeignKey",
    "Schema",
    "SchemaError",
    "Table",
    "actors_schema",
    "beers_fig3_schema",
    "beers_schema",
    "chinook_schema",
    "sailors_schema",
    "students_schema",
]
