"""The Chinook media-store schema used by the user study (Section 6.1).

The schema follows the study tutorial (Appendix E, page 2): Artist, Album,
Track, MediaType, Genre, Playlist, PlaylistTrack, Invoice, InvoiceLine,
Customer, Employee — with the foreign keys drawn in the tutorial figure.
Only the attributes referenced by the study stimuli need to exist for the
diagrams, but we include the full column lists so the schema also works as a
realistic target for the relational engine and the data generator.
"""

from __future__ import annotations

from .schema import Schema


def chinook_schema() -> Schema:
    """Return the Chinook digital-media-store schema."""
    schema = Schema(name="chinook")

    schema.add_table(
        "Artist", [("ArtistId", "int"), ("Name", "str")], primary_key=["ArtistId"]
    )
    schema.add_table(
        "Album",
        [("AlbumId", "int"), ("Title", "str"), ("ArtistId", "int")],
        primary_key=["AlbumId"],
    )
    schema.add_table(
        "Track",
        [
            ("TrackId", "int"),
            ("Name", "str"),
            ("AlbumId", "int"),
            ("MediaTypeId", "int"),
            ("GenreId", "int"),
            ("Composer", "str"),
            ("Milliseconds", "int"),
            ("Bytes", "int"),
            ("UnitPrice", "float"),
        ],
        primary_key=["TrackId"],
    )
    schema.add_table(
        "MediaType", [("MediaTypeId", "int"), ("Name", "str")], primary_key=["MediaTypeId"]
    )
    schema.add_table(
        "Genre", [("GenreId", "int"), ("Name", "str")], primary_key=["GenreId"]
    )
    schema.add_table(
        "Playlist", [("PlaylistId", "int"), ("Name", "str")], primary_key=["PlaylistId"]
    )
    schema.add_table(
        "PlaylistTrack",
        [("PlaylistId", "int"), ("TrackId", "int")],
        primary_key=["PlaylistId", "TrackId"],
    )
    schema.add_table(
        "Customer",
        [
            ("CustomerId", "int"),
            ("FirstName", "str"),
            ("LastName", "str"),
            ("Company", "str"),
            ("Address", "str"),
            ("City", "str"),
            ("State", "str"),
            ("Country", "str"),
            ("PostalCode", "str"),
            ("Phone", "str"),
            ("Fax", "str"),
            ("Email", "str"),
            ("SupportRepId", "int"),
        ],
        primary_key=["CustomerId"],
    )
    schema.add_table(
        "Employee",
        [
            ("EmployeeId", "int"),
            ("LastName", "str"),
            ("FirstName", "str"),
            ("Title", "str"),
            ("ReportsTo", "int"),
            ("BirthDate", "str"),
            ("HireDate", "str"),
            ("Address", "str"),
            ("City", "str"),
            ("State", "str"),
            ("Country", "str"),
            ("PostalCode", "str"),
            ("Phone", "str"),
            ("Fax", "str"),
            ("Email", "str"),
        ],
        primary_key=["EmployeeId"],
    )
    schema.add_table(
        "Invoice",
        [
            ("InvoiceId", "int"),
            ("CustomerId", "int"),
            ("InvoiceDate", "str"),
            ("BillingAddress", "str"),
            ("BillingCity", "str"),
            ("BillingState", "str"),
            ("BillingCountry", "str"),
            ("BillingPostalCode", "str"),
            ("Total", "float"),
        ],
        primary_key=["InvoiceId"],
    )
    schema.add_table(
        "InvoiceLine",
        [
            ("InvoiceLineId", "int"),
            ("InvoiceId", "int"),
            ("TrackId", "int"),
            ("UnitPrice", "float"),
            ("Quantity", "int"),
        ],
        primary_key=["InvoiceLineId"],
    )

    schema.add_foreign_key("Album", "ArtistId", "Artist", "ArtistId")
    schema.add_foreign_key("Track", "AlbumId", "Album", "AlbumId")
    schema.add_foreign_key("Track", "MediaTypeId", "MediaType", "MediaTypeId")
    schema.add_foreign_key("Track", "GenreId", "Genre", "GenreId")
    schema.add_foreign_key("PlaylistTrack", "PlaylistId", "Playlist", "PlaylistId")
    schema.add_foreign_key("PlaylistTrack", "TrackId", "Track", "TrackId")
    schema.add_foreign_key("InvoiceLine", "InvoiceId", "Invoice", "InvoiceId")
    schema.add_foreign_key("InvoiceLine", "TrackId", "Track", "TrackId")
    schema.add_foreign_key("Invoice", "CustomerId", "Customer", "CustomerId")
    schema.add_foreign_key("Customer", "SupportRepId", "Employee", "EmployeeId")
    schema.add_foreign_key("Employee", "ReportsTo", "Employee", "EmployeeId")
    schema.validate()
    return schema
