"""Relational schema model.

QueryVis diagrams "extend previously existing visual representations of
relational schemata" (Section 1.2), so the catalog keeps the same vocabulary
a schema diagram would: tables with named, typed attributes, primary keys and
foreign keys.  The catalog is also what the relational engine and the random
query generator consult to know which joins are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


class SchemaError(Exception):
    """Raised for inconsistent schema definitions or unknown names."""


@dataclass(frozen=True)
class Attribute:
    """A column of a table.

    ``dtype`` is one of ``"int"``, ``"float"`` or ``"str"`` — the only value
    domains needed by the supported SQL fragment (Fig. 4: ``V ::= string or
    number``).
    """

    name: str
    dtype: str = "str"

    def __post_init__(self) -> None:
        if self.dtype not in ("int", "float", "str"):
            raise SchemaError(f"unknown dtype {self.dtype!r} for attribute {self.name}")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge: ``table.column -> referenced_table.referenced_column``."""

    table: str
    column: str
    referenced_table: str
    referenced_column: str


@dataclass(frozen=True)
class Table:
    """A table with attributes and an optional primary key."""

    name: str
    attributes: tuple[Attribute, ...]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in table {self.name}")
        missing = [key for key in self.primary_key if key not in names]
        if missing:
            raise SchemaError(
                f"primary key columns {missing} are not attributes of {self.name}"
            )

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name`` (case-insensitive)."""
        lowered = name.lower()
        for attribute in self.attributes:
            if attribute.name.lower() == lowered:
                return attribute
        raise SchemaError(f"table {self.name} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        lowered = name.lower()
        return any(attribute.name.lower() == lowered for attribute in self.attributes)


@dataclass
class Schema:
    """A named collection of tables and foreign keys."""

    name: str
    tables: dict[str, Table] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def add_table(
        self,
        name: str,
        columns: Iterable[tuple[str, str]] | Iterable[str],
        primary_key: Iterable[str] = (),
    ) -> Table:
        """Add a table.

        ``columns`` is either an iterable of names (all typed ``str``) or an
        iterable of ``(name, dtype)`` pairs.
        """
        attributes: list[Attribute] = []
        for column in columns:
            if isinstance(column, str):
                attributes.append(Attribute(column))
            else:
                column_name, dtype = column
                attributes.append(Attribute(column_name, dtype))
        table = Table(name=name, attributes=tuple(attributes), primary_key=tuple(primary_key))
        if name.lower() in {existing.lower() for existing in self.tables}:
            raise SchemaError(f"table {name!r} already defined in schema {self.name}")
        self.tables[name] = table
        return table

    def add_foreign_key(
        self, table: str, column: str, referenced_table: str, referenced_column: str
    ) -> ForeignKey:
        """Register a foreign-key edge after validating both endpoints."""
        source = self.table(table)
        target = self.table(referenced_table)
        if not source.has_attribute(column):
            raise SchemaError(f"{table}.{column} does not exist")
        if not target.has_attribute(referenced_column):
            raise SchemaError(f"{referenced_table}.{referenced_column} does not exist")
        fk = ForeignKey(source.name, column, target.name, referenced_column)
        self.foreign_keys.append(fk)
        return fk

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def table(self, name: str) -> Table:
        """Return the table called ``name`` (case-insensitive)."""
        lowered = name.lower()
        for table_name, table in self.tables.items():
            if table_name.lower() == lowered:
                return table
        raise SchemaError(f"schema {self.name} has no table {name!r}")

    def has_table(self, name: str) -> bool:
        lowered = name.lower()
        return any(table_name.lower() == lowered for table_name in self.tables)

    def table_names(self) -> tuple[str, ...]:
        return tuple(self.tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables.values())

    def joinable_pairs(self) -> list[tuple[str, str, str, str]]:
        """All (table, column, table, column) pairs connected by a foreign key.

        The random query generator uses these pairs so that generated joins
        are meaningful with respect to the schema.
        """
        pairs = []
        for fk in self.foreign_keys:
            pairs.append((fk.table, fk.column, fk.referenced_table, fk.referenced_column))
        return pairs

    def validate(self) -> None:
        """Check internal consistency (all FK endpoints exist)."""
        for fk in self.foreign_keys:
            self.table(fk.table).attribute(fk.column)
            self.table(fk.referenced_table).attribute(fk.referenced_column)
