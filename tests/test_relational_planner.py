"""Planner tests: plan shapes, and differential testing against the oracle.

The differential suite is the contract of the planned executor: every paper
query and a sample of generated workloads must return exactly the same
``as_set()`` result under ``ExecutionMode.PLANNED`` as under the naive
nested-loop oracle (``ExecutionMode.NAIVE``).
"""

from __future__ import annotations

import pytest

from repro.catalog import (
    actors_schema,
    chinook_schema,
    sailors_schema,
    students_schema,
)
from repro.paper_queries import (
    FIG24_VARIANTS,
    PATTERN_SCHEMAS,
    Q_ONLY_SQL,
    Q_SOME_SQL,
    UNIQUE_SET_SQL,
    pattern_query,
)
from repro.relational import (
    EngineError,
    ExecutionMode,
    Executor,
    TypeMismatchError,
    execute,
    plan_query,
)
from repro.relational.plan import (
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    NestedLoopJoin,
    Project,
    Scan,
    SemiJoin,
)
from repro.sql import parse
from repro.workloads import (
    QueryGenConfig,
    QueryGenerator,
    beers_database,
    beers_fig3_database,
    chinook_database,
    generic_database,
    sailors_database,
)


def assert_modes_agree(sql_or_query, db):
    """The planned result set must equal the naive oracle's, byte for byte."""
    query = parse(sql_or_query) if isinstance(sql_or_query, str) else sql_or_query
    naive = execute(query, db, mode=ExecutionMode.NAIVE)
    planned = execute(query, db, mode=ExecutionMode.PLANNED)
    assert planned.columns == naive.columns
    assert planned.as_set() == naive.as_set()
    assert len(planned.as_set()) == len(planned.rows)  # set semantics kept
    return planned


# --------------------------------------------------------------------- #
# plan shapes
# --------------------------------------------------------------------- #


class TestPlanShapes:
    @pytest.fixture
    def db(self):
        return sailors_database()

    def test_equi_join_uses_hash_join_with_pushdown(self, db):
        plan = plan_query(
            parse(
                "SELECT S.sname FROM Sailor S, Reserves R, Boat B "
                "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'"
            ),
            db,
        )
        assert isinstance(plan.root, Distinct)
        project = plan.root.child
        assert isinstance(project, Project)
        outer_join = project.child
        assert isinstance(outer_join, HashJoin)
        # The selection on Boat.color is pushed below the joins, into the
        # scan — and cardinality-guided ordering starts the left-deep tree
        # from that filtered scan (the smallest estimated input).
        leftmost = outer_join
        while isinstance(leftmost, HashJoin):
            leftmost = leftmost.left
        assert isinstance(leftmost, Filter)
        assert isinstance(leftmost.child, Scan)
        assert leftmost.child.table == "Boat"

    def test_inequality_join_uses_nested_loop(self, db):
        plan = plan_query(
            parse(
                "SELECT S1.sname FROM Sailor S1, Sailor S2 "
                "WHERE S1.rating > S2.rating"
            ),
            db,
        )
        node = plan.root.child.child
        assert isinstance(node, NestedLoopJoin)
        assert len(node.predicates) == 1

    def test_cartesian_product_still_possible(self, db):
        plan = plan_query(parse("SELECT S.sname FROM Sailor S, Boat B"), db)
        node = plan.root.child.child
        assert isinstance(node, NestedLoopJoin)
        assert node.predicates == ()

    def test_join_order_avoids_cartesian_when_connected(self, db):
        # B joins S only through R; FROM order (S, B, R) would start S x B.
        plan = plan_query(
            parse(
                "SELECT S.sname FROM Sailor S, Boat B, Reserves R "
                "WHERE S.sid = R.sid AND R.bid = B.bid"
            ),
            db,
        )
        def collect(node, acc):
            acc.append(node)
            for child in node.children():
                collect(child, acc)
            return acc

        nodes = collect(plan.root, [])
        assert not any(isinstance(n, NestedLoopJoin) for n in nodes)
        assert sum(isinstance(n, HashJoin) for n in nodes) == 2

    def test_uncorrelated_not_in_becomes_anti_join(self, db):
        plan = plan_query(
            parse(
                "SELECT S.sname FROM Sailor S WHERE S.sid NOT IN "
                "(SELECT R.sid FROM Reserves R)"
            ),
            db,
        )
        assert isinstance(plan.root.child.child, AntiJoin)

    def test_uncorrelated_in_becomes_semi_join(self, db):
        plan = plan_query(
            parse(
                "SELECT S.sname FROM Sailor S WHERE S.sid IN "
                "(SELECT R.sid FROM Reserves R WHERE R.bid = 102)"
            ),
            db,
        )
        node = plan.root.child.child
        assert isinstance(node, SemiJoin) and not isinstance(node, AntiJoin)

    def test_eq_any_normalizes_to_semi_join(self, db):
        plan = plan_query(
            parse(
                "SELECT S.sname FROM Sailor S WHERE S.sid = ANY "
                "(SELECT R.sid FROM Reserves R)"
            ),
            db,
        )
        node = plan.root.child.child
        assert isinstance(node, SemiJoin) and not isinstance(node, AntiJoin)

    def test_correlated_exists_stays_filter_predicate(self, db):
        plan = plan_query(
            parse(
                "SELECT S.sname FROM Sailor S WHERE NOT EXISTS "
                "(SELECT * FROM Reserves R WHERE R.sid = S.sid)"
            ),
            db,
        )
        node = plan.root.child.child
        assert isinstance(node, Filter)
        (pred,) = node.predicates
        assert pred.kind == "exists" and pred.negated
        assert pred.plan.n_params == 1  # correlated on S.sid

    def test_explain_renders_plan_tree(self, db):
        text = Executor(db).explain(
            parse(
                "SELECT S.sname FROM Sailor S, Reserves R WHERE S.sid = R.sid"
            )
        )
        assert "HashJoin" in text and "Scan Sailor AS S" in text

    def test_plan_time_unknown_column_raises(self, db):
        with pytest.raises(EngineError):
            plan_query(parse("SELECT S.nope FROM Sailor S"), db)

    def test_duplicate_from_alias_rejected(self, db):
        # Repeated aliases make scoping incoherent (real SQL rejects them).
        with pytest.raises(EngineError):
            plan_query(parse("SELECT X.sid FROM Sailor X, Reserves X"), db)

    def test_in_subquery_requires_single_column(self, db):
        with pytest.raises(EngineError):
            execute(
                parse(
                    "SELECT S.sname FROM Sailor S WHERE S.sid IN "
                    "(SELECT R.sid, R.bid FROM Reserves R)"
                ),
                db,
            )

    def test_hash_join_type_mismatch_raises(self, db):
        # Joining a string column with an int column is a type error in the
        # naive executor; the hash join must not silently return empty.
        query = parse(
            "SELECT S.sname FROM Sailor S, Boat B WHERE S.sname = B.bid"
        )
        with pytest.raises(TypeMismatchError):
            execute(query, db, mode=ExecutionMode.PLANNED)
        with pytest.raises(TypeMismatchError):
            execute(query, db, mode=ExecutionMode.NAIVE)


# --------------------------------------------------------------------- #
# differential: paper queries
# --------------------------------------------------------------------- #


class TestPaperQueriesDifferential:
    def test_unique_set_query(self):
        assert_modes_agree(UNIQUE_SET_SQL, beers_database())

    def test_q_some(self):
        assert_modes_agree(Q_SOME_SQL, beers_fig3_database())

    def test_q_only(self):
        assert_modes_agree(Q_ONLY_SQL, beers_fig3_database())

    @pytest.mark.parametrize("variant", range(len(FIG24_VARIANTS)))
    def test_fig24_variants(self, variant):
        db = sailors_database()
        result = assert_modes_agree(FIG24_VARIANTS[variant], db)
        # All three spellings must also agree with each other.
        reference = assert_modes_agree(FIG24_VARIANTS[0], db)
        assert result.as_set() == reference.as_set()

    @pytest.mark.parametrize("kind", ["no", "only", "all"])
    @pytest.mark.parametrize("schema_name", sorted(PATTERN_SCHEMAS))
    def test_pattern_queries(self, kind, schema_name):
        if schema_name == "sailors":
            db = sailors_database()
        elif schema_name == "students":
            db = generic_database(students_schema(), seed=11)
        else:
            db = generic_database(actors_schema(), seed=12)
        assert_modes_agree(pattern_query(kind, schema_name), db)


# --------------------------------------------------------------------- #
# differential: quantified comparisons (min/max fast paths)
# --------------------------------------------------------------------- #


class TestQuantifiedDifferential:
    @pytest.mark.parametrize("op", ["<", "<=", "=", "<>", ">=", ">"])
    @pytest.mark.parametrize("quantifier", ["ANY", "ALL"])
    @pytest.mark.parametrize("negated", [False, True])
    def test_all_op_quantifier_combinations(self, op, quantifier, negated):
        db = sailors_database()
        prefix = "NOT " if negated else ""
        sql = (
            f"SELECT S.sname FROM Sailor S WHERE {prefix}S.age {op} {quantifier} "
            "(SELECT S2.age FROM Sailor S2 WHERE S2.rating >= 5)"
        )
        assert_modes_agree(sql, db)

    def test_quantified_over_empty_subquery(self):
        db = sailors_database()
        for quantifier, expected in (("ANY", set()), ("ALL", None)):
            sql = (
                f"SELECT S.sname FROM Sailor S WHERE S.age > {quantifier} "
                "(SELECT S2.age FROM Sailor S2 WHERE S2.rating > 99)"
            )
            result = assert_modes_agree(sql, db)
            if expected is not None:
                assert result.as_set() == expected  # ANY over empty is false


# --------------------------------------------------------------------- #
# differential: generated workloads
# --------------------------------------------------------------------- #


class TestGeneratedWorkloadDifferential:
    @pytest.mark.parametrize("seed", range(60))
    def test_sailors_generated(self, seed):
        generator = QueryGenerator(sailors_schema())
        db = sailors_database(n_sailors=4, n_boats=3, n_reservations=8)
        assert_modes_agree(generator.generate(seed), db)

    @pytest.mark.parametrize("seed", range(25))
    def test_chinook_generated(self, seed):
        generator = QueryGenerator(
            chinook_schema(),
            QueryGenConfig(max_depth=2, max_tables_per_block=2),
        )
        db = chinook_database(
            n_artists=3, n_albums=4, n_tracks=8, n_customers=3, n_invoices=4
        )
        assert_modes_agree(generator.generate(seed), db)

    @pytest.mark.parametrize("seed", range(15))
    def test_deeper_nesting_generated(self, seed):
        generator = QueryGenerator(
            sailors_schema(),
            QueryGenConfig(max_depth=3, max_tables_per_block=2),
        )
        db = sailors_database(n_sailors=3, n_boats=3, n_reservations=6)
        assert_modes_agree(generator.generate(seed + 1000), db)
