"""Tests for the persistent on-disk stage cache (pipeline/diskcache.py).

Covers the three trust-boundary behaviors the cache guarantees:

* cross-process warm start (a fresh compiler — and a genuinely fresh
  interpreter — serves a previous run's products from disk);
* version-bump invalidation (a store stamped with a different version is
  wiped, never trusted);
* corrupted-entry eviction (a truncated or garbage entry file is a clean
  miss plus an eviction, not a crash).
"""

from __future__ import annotations

import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.pipeline import (
    DiagramBatchCompiler,
    DiagramCompiler,
    DiskCache,
    stable_key_digest,
)
from repro.relational import BatchExecutor
from repro.workloads import chinook_bench_database, chinook_join_workload

QUERY = (
    "SELECT S.sname FROM Sailors S WHERE S.rating > 7 AND NOT EXISTS "
    "(SELECT R.bid FROM Reserves R WHERE R.sid = S.sid)"
)
VARIANT = (
    "SELECT X.sname FROM Sailors X WHERE X.rating > 7 AND NOT EXISTS "
    "(SELECT Y.bid FROM Reserves Y WHERE Y.sid = X.sid)"
)


class TestDiskCacheStore:
    def test_put_get_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        digest = stable_key_digest("ns", "lex", "SELECT x FROM T")
        assert cache.get(digest, "lex") == (False, None)
        assert cache.put(digest, "lex", {"value": 42})
        assert cache.get(digest, "lex") == (True, {"value": 42})
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1

    def test_stable_key_digest_distinguishes_structures(self):
        assert stable_key_digest("n", "s", ("a", "b")) != stable_key_digest(
            "n", "s", ("ab",)
        )
        assert stable_key_digest("n", "s", "x") != stable_key_digest("n2", "s", "x")
        assert stable_key_digest("n", "s", "x") != stable_key_digest("n", "s2", "x")
        assert stable_key_digest("n", "s", 1) != stable_key_digest("n", "s", "1")
        assert stable_key_digest("n", "s", True) != stable_key_digest("n", "s", 1)

    def test_stable_key_digest_boundaries_cannot_be_forged(self):
        # Values are length-prefixed: text containing the encoder's own
        # markers must not collapse element boundaries (keys embed
        # user-controlled SQL literals).
        assert stable_key_digest("n", "s", ("a", "b")) != stable_key_digest(
            "n", "s", ("a;s:b",)
        )
        assert stable_key_digest("n", "s", ("x", ("y",))) != stable_key_digest(
            "n", "s", (("x", "y"),)
        )
        assert stable_key_digest("ab", "c", "k") != stable_key_digest("a", "bc", "k")

    def test_stage_restriction(self, tmp_path):
        cache = DiskCache(tmp_path, stages=frozenset({"artifact"}))
        assert cache.persists("artifact")
        assert not cache.persists("lex")

    def test_version_bump_wipes_the_store(self, tmp_path):
        cache = DiskCache(tmp_path, version="v1")
        digest = stable_key_digest("ns", "lex", "text")
        cache.put(digest, "lex", "payload")
        assert cache.entry_count() == 1

        bumped = DiskCache(tmp_path, version="v2")
        assert bumped.entry_count() == 0
        assert bumped.get(digest, "lex") == (False, None)
        # Reopening with the old version must not resurrect anything either:
        # the store is stamped v2 now, so v1 wipes it again.
        reopened = DiskCache(tmp_path, version="v1")
        assert reopened.entry_count() == 0

    def test_entry_with_wrong_version_stamp_is_evicted(self, tmp_path):
        cache = DiskCache(tmp_path, version="v1")
        digest = stable_key_digest("ns", "lex", "text")
        cache.put(digest, "lex", "payload")
        # Forge the entry in place with a stale embedded version.
        entry = tmp_path / "lex" / digest[:2] / f"{digest}.pkl"
        entry.write_bytes(pickle.dumps(("repro-diskcache", "v0", "stale")))
        assert cache.get(digest, "lex") == (False, None)
        assert cache.stats.evictions == 1
        assert not entry.exists()

    def test_truncated_entry_is_a_clean_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        digest = stable_key_digest("ns", "render", "key")
        cache.put(digest, "render", "<svg>...</svg>")
        entry = tmp_path / "render" / digest[:2] / f"{digest}.pkl"
        blob = entry.read_bytes()
        entry.write_bytes(blob[: len(blob) // 2])  # truncate mid-pickle
        found, value = cache.get(digest, "render")
        assert (found, value) == (False, None)
        assert cache.stats.evictions == 1
        assert not entry.exists()
        # A recompute stores a fresh, readable entry again.
        cache.put(digest, "render", "<svg>...</svg>")
        assert cache.get(digest, "render") == (True, "<svg>...</svg>")

    def test_garbage_entry_is_a_clean_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        digest = stable_key_digest("ns", "parse", "key")
        path = tmp_path / "parse" / digest[:2] / f"{digest}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00\x01 not a pickle at all")
        assert cache.get(digest, "parse") == (False, None)
        assert not path.exists()

    def test_foreign_pickle_is_rejected(self, tmp_path):
        cache = DiskCache(tmp_path)
        digest = stable_key_digest("ns", "logic", "key")
        path = tmp_path / "logic" / digest[:2] / f"{digest}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "our entry format"}))
        assert cache.get(digest, "logic") == (False, None)
        assert cache.stats.evictions == 1

    def test_unpicklable_value_is_skipped_not_raised(self, tmp_path):
        cache = DiskCache(tmp_path)
        digest = stable_key_digest("ns", "lex", "key")
        assert not cache.put(digest, "lex", lambda: None)
        assert cache.stats.write_errors == 1
        assert cache.get(digest, "lex") == (False, None)


class TestCompilerWarmStart:
    def test_fresh_compiler_warm_starts_from_disk(self, tmp_path):
        first = DiagramCompiler(disk_cache=tmp_path)
        artifact = first.compile(QUERY, formats=("svg", "text"))
        assert first.disk_cache.stats.writes > 0

        second = DiagramCompiler(disk_cache=tmp_path)
        warmed = second.compile(QUERY, formats=("svg", "text"))
        stats = second.stats()
        assert stats.counter("artifact").disk_hits == 1
        assert warmed.fingerprint == artifact.fingerprint
        assert warmed.outputs == artifact.outputs

    def test_warm_start_in_a_separate_process(self, tmp_path):
        first = DiagramCompiler(disk_cache=tmp_path)
        artifact = first.compile(QUERY, formats=("svg",))
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.pipeline import DiagramCompiler\n"
            "compiler = DiagramCompiler(disk_cache=sys.argv[2])\n"
            "artifact = compiler.compile(sys.argv[3], formats=('svg',))\n"
            "assert compiler.stats().counter('artifact').disk_hits == 1, (\n"
            "    compiler.stats().as_dict())\n"
            "print(artifact.fingerprint)\n"
            "sys.stdout.write(artifact.output('svg'))\n"
        )
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        completed = subprocess.run(
            [sys.executable, "-c", script, src_dir, str(tmp_path), QUERY],
            capture_output=True,
            text=True,
            check=True,
        )
        fingerprint, svg = completed.stdout.split("\n", 1)
        assert fingerprint == artifact.fingerprint
        assert svg == artifact.output("svg")

    def test_namespace_isolates_configurations(self, tmp_path):
        plain = DiagramCompiler(disk_cache=tmp_path)
        plain.compile(QUERY, formats=("text",))
        # A compiler with simplify disabled must not be served the
        # simplified compiler's artifacts (different namespace digest).
        literal = DiagramCompiler(disk_cache=tmp_path, simplify=False)
        artifact = literal.compile(QUERY, formats=("text",))
        assert literal.stats().counter("artifact").disk_hits == 0
        # NOT EXISTS survives un-simplified: the ∀ rewrite did not run.
        assert artifact.simplified_tree == artifact.logic_tree

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cold = DiagramCompiler(cache=False, disk_cache=tmp_path)
        cold.compile(QUERY, formats=("text",))
        assert cold.disk_cache.stats.writes == 0
        assert cold.disk_cache.stats.hits == 0
        assert cold.disk_cache.entry_count() == 0

    def test_equivalent_variant_hits_persisted_diagram_classes(self, tmp_path):
        # Same aliases, predicates spelled in swapped order: a different
        # text (and tree), but the same (fingerprint, roles) — so the whole
        # back half (diagram/layout/render) comes from the persisted store.
        reordered = (
            "SELECT S.sname FROM Sailors S WHERE NOT EXISTS "
            "(SELECT R.bid FROM Reserves R WHERE R.sid = S.sid) "
            "AND S.rating > 7"
        )
        first = DiagramBatchCompiler(disk_cache=tmp_path)
        original = first.compile(QUERY, formats=("svg",))
        second = DiagramBatchCompiler(disk_cache=tmp_path)
        artifact = second.compile(reordered, formats=("svg",))
        stats = second.stats()
        assert stats.counter("diagram").disk_hits == 1
        assert stats.counter("render").disk_hits == 1
        assert artifact.fingerprint == original.fingerprint
        assert artifact.output("svg") == original.output("svg")


class TestBatchExecutorWarmStart:
    def test_results_come_from_disk_across_instances(self, tmp_path):
        database = chinook_bench_database(scale=2)
        queries = chinook_join_workload(repeat=1)
        first = BatchExecutor(database, disk_cache=tmp_path)
        results = first.run(queries)
        assert first.stats().result_disk_hits == 0

        second = BatchExecutor(database, disk_cache=tmp_path)
        warmed = second.run(queries)
        assert second.stats().result_disk_hits == len(queries)
        assert [r.as_set() for r in warmed] == [r.as_set() for r in results]

    def test_database_growth_invalidates_results(self, tmp_path):
        database = chinook_bench_database(scale=2)
        queries = chinook_join_workload(repeat=1)
        BatchExecutor(database, disk_cache=tmp_path).run(queries)
        database.insert(
            "Artist", {"ArtistId": 999_999, "Name": "Fresh Band"}
        )
        fresh = BatchExecutor(database, disk_cache=tmp_path)
        fresh.run(queries)
        # Row count changed → every persisted key misses.
        assert fresh.stats().result_disk_hits == 0

    def test_corrupt_result_entry_recomputes(self, tmp_path):
        database = chinook_bench_database(scale=2)
        queries = chinook_join_workload(repeat=1)[:3]
        first = BatchExecutor(database, disk_cache=tmp_path)
        expected = [r.as_set() for r in first.run(queries)]
        for entry in Path(tmp_path).rglob("*.pkl"):
            entry.write_bytes(entry.read_bytes()[:10])
        second = BatchExecutor(database, disk_cache=tmp_path)
        results = second.run(queries)
        assert [r.as_set() for r in results] == expected
        assert second.stats().result_disk_hits == 0
        assert second.disk_cache.stats.evictions == len(queries)


@pytest.mark.parametrize("workers", [2, 3])
class TestParallelDeterminism:
    def test_parallel_matches_serial(self, tmp_path, workers):
        from repro.paper_queries import FIG24_VARIANTS

        corpus = [QUERY, VARIANT, QUERY] * 6 + list(FIG24_VARIANTS)
        serial = DiagramBatchCompiler()
        serial_artifacts = serial.run(corpus, formats=("svg", "text"))
        parallel = DiagramBatchCompiler()
        parallel_artifacts = parallel.run(
            corpus, formats=("svg", "text"), workers=workers
        )
        assert [a.fingerprint for a in serial_artifacts] == [
            a.fingerprint for a in parallel_artifacts
        ]
        for ours, theirs in zip(serial_artifacts, parallel_artifacts):
            assert ours.outputs == theirs.outputs
        assert serial.equivalence_classes() == parallel.equivalence_classes()
        assert parallel.stats().queries == len(corpus)

    def test_workers_respect_custom_store_version_and_cold_mode(
        self, tmp_path, workers
    ):
        # A custom-version store survives a parallel run (workers reopen it
        # with the caller's stamp, not the default) ...
        store = DiskCache(tmp_path, version="pinned-v1")
        batch = DiagramBatchCompiler(disk_cache=store)
        batch.run([QUERY, VARIANT] * 4, formats=("text",), workers=workers)
        assert DiskCache(tmp_path, version="pinned-v1").entry_count() > 0
        # ... and cache=False stays cold inside workers too.
        cold = DiagramBatchCompiler(cache=False)
        cold.run([QUERY] * 6, formats=("text",), workers=workers)
        assert cold.stats().total_hits == 0
