"""Unit tests for the SQL executor over hand-built fixtures."""

from __future__ import annotations

import pytest

from repro.catalog import Schema, sailors_schema
from repro.relational import (
    Database,
    EngineError,
    ExecutionMode,
    Executor,
    ResultSet,
    execute,
)
from repro.sql import parse


@pytest.fixture
def boats_db() -> Database:
    """A tiny, hand-checkable sailors database."""
    db = Database(sailors_schema())
    db.insert_many(
        "Sailor",
        [
            [1, "ann", 7, 30],
            [2, "bob", 5, 40],
            [3, "cyd", 9, 25],
            [4, "dan", 3, 50],
        ],
    )
    db.insert_many(
        "Boat",
        [
            [101, "sprite", "red"],
            [102, "wave", "green"],
            [103, "flame", "red"],
        ],
    )
    db.insert_many(
        "Reserves",
        [
            [1, 101, "mon"],  # ann: red only (101, 103)
            [1, 103, "tue"],
            [2, 101, "mon"],  # bob: red and green
            [2, 102, "tue"],
            [3, 102, "wed"],  # cyd: green only
            # dan reserves nothing
        ],
    )
    return db


class TestConjunctiveQueries:
    def test_projection_and_selection(self, boats_db):
        result = execute(parse("SELECT B.bname FROM Boat B WHERE B.color = 'red'"), boats_db)
        assert result.as_set() == {("sprite",), ("flame",)}

    def test_join(self, boats_db):
        result = execute(
            parse(
                "SELECT S.sname FROM Sailor S, Reserves R, Boat B "
                "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'"
            ),
            boats_db,
        )
        assert result.as_set() == {("ann",), ("bob",)}

    def test_set_semantics_deduplicates(self, boats_db):
        # ann reserves two red boats but must appear once.
        result = execute(
            parse(
                "SELECT S.sid FROM Sailor S, Reserves R, Boat B "
                "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'"
            ),
            boats_db,
        )
        assert sorted(result.rows) == [(1,), (2,)]

    def test_self_join_inequality(self, boats_db):
        result = execute(
            parse(
                "SELECT S1.sname FROM Sailor S1, Sailor S2 "
                "WHERE S1.rating > S2.rating AND S2.sname = 'bob'"
            ),
            boats_db,
        )
        assert result.as_set() == {("ann",), ("cyd",)}

    def test_numeric_comparison(self, boats_db):
        result = execute(parse("SELECT S.sname FROM Sailor S WHERE S.age <= 30"), boats_db)
        assert result.as_set() == {("ann",), ("cyd",)}

    def test_empty_result(self, boats_db):
        result = execute(parse("SELECT S.sname FROM Sailor S WHERE S.age > 99"), boats_db)
        assert len(result) == 0

    def test_multi_column_projection(self, boats_db):
        result = execute(parse("SELECT S.sid, S.sname FROM Sailor S WHERE S.sid = 1"), boats_db)
        assert result.rows == ((1, "ann"),)
        assert result.columns == ("S.sid", "S.sname")


class TestSubqueries:
    def test_correlated_not_exists(self, boats_db):
        # Sailors who reserve no boat at all: dan.
        result = execute(
            parse(
                "SELECT S.sname FROM Sailor S WHERE NOT EXISTS "
                "(SELECT * FROM Reserves R WHERE R.sid = S.sid)"
            ),
            boats_db,
        )
        assert result.as_set() == {("dan",)}

    def test_only_red_boats(self, boats_db):
        # Sailors who reserve only red boats: ann, and vacuously dan.
        result = execute(
            parse(
                """
                SELECT S.sname FROM Sailor S
                WHERE NOT EXISTS(
                    SELECT * FROM Reserves R WHERE R.sid = S.sid
                    AND NOT EXISTS(
                        SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))
                """
            ),
            boats_db,
        )
        assert result.as_set() == {("ann",), ("dan",)}

    def test_all_red_boats(self, boats_db):
        # Sailors who reserve every red boat: only ann (101 and 103).
        result = execute(
            parse(
                """
                SELECT S.sname FROM Sailor S
                WHERE NOT EXISTS(
                    SELECT * FROM Boat B WHERE B.color = 'red'
                    AND NOT EXISTS(
                        SELECT * FROM Reserves R WHERE R.bid = B.bid AND R.sid = S.sid))
                """
            ),
            boats_db,
        )
        assert result.as_set() == {("ann",)}

    def test_in_subquery(self, boats_db):
        result = execute(
            parse(
                "SELECT S.sname FROM Sailor S WHERE S.sid IN "
                "(SELECT R.sid FROM Reserves R WHERE R.bid = 102)"
            ),
            boats_db,
        )
        assert result.as_set() == {("bob",), ("cyd",)}

    def test_not_in_subquery(self, boats_db):
        result = execute(
            parse(
                "SELECT S.sname FROM Sailor S WHERE S.sid NOT IN "
                "(SELECT R.sid FROM Reserves R)"
            ),
            boats_db,
        )
        assert result.as_set() == {("dan",)}

    def test_any_subquery(self, boats_db):
        # Sailors older than at least one other sailor.
        result = execute(
            parse(
                "SELECT S.sname FROM Sailor S WHERE S.age > ANY "
                "(SELECT S2.age FROM Sailor S2)"
            ),
            boats_db,
        )
        assert result.as_set() == {("ann",), ("bob",), ("dan",)}

    def test_all_subquery(self, boats_db):
        # Sailors at least as old as every sailor.
        result = execute(
            parse(
                "SELECT S.sname FROM Sailor S WHERE S.age >= ALL "
                "(SELECT S2.age FROM Sailor S2)"
            ),
            boats_db,
        )
        assert result.as_set() == {("dan",)}

    def test_in_subquery_requires_single_column(self, boats_db):
        with pytest.raises(EngineError):
            execute(
                parse(
                    "SELECT S.sname FROM Sailor S WHERE S.sid IN "
                    "(SELECT R.sid, R.bid FROM Reserves R)"
                ),
                boats_db,
            )

    def test_equivalent_syntactic_variants_agree(self, boats_db):
        """The three Fig. 24 spellings of 'only red boats' return the same set."""
        variants = [
            """
            SELECT S.sname FROM Sailor S
            WHERE NOT EXISTS(
                SELECT * FROM Reserves R WHERE R.sid = S.sid
                AND NOT EXISTS(SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))
            """,
            """
            SELECT S.sname FROM Sailor S
            WHERE S.sid NOT IN(
                SELECT R.sid FROM Reserves R
                WHERE R.bid NOT IN(SELECT B.bid FROM Boat B WHERE B.color = 'red'))
            """,
            """
            SELECT S.sname FROM Sailor S
            WHERE NOT S.sid = ANY(
                SELECT R.sid FROM Reserves R
                WHERE NOT R.bid = ANY(SELECT B.bid FROM Boat B WHERE B.color = 'red'))
            """,
        ]
        results = [execute(parse(sql), boats_db).as_set() for sql in variants]
        assert results[0] == results[1] == results[2] == {("ann",), ("dan",)}


class TestResultSet:
    def test_contains_uses_set_semantics(self):
        result = ResultSet(columns=("a",), rows=((1,), (2,), (3,)))
        assert (2,) in result
        assert (9,) not in result

    def test_as_set_is_cached(self):
        result = ResultSet(columns=("a",), rows=((1,), (2,)))
        assert result.as_set() is result.as_set()

    def test_result_set_still_frozen(self):
        result = ResultSet(columns=("a",), rows=((1,),))
        with pytest.raises(AttributeError):
            result.rows = ()


class TestExecutionModes:
    def test_both_modes_available_on_executor(self, boats_db):
        query = parse(
            "SELECT S.sname FROM Sailor S, Reserves R, Boat B "
            "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'"
        )
        planned = Executor(boats_db).execute(query)
        naive = Executor(boats_db, mode=ExecutionMode.NAIVE).execute(query)
        assert planned.as_set() == naive.as_set() == {("ann",), ("bob",)}

    def test_execute_wrapper_accepts_mode(self, boats_db):
        query = parse("SELECT S.sname FROM Sailor S WHERE S.age <= 30")
        assert (
            execute(query, boats_db, mode=ExecutionMode.NAIVE).as_set()
            == execute(query, boats_db, mode=ExecutionMode.PLANNED).as_set()
        )

    def test_default_mode_is_planned(self, boats_db):
        assert Executor(boats_db).mode is ExecutionMode.PLANNED


class TestGroupBy:
    def test_count_per_group(self, boats_db):
        result = execute(
            parse(
                "SELECT R.sid, COUNT(R.bid) FROM Reserves R GROUP BY R.sid"
            ),
            boats_db,
        )
        assert dict(result.rows) == {1: 2, 2: 2, 3: 1}

    def test_max_per_group_with_join(self, boats_db):
        result = execute(
            parse(
                "SELECT B.color, MAX(S.age) FROM Sailor S, Reserves R, Boat B "
                "WHERE S.sid = R.sid AND R.bid = B.bid GROUP BY B.color"
            ),
            boats_db,
        )
        assert dict(result.rows) == {"red": 40, "green": 40}

    def test_count_star(self, boats_db):
        result = execute(
            parse("SELECT B.color, COUNT(*) FROM Boat B GROUP BY B.color"), boats_db
        )
        assert dict(result.rows) == {"red": 2, "green": 1}

    def test_non_grouped_column_rejected(self, boats_db):
        with pytest.raises(EngineError):
            execute(
                parse("SELECT S.sname, COUNT(*) FROM Sailor S GROUP BY S.sid"), boats_db
            )
