"""End-to-end: real ``repro serve`` subprocess driven over real sockets.

One server process serves the whole module: a full process spawn per test
would dominate runtime, and sharing it also exercises the accumulation of
state (LRU, counters) across independent clients.  The final test tears the
server down with SIGTERM and asserts the graceful-drain exit path.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
SIMPLE = "SELECT S.sname FROM Sailor S WHERE S.rating > 7"


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    return env


@pytest.fixture(scope="module")
def server():
    """``repro serve --port 0`` as a real subprocess; yields (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        cwd=REPO,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert line.startswith("serving on http://"), line
        port = int(line.rsplit(":", 1)[1])
        yield proc, port
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        proc.stdout.close()


def _request(
    port: int, method: str, path: str, document: dict | None = None
) -> tuple[int, dict]:
    """One request, retrying refused connections with capped backoff.

    The subprocess server prints its URL *before* the accept loop is
    fully live; on a slow CI machine the first request can race the bind.
    Refusals inside the startup window are retried, not failed.
    """
    deadline = time.monotonic() + 10.0
    backoff = 0.05
    while True:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request(
                method,
                path,
                body=None if document is None else json.dumps(document),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        except ConnectionRefusedError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(backoff)
            backoff = min(backoff * 2, 0.5)
        finally:
            connection.close()


def test_serve_subprocess_answers_all_endpoints(server):
    _proc, port = server
    status, health = _request(port, "GET", "/healthz")
    assert (status, health["status"]) == (200, "ok")
    assert health["disk_degraded"] is False
    assert health["in_flight"] == 0

    status, payload = _request(
        port, "POST", "/compile", {"sql": SIMPLE, "formats": ["text"]}
    )
    assert status == 200
    assert payload["formats"] == ["text"]
    assert "Sailor" in payload["outputs"]["text"]

    status, fingerprint = _request(port, "POST", "/fingerprint", {"sql": SIMPLE})
    assert status == 200
    assert fingerprint["fingerprint"] == payload["fingerprint"]

    status, bad = _request(port, "POST", "/compile", {"sql": "SELEKT"})
    assert status == 400 and "invalid SQL" in bad["error"]

    status, stats = _request(port, "GET", "/stats")
    assert status == 200
    assert stats["compiles"] >= 1 and stats["bad_requests"] >= 1


def test_bench_serve_cli_against_external_server(server, tmp_path):
    _proc, port = server
    out = tmp_path / "serve.json"
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "bench-serve",
            "--url", f"http://127.0.0.1:{port}",
            "--distinct", "4", "--warm-repeat", "2", "--concurrency", "4",
            "--burst-distinct", "2", "--burst-duplicates", "3",
            "--formats", "text", "--json", str(out),
        ],
        cwd=REPO,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "speedup:" in result.stdout and "coalesce:" in result.stdout
    payload = json.loads(out.read_text())
    assert payload["requests_cold"] == 4
    assert payload["requests_warm"] == 8
    assert payload["burst_requests"] == (2 + 3) * 3  # + Fig. 24 trio
    assert payload["server_stats"]["compiles"] >= payload["burst_distinct"]


def test_sigterm_drains_and_exits_cleanly(server):
    proc, port = server
    assert _request(port, "GET", "/healthz")[0] == 200
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0
    tail = proc.stdout.read()
    assert "draining in-flight work" in tail
    assert "shutdown clean" in tail
    # the listening socket is really gone
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        try:
            _request(port, "GET", "/healthz")
        except (ConnectionError, OSError):
            break
        time.sleep(0.05)
    else:
        pytest.fail("port still accepting connections after shutdown")
