"""Unit tests for the non-degeneracy properties (Section 5.1)."""

from __future__ import annotations

import pytest

from repro.logic import (
    DegenerateQueryError,
    check_properties,
    is_non_degenerate,
    sql_to_logic_tree,
    validate_for_diagram,
)
from repro.sql import parse


class TestLocalAttributes:
    def test_paper_queries_satisfy_property_51(
        self, unique_set_query, q_some_query, q_only_query
    ):
        for query in (unique_set_query, q_some_query, q_only_query):
            report = check_properties(sql_to_logic_tree(query))
            assert report.local_attributes

    def test_violation_detected(self):
        # The paper's own counter-example: the selection F.bar = 'Owl' inside
        # the subquery references only the outer block's table.
        sql = """
        SELECT F.person FROM Frequents F
        WHERE NOT EXISTS (
            SELECT * FROM Serves S
            WHERE S.bar = F.bar AND F.bar = 'Owl')
        """
        report = check_properties(sql_to_logic_tree(parse(sql)))
        assert not report.local_attributes
        assert any("Property 5.1" in violation for violation in report.violations)

    def test_is_non_degenerate_helper(self, q_only_query):
        assert is_non_degenerate(sql_to_logic_tree(q_only_query))


class TestConnectedSubqueries:
    def test_connected_query_passes(self, q_only_query):
        report = check_properties(sql_to_logic_tree(q_only_query))
        assert report.connected_subqueries

    def test_disconnected_subquery_detected(self):
        sql = """
        SELECT A.x FROM A
        WHERE NOT EXISTS (SELECT * FROM B WHERE B.y = 1)
        """
        report = check_properties(sql_to_logic_tree(parse(sql)))
        assert not report.connected_subqueries

    def test_indirect_connection_via_grandchildren_passes(self):
        # The child block only carries a selection predicate, but each of its
        # directly nested blocks references both it and the parent.
        sql = """
        SELECT A.x FROM A
        WHERE NOT EXISTS (
            SELECT * FROM B
            WHERE B.kind = 'k'
            AND NOT EXISTS (SELECT * FROM C WHERE C.y = B.y AND C.z = A.x))
        """
        report = check_properties(sql_to_logic_tree(parse(sql)))
        assert report.connected_subqueries


class TestDepthRestriction:
    def test_depth_three_accepted(self, unique_set_query):
        report = check_properties(sql_to_logic_tree(unique_set_query))
        assert report.depth_ok and report.is_valid

    def test_depth_four_rejected(self):
        sql = """
        SELECT A.x FROM A WHERE NOT EXISTS (
            SELECT * FROM B WHERE B.a = A.x AND NOT EXISTS (
                SELECT * FROM C WHERE C.b = B.a AND NOT EXISTS (
                    SELECT * FROM D WHERE D.c = C.b AND NOT EXISTS (
                        SELECT * FROM E WHERE E.d = D.c))))
        """
        report = check_properties(sql_to_logic_tree(parse(sql)))
        assert not report.depth_ok
        with pytest.raises(DegenerateQueryError):
            validate_for_diagram(sql_to_logic_tree(parse(sql)))

    def test_validate_for_diagram_passes_valid_query(self, q_only_query):
        validate_for_diagram(sql_to_logic_tree(q_only_query))  # should not raise
