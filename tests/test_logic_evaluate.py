"""Unit tests for FOL evaluation of Logic Trees against the SQL executor."""

from __future__ import annotations

import pytest

from repro.logic import (
    evaluate_logic_tree,
    simplify_logic_tree,
    sql_to_logic_tree,
)
from repro.relational import execute
from repro.sql import parse
from repro.workloads import beers_database, sailors_database

ONLY_RED = """
SELECT S.sname FROM Sailor S
WHERE NOT EXISTS(
    SELECT * FROM Reserves R WHERE R.sid = S.sid
    AND NOT EXISTS(SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))
"""

NO_RED = """
SELECT S.sname FROM Sailor S
WHERE NOT EXISTS(
    SELECT * FROM Reserves R WHERE R.sid = S.sid
    AND EXISTS(SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))
"""

ALL_RED = """
SELECT S.sname FROM Sailor S
WHERE NOT EXISTS(
    SELECT * FROM Boat B WHERE B.color = 'red'
    AND NOT EXISTS(SELECT * FROM Reserves R WHERE R.bid = B.bid AND R.sid = S.sid))
"""


@pytest.fixture(scope="module")
def db():
    return sailors_database()


def both_ways(sql: str, database):
    query = parse(sql)
    sql_result = execute(query, database).as_set()
    tree = sql_to_logic_tree(query)
    lt_result = evaluate_logic_tree(tree, database).as_set()
    simplified_result = evaluate_logic_tree(simplify_logic_tree(tree), database).as_set()
    return sql_result, lt_result, simplified_result


class TestAgainstExecutor:
    @pytest.mark.parametrize("sql", [ONLY_RED, NO_RED, ALL_RED])
    def test_pattern_queries_agree(self, sql, db):
        sql_result, lt_result, simplified_result = both_ways(sql, db)
        assert sql_result == lt_result == simplified_result

    def test_conjunctive_join(self, db):
        sql = (
            "SELECT S.sname FROM Sailor S, Reserves R, Boat B "
            "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'"
        )
        sql_result, lt_result, simplified_result = both_ways(sql, db)
        assert sql_result == lt_result == simplified_result
        assert len(sql_result) > 0  # non-trivial on this data

    def test_in_variant(self, db):
        sql = (
            "SELECT S.sname FROM Sailor S WHERE S.sid IN "
            "(SELECT R.sid FROM Reserves R WHERE R.bid IN "
            "(SELECT B.bid FROM Boat B WHERE B.color = 'green'))"
        )
        sql_result, lt_result, simplified_result = both_ways(sql, db)
        assert sql_result == lt_result == simplified_result

    def test_all_comparison(self, db):
        sql = (
            "SELECT S.sname FROM Sailor S WHERE S.rating >= ALL "
            "(SELECT S2.rating FROM Sailor S2)"
        )
        sql_result, lt_result, simplified_result = both_ways(sql, db)
        assert sql_result == lt_result == simplified_result
        assert len(sql_result) >= 1

    def test_unique_set_on_beers(self, unique_set_sql):
        database = beers_database(n_drinkers=5, n_beers=4)
        sql_result, lt_result, simplified_result = both_ways(unique_set_sql, database)
        assert sql_result == lt_result == simplified_result

    def test_group_by_aggregation(self, db):
        sql = "SELECT R.sid, COUNT(R.bid) FROM Reserves R GROUP BY R.sid"
        query = parse(sql)
        sql_result = execute(query, db).as_set()
        lt_result = evaluate_logic_tree(sql_to_logic_tree(query), db).as_set()
        assert sql_result == lt_result

    def test_result_columns_match_select_list(self, db):
        query = parse("SELECT S.sid, S.sname FROM Sailor S WHERE S.sid = 1")
        result = evaluate_logic_tree(sql_to_logic_tree(query), db)
        assert result.columns == ("S.sid", "S.sname")

    def test_empty_result(self, db):
        query = parse("SELECT S.sname FROM Sailor S WHERE S.age > 1000")
        assert len(evaluate_logic_tree(sql_to_logic_tree(query), db)) == 0
