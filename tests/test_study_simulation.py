"""Unit tests for the participant simulation, exclusion filter and analysis."""

from __future__ import annotations

import statistics

import pytest

from repro.study import (
    Condition,
    DEFAULT_SEED,
    ParticipantKind,
    PopulationConfig,
    analyze_study,
    apply_exclusion,
    exclusion_accuracy,
    format_fig7,
    format_fig18,
    format_participant_deltas,
    generate_population,
    legitimate_responses,
    participant_condition_summaries,
    questions_without_grouping,
    simulate_study,
)


@pytest.fixture(scope="module")
def study():
    return simulate_study()


@pytest.fixture(scope="module")
def exclusion(study):
    return apply_exclusion(study)


@pytest.fixture(scope="module")
def results_nine(study, exclusion):
    nine_ids = {q.question_id for q in questions_without_grouping()}
    responses = [
        r for r in legitimate_responses(study, exclusion) if r.question_id in nine_ids
    ]
    return analyze_study(responses, n_bootstrap=300)


class TestPopulation:
    def test_population_size_matches_paper(self):
        population = generate_population(PopulationConfig())
        assert len(population) == 80
        kinds = [p.kind for p in population]
        assert kinds.count(ParticipantKind.LEGITIMATE) == 42
        assert kinds.count(ParticipantKind.SPEEDER) == 20
        assert kinds.count(ParticipantKind.CHEATER) == 18

    def test_generation_is_deterministic(self):
        a = generate_population(PopulationConfig(), seed=5)
        b = generate_population(PopulationConfig(), seed=5)
        assert [p.base_time for p in a] == [p.base_time for p in b]

    def test_legitimate_profiles_have_condition_effects(self):
        population = generate_population(PopulationConfig())
        legit = [p for p in population if p.kind is ParticipantKind.LEGITIMATE]
        mean_qv = statistics.fmean(p.time_multipliers[Condition.QV] for p in legit)
        assert 0.6 < mean_qv < 0.9
        assert all(p.time_multipliers[Condition.SQL] == 1.0 for p in legit)

    def test_illegitimate_profiles_are_fast(self):
        population = generate_population(PopulationConfig())
        for profile in population:
            if profile.kind is not ParticipantKind.LEGITIMATE:
                assert profile.base_time < 30


class TestSimulation:
    def test_one_response_per_participant_question(self, study):
        assert len(study.responses) == 80 * 12

    def test_simulation_is_deterministic(self):
        a = simulate_study(seed=DEFAULT_SEED)
        b = simulate_study(seed=DEFAULT_SEED)
        assert a.responses == b.responses

    def test_conditions_follow_latin_square(self, study):
        for profile in study.participants[:12]:
            records = study.responses_of(profile.participant_id)
            conditions = [r.condition for r in sorted(records, key=lambda r: r.question_index)]
            assert conditions[0:3] == conditions[3:6]

    def test_times_are_positive(self, study):
        assert all(r.time_seconds > 0 for r in study.responses)


class TestExclusion:
    def test_counts_match_paper(self, exclusion):
        assert exclusion.n_total == 80
        assert exclusion.n_excluded == 38
        assert exclusion.n_legitimate == 42

    def test_filter_matches_ground_truth(self, study, exclusion):
        assert exclusion_accuracy(study, exclusion) == 1.0

    def test_legitimate_participants_have_slow_mean_times(self, exclusion):
        for stats in exclusion.stats:
            if not stats.excluded:
                assert stats.mean_time >= exclusion.threshold_seconds

    def test_reasons_are_populated_for_excluded(self, exclusion):
        for stats in exclusion.stats:
            assert stats.excluded == bool(stats.reason)

    def test_legitimate_responses_filtering(self, study, exclusion):
        responses = legitimate_responses(study, exclusion)
        assert len(responses) == 42 * 12
        assert {r.participant_id for r in responses} == set(exclusion.legitimate_ids)

    def test_threshold_is_configurable(self, study):
        strict = apply_exclusion(study, threshold_seconds=60.0)
        assert strict.n_excluded > 38


class TestAnalysis:
    def test_headline_shape_matches_paper(self, results_nine):
        time_qv = results_nine.comparison("time", Condition.QV)
        time_both = results_nine.comparison("time", Condition.BOTH)
        error_qv = results_nine.comparison("error", Condition.QV)
        error_both = results_nine.comparison("error", Condition.BOTH)
        # Fig. 7 shape: QV meaningfully faster (≈ -20 %, p < 0.001), Both ≈ SQL,
        # error reductions for QV and Both with weaker evidence.
        assert -0.35 < time_qv.percent_change < -0.10
        assert time_qv.p_value_adjusted < 0.001
        assert abs(time_both.percent_change) < 0.10
        assert time_both.p_value_adjusted > 0.05
        assert error_qv.percent_change < 0
        assert error_both.percent_change < 0
        assert error_qv.p_value_adjusted > 0.01

    def test_majority_of_participants_faster_with_qv(self, results_nine):
        time_qv = results_nine.comparison("time", Condition.QV)
        assert 0.6 < time_qv.fraction_improved < 0.95

    def test_confidence_intervals_bracket_estimates(self, results_nine):
        for condition in Condition:
            interval = results_nine.time_intervals[condition]
            assert interval.low <= results_nine.median_time[condition] <= interval.high

    def test_participant_summaries(self, study, exclusion):
        responses = legitimate_responses(study, exclusion)
        summaries = participant_condition_summaries(responses)
        assert len(summaries) == 42 * 3
        assert all(s.n_questions == 4 for s in summaries)

    def test_fraction_fields_sum_to_one(self, results_nine):
        comparison = results_nine.comparison("error", Condition.QV)
        total = (
            comparison.fraction_improved
            + comparison.fraction_worse
            + comparison.fraction_tied
        )
        assert total == pytest.approx(1.0)

    def test_analysis_requires_responses(self):
        with pytest.raises(ValueError):
            analyze_study([])


class TestReports:
    def test_fig7_report_mentions_all_conditions(self, results_nine):
        text = format_fig7(results_nine)
        assert "SQL" in text and "QV" in text and "Both" in text
        assert "Wilcoxon" in text

    def test_deltas_report(self, results_nine):
        text = format_participant_deltas(results_nine)
        assert "faster with QV" in text

    def test_fig18_report(self, exclusion):
        text = format_fig18(exclusion)
        assert "38 excluded" in text
        assert "42 legitimate" in text
