"""Unit tests for SQL → Logic Tree translation."""

from __future__ import annotations

import pytest

from repro.logic import Quantifier, TranslationError, sql_to_logic_tree
from repro.sql import ColumnRef, Comparison, parse


class TestRootBlock:
    def test_root_has_no_quantifier(self, q_some_query):
        tree = sql_to_logic_tree(q_some_query)
        assert tree.root.quantifier is None

    def test_root_tables_and_predicates(self, q_some_query):
        tree = sql_to_logic_tree(q_some_query)
        assert [t.effective_alias for t in tree.root.tables] == ["F", "L", "S"]
        assert len(tree.root.predicates) == 3
        assert tree.root.children == ()

    def test_select_items_recorded(self, q_some_query):
        tree = sql_to_logic_tree(q_some_query)
        assert tree.select_items == (ColumnRef("F", "person"),)

    def test_group_by_recorded(self):
        tree = sql_to_logic_tree(
            parse("SELECT T.AlbumId, MAX(T.Milliseconds) FROM Track T GROUP BY T.AlbumId")
        )
        assert tree.group_by == (ColumnRef("T", "AlbumId"),)

    def test_select_star_root_rejected(self):
        with pytest.raises(TranslationError):
            sql_to_logic_tree(parse("SELECT * FROM T"))


class TestNestedBlocks:
    def test_not_exists_becomes_not_exists_node(self, q_only_query):
        tree = sql_to_logic_tree(q_only_query)
        child = tree.root.children[0]
        assert child.quantifier is Quantifier.NOT_EXISTS
        assert [t.effective_alias for t in child.tables] == ["S"]
        grandchild = child.children[0]
        assert grandchild.quantifier is Quantifier.NOT_EXISTS

    def test_exists_becomes_exists_node(self):
        tree = sql_to_logic_tree(
            parse("SELECT A.x FROM A WHERE EXISTS (SELECT * FROM B WHERE B.y = A.x)")
        )
        assert tree.root.children[0].quantifier is Quantifier.EXISTS

    def test_unique_set_structure(self, unique_set_query):
        tree = sql_to_logic_tree(unique_set_query)
        assert tree.depth() == 3
        assert tree.node_count() == 6
        level1 = tree.root.children[0]
        assert len(level1.children) == 2
        assert all(c.quantifier is Quantifier.NOT_EXISTS for c in level1.children)

    def test_depth_and_alias_lookup(self, unique_set_query):
        tree = sql_to_logic_tree(unique_set_query)
        assert tree.depth_of_alias("L1") == 0
        assert tree.depth_of_alias("L2") == 1
        assert tree.depth_of_alias("L3") == 2
        assert tree.depth_of_alias("L6") == 3
        assert tree.alias_map()["l4"] == "Likes"

    def test_parent_of(self, unique_set_query):
        tree = sql_to_logic_tree(unique_set_query)
        l3_node = tree.node_of_alias("L3")
        parent = tree.parent_of(l3_node)
        assert "l2" in parent.local_aliases()
        assert tree.parent_of(tree.root) is None

    def test_describe_mentions_quantifiers(self, unique_set_query):
        text = sql_to_logic_tree(unique_set_query).describe()
        assert "∄" in text and "SELECT" in text


class TestSyntacticVariantsCollapse:
    """IN / ANY / ALL all reduce to ∃/∄ nodes plus a linking predicate."""

    def test_in_subquery(self):
        tree = sql_to_logic_tree(
            parse("SELECT A.x FROM A WHERE A.x IN (SELECT B.y FROM B)")
        )
        child = tree.root.children[0]
        assert child.quantifier is Quantifier.EXISTS
        assert Comparison(ColumnRef("A", "x"), "=", ColumnRef("B", "y")) in child.predicates

    def test_not_in_subquery(self):
        tree = sql_to_logic_tree(
            parse("SELECT A.x FROM A WHERE A.x NOT IN (SELECT B.y FROM B)")
        )
        assert tree.root.children[0].quantifier is Quantifier.NOT_EXISTS

    def test_any_subquery(self):
        tree = sql_to_logic_tree(
            parse("SELECT A.x FROM A WHERE A.x < ANY (SELECT B.y FROM B)")
        )
        child = tree.root.children[0]
        assert child.quantifier is Quantifier.EXISTS
        assert child.predicates[0].op == "<"

    def test_all_subquery_becomes_negated_exists(self):
        tree = sql_to_logic_tree(
            parse("SELECT A.x FROM A WHERE A.x <= ALL (SELECT B.y FROM B)")
        )
        child = tree.root.children[0]
        assert child.quantifier is Quantifier.NOT_EXISTS
        assert child.predicates[0].op == ">"  # negated operator

    def test_negated_any(self):
        tree = sql_to_logic_tree(
            parse("SELECT A.x FROM A WHERE NOT A.x = ANY (SELECT B.y FROM B)")
        )
        assert tree.root.children[0].quantifier is Quantifier.NOT_EXISTS

    def test_negated_all(self):
        tree = sql_to_logic_tree(
            parse("SELECT A.x FROM A WHERE NOT A.x = ALL (SELECT B.y FROM B)")
        )
        child = tree.root.children[0]
        assert child.quantifier is Quantifier.EXISTS
        assert child.predicates[0].op == "<>"

    def test_fig24_variants_have_identical_trees(self):
        variants = [
            """
            SELECT S.sname FROM Sailor S
            WHERE NOT EXISTS(
                SELECT * FROM Reserves R WHERE R.sid = S.sid
                AND NOT EXISTS(SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))
            """,
            """
            SELECT S.sname FROM Sailor S
            WHERE S.sid NOT IN(
                SELECT R.sid FROM Reserves R
                WHERE R.bid NOT IN(SELECT B.bid FROM Boat B WHERE B.color = 'red'))
            """,
            """
            SELECT S.sname FROM Sailor S
            WHERE NOT S.sid = ANY(
                SELECT R.sid FROM Reserves R
                WHERE NOT R.bid = ANY(SELECT B.bid FROM Boat B WHERE B.color = 'red'))
            """,
        ]
        trees = [sql_to_logic_tree(parse(sql)) for sql in variants]
        shapes = [
            [(node.quantifier, tuple(t.name for t in node.tables)) for node, _ in t.iter_with_depth()]
            for t in trees
        ]
        assert shapes[0] == shapes[1] == shapes[2]

    def test_in_subquery_with_aggregate_rejected(self):
        with pytest.raises(TranslationError):
            sql_to_logic_tree(
                parse("SELECT A.x FROM A WHERE A.x IN (SELECT COUNT(B.y) FROM B GROUP BY B.z)")
            )

    def test_nested_group_by_rejected(self):
        with pytest.raises(TranslationError):
            sql_to_logic_tree(
                parse(
                    "SELECT A.x FROM A WHERE EXISTS "
                    "(SELECT B.y FROM B GROUP BY B.y)"
                )
            )
