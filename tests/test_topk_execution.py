"""TopK execution: bounded enumeration, distinct fusion, strategy choice.

The cross-engine *semantics* of ranked queries live in the differential
suite (``tests/test_columnar_differential.py``); this module pins down the
*mechanics* the ISSUE promises — plan shapes, the heap-vs-sort strategy
hint, the non-materialization guarantee observable through
``ExecutionStats`` counters, and the bounded distinct heap's eviction
rules — with small deterministic databases.
"""

from __future__ import annotations

import pytest

from repro.catalog.schema import Schema
from repro.relational import (
    ExecutionContext,
    ExecutionMode,
    Executor,
    plan_query,
)
from repro.relational.database import Database
from repro.relational.executor import ExecutionStats, _topk_distinct_heap
from repro.relational.plan import Aggregate, Distinct, Project, TopK
from repro.relational.sqlbackend.lower import lower_query
from repro.relational.values import OrderKey
from repro.sql import parse

N_EVENTS = 2000
KINDS = ("alpha", "beta", "gamma", "delta")


@pytest.fixture(scope="module")
def database() -> Database:
    schema = Schema("events")
    schema.add_table("Ev", [("id", "int"), ("kind", "str"), ("score", "int")])
    schema.add_table("Ref", [("kind", "str")])
    db = Database(schema)
    db.insert_many(
        "Ev",
        [
            (i, KINDS[i % len(KINDS)], (i * 7919) % 101)
            for i in range(N_EVENTS)
        ],
    )
    db.insert_many("Ref", [(kind,) for kind in KINDS])
    return db


def _run(query_text: str, db: Database, mode: ExecutionMode):
    """Execute through a fresh context and return (rows, stats)."""
    context = ExecutionContext(db)
    executor = Executor(db, mode=mode, context=context)
    result = executor.execute(parse(query_text))
    return list(result.rows), context.stats


# --------------------------------------------------------------------- #
# plan shapes
# --------------------------------------------------------------------- #


class TestPlanShapes:
    def test_plain_ranked_query_fuses_distinct_into_topk(self, database):
        plan = plan_query(
            parse("SELECT E.id FROM Ev E ORDER BY E.id LIMIT 10"), database
        )
        root = plan.root
        assert isinstance(root, TopK)
        assert root.distinct is True
        assert isinstance(root.child, Project)  # Distinct was absorbed
        assert root.limit == 10 and root.offset == 0

    def test_grouped_ranked_query_sits_on_aggregate_without_distinct(
        self, database
    ):
        plan = plan_query(
            parse(
                "SELECT E.kind, COUNT(*) FROM Ev E GROUP BY E.kind "
                "ORDER BY E.kind LIMIT 2"
            ),
            database,
        )
        root = plan.root
        assert isinstance(root, TopK)
        assert root.distinct is False  # group rows are already unique
        assert isinstance(root.child, Aggregate)

    def test_bare_limit_compiles_to_keyless_lazy_topk(self, database):
        plan = plan_query(parse("SELECT E.id FROM Ev E LIMIT 3"), database)
        root = plan.root
        assert isinstance(root, TopK)
        assert root.keys == () and root.strategy == "heap"

    def test_unranked_query_keeps_distinct_root(self, database):
        plan = plan_query(parse("SELECT E.id FROM Ev E"), database)
        assert isinstance(plan.root, Distinct)

    def test_strategy_prefers_heap_for_small_k_and_sort_for_large(
        self, database
    ):
        small = plan_query(
            parse("SELECT E.id FROM Ev E ORDER BY E.id LIMIT 10"), database
        )
        large = plan_query(
            parse("SELECT E.id FROM Ev E ORDER BY E.id LIMIT 1000"), database
        )
        assert small.root.strategy == "heap"
        assert large.root.strategy == "sort"


# --------------------------------------------------------------------- #
# non-materialization counters
# --------------------------------------------------------------------- #


JOIN_TOPK = (
    "SELECT E.id FROM Ev E, Ref R WHERE E.kind = R.kind "
    "ORDER BY E.id LIMIT 10"
)


class TestBoundedMaterialization:
    @pytest.mark.parametrize(
        "mode", (ExecutionMode.PLANNED, ExecutionMode.COLUMNAR)
    )
    def test_limit_on_join_never_holds_more_than_the_cutoff(
        self, database, mode
    ):
        rows, stats = _run(JOIN_TOPK, database, mode)
        assert rows == [(i,) for i in range(10)]
        # The whole join output was consumed (ordering needs every
        # candidate) but at most the cutoff was ever resident.
        assert stats.topk_input_rows == N_EVENTS
        assert stats.topk_held_rows <= 10

    def test_bare_limit_exits_the_row_pipeline_early(self, database):
        rows, stats = _run(
            "SELECT E.id FROM Ev E LIMIT 3", database, ExecutionMode.PLANNED
        )
        assert len(rows) == 3
        # islice stopped pulling after 3 distinct rows: the scan never ran.
        assert stats.topk_input_rows == 3

    def test_sort_strategy_still_counts_held_rows(self, database):
        rows, stats = _run(
            "SELECT E.id FROM Ev E ORDER BY E.id LIMIT 1000",
            database,
            ExecutionMode.PLANNED,
        )
        assert len(rows) == 1000
        assert stats.topk_held_rows == N_EVENTS  # full sort, by design


# --------------------------------------------------------------------- #
# the bounded distinct heap
# --------------------------------------------------------------------- #


def _heap(rows: list[tuple], cutoff: int) -> list[tuple]:
    return _topk_distinct_heap(
        iter(rows),
        lambda row: OrderKey(row, (False,)),
        cutoff,
        ExecutionStats(),
    )


class TestDistinctHeap:
    def test_duplicate_of_evicted_row_cannot_reenter(self):
        # (5,) is admitted, evicted by better rows, then reappears — the
        # worst resident key only ever improves, so it stays out.
        rows = [(5,), (3,), (1,), (3,), (5,), (0,)]
        assert _heap(rows, 2) == [(0,), (1,)]

    def test_duplicates_of_resident_rows_are_skipped(self):
        assert _heap([(1,), (1,), (2,), (2,), (1,)], 2) == [(1,), (2,)]

    def test_boundary_ties_do_not_evict(self):
        # Equal keys never displace a resident row: both (2,)s are the
        # same row here, but distinct rows tying at the boundary keep the
        # first-admitted one (the arbitrary choice LIMIT semantics allow).
        assert _heap([(1,), (2,), (2,), (3,)], 2) == [(1,), (2,)]

    def test_holds_at_most_cutoff_rows(self):
        stats = ExecutionStats()
        out = _topk_distinct_heap(
            iter([(value % 50,) for value in range(1000)]),
            lambda row: OrderKey(row, (False,)),
            5,
            stats,
        )
        assert out == [(0,), (1,), (2,), (3,), (4,)]
        assert stats.topk_held_rows == 5


# --------------------------------------------------------------------- #
# engine agreement on the fused-distinct path + SQL rendering
# --------------------------------------------------------------------- #


ALL_MODES = (
    ExecutionMode.NAIVE,
    ExecutionMode.PLANNED,
    ExecutionMode.COLUMNAR,
    ExecutionMode.SQL,
)


class TestFusedDistinct:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_distinct_ranked_output_matches_everywhere(self, database, mode):
        rows, _ = _run(
            "SELECT DISTINCT E.score FROM Ev E ORDER BY E.score DESC LIMIT 5",
            database,
            mode,
        )
        assert rows == [(100,), (99,), (98,), (97,), (96,)]

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_distinct_ranked_with_offset(self, database, mode):
        rows, _ = _run(
            "SELECT DISTINCT E.score FROM Ev E "
            "ORDER BY E.score LIMIT 3 OFFSET 2",
            database,
            mode,
        )
        assert rows == [(2,), (3,), (4,)]

    def test_sql_lowering_renders_order_limit_and_distinct(self, database):
        plan = plan_query(
            parse(
                "SELECT E.score FROM Ev E ORDER BY E.score DESC LIMIT 5"
            ),
            database,
        )
        sql = lower_query(plan, database).sql
        assert "SELECT DISTINCT *" in sql
        assert "ORDER BY" in sql and "DESC" in sql
        assert "LIMIT" in sql
