"""Unit tests for the TRC rendering of Logic Trees (Fig. 9)."""

from __future__ import annotations

from repro.logic import logic_tree_to_trc, simplify_logic_tree, sql_to_logic_tree
from repro.sql import parse


class TestTRCRendering:
    def test_conjunctive_query(self, q_some_query):
        trc = logic_tree_to_trc(sql_to_logic_tree(q_some_query))
        assert trc.text.startswith("{F.person | ∃F ∈ Frequents")
        assert "∃L ∈ Likes" in trc.text and "∃S ∈ Serves" in trc.text
        assert "F.person = L.person" in trc.text

    def test_nested_query_uses_not_exists_symbol(self, q_only_query):
        trc = logic_tree_to_trc(sql_to_logic_tree(q_only_query))
        assert trc.text.count("∄") == 2
        assert "∄S ∈ Serves" in trc.text
        assert "∄L ∈ Likes" in trc.text

    def test_unique_set_matches_fig9a_structure(self, unique_set_query):
        trc = logic_tree_to_trc(sql_to_logic_tree(unique_set_query))
        # Fig. 9a: one ∃ for L1 and five ∄ for L2–L6.
        assert trc.text.count("∃") == 1
        assert trc.text.count("∄") == 5
        assert "L1.drinker <> L2.drinker" in trc.text

    def test_simplified_unique_set_matches_fig9b_structure(self, unique_set_query):
        tree = simplify_logic_tree(sql_to_logic_tree(unique_set_query))
        trc = logic_tree_to_trc(tree)
        # Fig. 9b: ∀ for L3 and L5, ∃ for L1, L4 and L6, ∄ only for L2.
        assert trc.text.count("∀") == 2
        assert trc.text.count("∄") == 1
        assert trc.text.count("∃") == 3

    def test_counts(self, q_only_query):
        trc = logic_tree_to_trc(sql_to_logic_tree(q_only_query))
        assert trc.quantifier_count == 3  # three blocks
        assert trc.predicate_count == 4  # 3 comparisons + 1 projection

    def test_brackets_balance(self, unique_set_query):
        trc = logic_tree_to_trc(sql_to_logic_tree(unique_set_query))
        assert trc.text.count("[") == trc.text.count("]")
        assert trc.text.startswith("{") and trc.text.endswith("}")

    def test_multi_table_block(self):
        tree = sql_to_logic_tree(
            parse(
                "SELECT A.x FROM A WHERE NOT EXISTS "
                "(SELECT * FROM B, C WHERE B.y = A.x AND C.z = B.y)"
            )
        )
        trc = logic_tree_to_trc(tree)
        assert "∄B ∈ B [∃C ∈ C" in trc.text

    def test_custom_result_variable(self, q_some_query):
        trc = logic_tree_to_trc(sql_to_logic_tree(q_some_query), result_variable="R")
        assert trc.text.startswith("{F.person")

    def test_str_returns_text(self, q_some_query):
        trc = logic_tree_to_trc(sql_to_logic_tree(q_some_query))
        assert str(trc) == trc.text
