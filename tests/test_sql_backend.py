"""Unit tests for the SQL backend: registry, store, lowering, error mapping.

The cross-engine *semantics* are covered by the four-engine differential
suite (``test_columnar_differential.py``); this module pins the backend's
machinery — the pluggable registry, DDL generation and bulk load, the
shape of the generated SQL, the sqlite3 → engine-error mapping, and the
context-version cache invalidation.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.catalog import sailors_schema
from repro.relational import (
    BatchExecutor,
    Database,
    EngineError,
    ExecutionContext,
    ExecutionMode,
    Executor,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
    backend_for,
    execute,
    registered_modes,
)
from repro.relational.errors import AmbiguousColumnError
from repro.relational.sqlbackend import (
    SQLiteStore,
    lower_query,
    map_sqlite_error,
    table_ddl,
)
from repro.relational.sqlbackend.store import quote_identifier
from repro.sql import parse
from repro.workloads import sailors_database


@pytest.fixture
def sailors():
    return sailors_database(n_sailors=4, n_boats=3, n_reservations=6)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #


class TestBackendRegistry:
    def test_every_mode_resolves(self):
        for mode in ExecutionMode:
            backend = backend_for(mode)
            assert backend.mode is mode

    def test_lazy_modes_appear_after_use(self):
        backend_for(ExecutionMode.SQL)
        assert ExecutionMode.SQL in registered_modes()

    def test_unknown_mode_raises_engine_error(self):
        class FakeMode:
            value = "quantum"

            def __repr__(self):
                return "<FakeMode quantum>"

        with pytest.raises(EngineError, match="no execution backend"):
            backend_for(FakeMode())

    def test_executor_dispatches_through_registry(self, sailors):
        query = parse("SELECT S.sname FROM Sailor S WHERE S.rating >= 7")
        rows = Executor(sailors, mode=ExecutionMode.PLANNED).execute(query)
        sql = Executor(sailors, mode=ExecutionMode.SQL).execute(query)
        assert sql.columns == rows.columns
        assert sql.as_set() == rows.as_set()


# --------------------------------------------------------------------- #
# store: DDL + bulk load
# --------------------------------------------------------------------- #


class TestSQLiteStore:
    def test_quote_identifier_escapes_quotes(self):
        assert quote_identifier("Sailor") == '"Sailor"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_table_ddl_types(self, sailors):
        ddl = table_ddl(sailors, "Sailor")
        assert ddl.startswith('CREATE TABLE "Sailor" (')
        assert '"sid" INTEGER' in ddl
        assert '"sname" TEXT' in ddl
        assert '"age" INTEGER' in ddl

    def test_load_mirrors_every_relation(self, sailors):
        store = SQLiteStore(sailors)
        try:
            for table in sailors.table_names():
                count = store.connection.execute(
                    f"SELECT COUNT(*) FROM {quote_identifier(table)}"
                ).fetchone()[0]
                assert count == sailors.row_count(table)
            assert store.rows_loaded == sailors.total_rows()
            assert store.version == sailors.total_rows()
        finally:
            store.close()

    def test_empty_database_loads_empty_tables(self):
        store = SQLiteStore(Database(sailors_schema()))
        try:
            count = store.connection.execute(
                'SELECT COUNT(*) FROM "Sailor"'
            ).fetchone()[0]
            assert count == 0
            assert store.rows_loaded == 0
        finally:
            store.close()

    def test_store_rebuilt_when_database_grows(self, sailors):
        context = ExecutionContext(sailors)
        executor = Executor(sailors, mode=ExecutionMode.SQL, context=context)
        query = parse("SELECT S.sname FROM Sailor S")
        before = len(executor.execute(query))
        sailors.insert(
            "Sailor", {"sid": 999, "sname": "newcomer", "rating": 5, "age": 31}
        )
        after = executor.execute(query)
        assert len(after) == before + 1
        assert "newcomer" in {row[0] for row in after.rows}
        assert context.stats.sql_store_builds == 2  # one per version


# --------------------------------------------------------------------- #
# lowering
# --------------------------------------------------------------------- #


class TestLowering:
    def _lower(self, sql_text, db):
        context = ExecutionContext(db)
        return lower_query(context.plan(parse(sql_text)), db)

    def test_constants_become_binds(self, sailors):
        lowered = self._lower(
            "SELECT S.sname FROM Sailor S WHERE S.rating > 7 AND S.sname = 'x'",
            sailors,
        )
        assert "7" not in lowered.sql  # value lives in binds, not the text
        assert "'x'" not in lowered.sql
        assert set(lowered.binds.values()) == {7, "x"}
        assert all(f":{name}" in lowered.sql for name in lowered.binds)

    def test_columns_and_families(self, sailors):
        lowered = self._lower(
            "SELECT S.sname, S.age FROM Sailor S", sailors
        )
        assert lowered.columns == ("S.sname", "S.age")
        assert lowered.families == ("str", "num")

    def test_distinct_root(self, sailors):
        lowered = self._lower("SELECT S.sid FROM Sailor S", sailors)
        assert lowered.sql.startswith("SELECT DISTINCT * FROM (")

    def test_global_aggregate_gains_having(self, sailors):
        lowered = self._lower("SELECT COUNT(*) FROM Sailor S", sailors)
        assert "HAVING COUNT(*) > 0" in lowered.sql

    def test_grouped_aggregate_has_no_having(self, sailors):
        lowered = self._lower(
            "SELECT S.rating, COUNT(*) FROM Sailor S GROUP BY S.rating", sailors
        )
        assert "GROUP BY" in lowered.sql
        assert "HAVING" not in lowered.sql

    def test_quantified_any_rewrites_to_exists(self, sailors):
        lowered = self._lower(
            "SELECT S.sname FROM Sailor S WHERE S.rating > ANY "
            "(SELECT S2.rating FROM Sailor S2)",
            sailors,
        )
        assert "EXISTS (SELECT 1 FROM (" in lowered.sql

    def test_quantified_all_rewrites_to_not_exists(self, sailors):
        lowered = self._lower(
            "SELECT S.sname FROM Sailor S WHERE S.rating >= ALL "
            "(SELECT S2.rating FROM Sailor S2)",
            sailors,
        )
        assert "NOT EXISTS (SELECT 1 FROM (" in lowered.sql

    def test_equality_any_becomes_in(self, sailors):
        lowered = self._lower(
            "SELECT S.sname FROM Sailor S WHERE S.sid = ANY "
            "(SELECT R.sid FROM Reserves R)",
            sailors,
        )
        assert " IN (" in lowered.sql
        assert "EXISTS" not in lowered.sql

    def test_cross_family_comparison_raises_at_lowering(self, sailors):
        with pytest.raises(TypeMismatchError, match="string"):
            self._lower(
                "SELECT S.sname FROM Sailor S WHERE S.sname = 3", sailors
            )

    def test_generated_sql_is_executable(self, sailors):
        lowered = self._lower(
            "SELECT S.sname FROM Sailor S, Reserves R "
            "WHERE S.sid = R.sid AND R.bid = 101",
            sailors,
        )
        store = SQLiteStore(sailors)
        try:
            rows = store.connection.execute(lowered.sql, lowered.binds).fetchall()
        finally:
            store.close()
        expected = execute(
            parse(
                "SELECT S.sname FROM Sailor S, Reserves R "
                "WHERE S.sid = R.sid AND R.bid = 101"
            ),
            sailors,
        )
        assert set(rows) == expected.as_set()

    def test_describe_lists_binds(self, sailors):
        lowered = self._lower(
            "SELECT S.sname FROM Sailor S WHERE S.rating > 7", sailors
        )
        description = lowered.describe()
        assert description.startswith(lowered.sql)
        assert "--   :p0 = 7" in description


# --------------------------------------------------------------------- #
# error mapping
# --------------------------------------------------------------------- #


class TestErrorMapping:
    def test_overflow_maps_to_engine_error(self):
        error = map_sqlite_error(OverflowError("int too big"))
        assert type(error) is EngineError
        assert "64-bit" in str(error)

    def test_no_such_table(self):
        error = map_sqlite_error(sqlite3.OperationalError("no such table: Foo"))
        assert type(error) is UnknownTableError

    def test_no_such_column(self):
        error = map_sqlite_error(sqlite3.OperationalError("no such column: c9"))
        assert type(error) is UnknownColumnError

    def test_ambiguous_column(self):
        error = map_sqlite_error(
            sqlite3.OperationalError("ambiguous column name: sid")
        )
        assert type(error) is AmbiguousColumnError

    def test_everything_else_is_engine_error(self):
        error = map_sqlite_error(sqlite3.OperationalError("database is locked"))
        assert type(error) is EngineError

    def test_unknown_table_raises_same_class_as_engines(self, sailors):
        query = parse("SELECT N.x FROM Nonexistent N")
        for mode in (ExecutionMode.PLANNED, ExecutionMode.SQL):
            with pytest.raises(UnknownTableError):
                execute(query, sailors, mode=mode)


# --------------------------------------------------------------------- #
# caching + batch integration
# --------------------------------------------------------------------- #


class TestCachingAndBatch:
    def test_lowering_cache_hits_on_repeat(self, sailors):
        context = ExecutionContext(sailors)
        executor = Executor(sailors, mode=ExecutionMode.SQL, context=context)
        query = parse("SELECT S.sname FROM Sailor S")
        executor.execute(query)
        executor.execute(query)
        assert context.stats.sql_lower_misses == 1
        assert context.stats.sql_lower_hits == 1

    def test_batch_stats_describe_mentions_lowerings(self, sailors):
        batch = BatchExecutor(sailors, mode=ExecutionMode.SQL)
        batch.run(["SELECT S.sname FROM Sailor S"] * 3)
        stats = batch.stats()
        assert stats.sql_lower_misses == 1
        assert stats.sql_lower_hits == 2
        assert stats.sql_store_builds == 1
        assert "lowerings 2/3 cached (1 sqlite load)" in stats.describe()

    def test_explain_includes_lowered_sql(self, sailors):
        query = parse("SELECT S.sname FROM Sailor S WHERE S.rating > 7")
        text = Executor(sailors, mode=ExecutionMode.SQL).explain(query)
        assert "-- lowered SQL (sqlite) --" in text
        assert "SELECT DISTINCT * FROM (" in text
        assert ":p0" in text
        # The plan tree is still the first half.
        assert text.startswith("Distinct")
