"""Unit tests for the SQL lexer."""

from __future__ import annotations

import pytest

from repro.sql import SQLSyntaxError, tokenize
from repro.sql.tokens import TokenType


def kinds(text: str) -> list[TokenType]:
    return [t.type for t in tokenize(text)]


def values(text: str) -> list[str]:
    return [t.value for t in tokenize(text) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_upper_cased(self):
        assert values("select from where and not exists") == [
            "SELECT",
            "FROM",
            "WHERE",
            "AND",
            "NOT",
            "EXISTS",
        ]

    def test_identifiers_keep_case(self):
        tokens = tokenize("ArtistId")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "ArtistId"

    def test_qualified_column_is_three_tokens(self):
        assert values("T1.attr2") == ["T1", ".", "attr2"]

    def test_number_integer(self):
        tokens = tokenize("270000")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == "270000"

    def test_number_decimal(self):
        tokens = tokenize("2.5")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == "2.5"

    def test_number_followed_by_dot_identifier_not_merged(self):
        # "1.x" should not swallow the identifier after the dot.
        assert values("T1.attr") == ["T1", ".", "attr"]

    def test_string_literal(self):
        tokens = tokenize("'AC/DC'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "AC/DC"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'O''Hara'")
        assert tokens[0].value == "O'Hara"

    def test_quoted_identifier(self):
        tokens = tokenize('"Group By Weird Name"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "Group By Weird Name"

    def test_eof_token_is_appended(self):
        assert kinds("")[-1] is TokenType.EOF


class TestOperators:
    @pytest.mark.parametrize("op", ["<", "<=", "=", "<>", ">=", ">"])
    def test_all_six_operators(self, op):
        tokens = tokenize(op)
        assert tokens[0].type is TokenType.OPERATOR
        assert tokens[0].value == op

    def test_not_equal_alias(self):
        tokens = tokenize("a != b")
        assert tokens[1].value == "<>"

    def test_punctuation(self):
        assert kinds("( ) , ; *")[:-1] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.SEMICOLON,
            TokenType.STAR,
        ]


class TestWhitespaceAndComments:
    def test_line_comment_is_skipped(self):
        assert values("SELECT -- comment here\n x") == ["SELECT", "x"]

    def test_block_comment_is_skipped(self):
        assert values("SELECT /* multi\nline */ x") == ["SELECT", "x"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT /* oops")

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'never closed")

    def test_positions_are_recorded(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestStringEscapes:
    """Regression tests for the sliced (no longer char-at-a-time) literals."""

    def test_empty_string_literal(self):
        tokens = tokenize("''")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == ""

    def test_literal_that_is_only_an_escaped_quote(self):
        tokens = tokenize("''''")
        assert tokens[0].value == "'"

    def test_multiple_escapes_in_one_literal(self):
        tokens = tokenize("'a''b''''c'")
        assert tokens[0].value == "a'b''c"

    def test_escape_at_start_and_end(self):
        tokens = tokenize("'''x'''")
        assert tokens[0].value == "'x'"

    def test_adjacent_literals_do_not_merge(self):
        values = [t.value for t in tokenize("'a' 'b'") if t.type is TokenType.STRING]
        assert values == ["a", "b"]

    def test_escaped_quote_then_unterminated_tail_raises(self):
        with pytest.raises(SQLSyntaxError, match="string"):
            tokenize("'a'' and then it never ends")


class TestScanStream:
    def test_scan_arrays_align(self):
        from repro.sql.lexer import scan

        stream = scan("SELECT T1.attr FROM T AS T1")
        assert len(stream.types) == len(stream.values) == len(stream.positions)
        assert stream.types[-1] is TokenType.EOF
        assert stream.tokens() == tokenize("SELECT T1.attr FROM T AS T1")

    def test_qualified_column_positions(self):
        tokens = tokenize("T1.attr2")
        assert [t.position for t in tokens[:3]] == [0, 2, 3]

    def test_keyword_qualified_is_split_like_before(self):
        # The fused qualified-column match must still classify keywords.
        kinds_values = [(t.type, t.value) for t in tokenize("from.x")[:3]]
        assert kinds_values == [
            (TokenType.KEYWORD, "FROM"),
            (TokenType.DOT, "."),
            (TokenType.IDENTIFIER, "x"),
        ]

    def test_number_dot_identifier_unfused(self):
        assert values("T1.attr") == ["T1", ".", "attr"]
        assert values("1.5") == ["1.5"]


class TestErrorCases:
    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @x")

    def test_error_mentions_position(self):
        with pytest.raises(SQLSyntaxError, match="position"):
            tokenize("SELECT @x")

    def test_error_position_is_first_gap(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("SELECT @x FROM % T")
        assert "@" in str(excinfo.value)

    def test_gap_at_end_of_input(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT x @")
