"""Unit tests for the DOT, SVG, layout and text renderers."""

from __future__ import annotations

import pytest

from repro import queryvis
from repro.render import (
    LayoutConfig,
    diagram_summary,
    diagram_to_dot,
    diagram_to_svg,
    diagram_to_text,
    layout_diagram,
)


@pytest.fixture
def nested_diagram(q_only_query):
    return queryvis(q_only_query, simplify=False)


@pytest.fixture
def simplified_diagram(q_only_query):
    return queryvis(q_only_query, simplify=True)


class TestDot:
    def test_is_a_digraph(self, nested_diagram):
        dot = diagram_to_dot(nested_diagram)
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")

    def test_every_table_becomes_a_node(self, nested_diagram):
        dot = diagram_to_dot(nested_diagram)
        for table in nested_diagram.tables:
            assert f'"{table.table_id}"' in dot

    def test_not_exists_box_is_dashed_cluster(self, nested_diagram):
        dot = diagram_to_dot(nested_diagram)
        assert "subgraph cluster_0" in dot
        assert "style=dashed" in dot

    def test_forall_box_uses_double_periphery(self, simplified_diagram):
        dot = diagram_to_dot(simplified_diagram)
        assert "peripheries=2" in dot

    def test_undirected_edges_marked_dir_none(self, q_some_query):
        dot = diagram_to_dot(queryvis(q_some_query))
        assert "dir=none" in dot

    def test_operator_label_emitted(self, unique_set_query):
        dot = diagram_to_dot(queryvis(unique_set_query, simplify=False))
        assert 'label="&lt;&gt;"' in dot

    def test_selection_row_highlighted(self):
        dot = diagram_to_dot(queryvis("SELECT B.bid FROM Boat B WHERE B.color = 'red'"))
        assert "#ffffaa" in dot and "color = &#39;red&#39;" not in dot  # plain escaping only

    def test_html_escaping(self):
        dot = diagram_to_dot(
            queryvis("SELECT A.x FROM A, B WHERE A.x < B.y")
        )
        assert "&lt;" in dot or "label=\"<\"" not in dot

    def test_custom_graph_name(self, q_some_query):
        assert diagram_to_dot(queryvis(q_some_query), graph_name="q1").startswith(
            'digraph "q1"'
        )


class TestSvgAndLayout:
    def test_layout_places_every_table(self, nested_diagram):
        layout = layout_diagram(nested_diagram)
        for table in nested_diagram.tables:
            placement = layout.placement(table.table_id)
            assert placement.width > 0 and placement.height > 0

    def test_layout_columns_follow_depth(self, nested_diagram):
        layout = layout_diagram(nested_diagram)
        select_x = layout.placement("__select__").x
        f_x = layout.placement("F").x
        s_x = layout.placement("S").x
        l_x = layout.placement("L").x
        assert select_x < f_x < s_x < l_x

    def test_layout_no_overlaps_within_column(self, unique_set_query):
        diagram = queryvis(unique_set_query, simplify=False)
        layout = layout_diagram(diagram)
        placements = list(layout.placements.values())
        for i, a in enumerate(placements):
            for b in placements[i + 1 :]:
                if a.x == b.x:
                    assert a.bottom <= b.y or b.bottom <= a.y

    def test_svg_is_well_formed_document(self, nested_diagram):
        svg = diagram_to_svg(nested_diagram)
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= len(nested_diagram.tables)
        assert svg.count("<line") == len(nested_diagram.edges)

    def test_svg_dashed_box_for_not_exists(self, nested_diagram):
        assert "stroke-dasharray" in diagram_to_svg(nested_diagram)

    def test_svg_contains_table_names(self, nested_diagram):
        svg = diagram_to_svg(nested_diagram)
        assert "Frequents" in svg and "Serves" in svg and "Likes" in svg

    def test_svg_canvas_large_enough(self, nested_diagram):
        layout = layout_diagram(nested_diagram)
        assert layout.width > 400 and layout.height > 100


class TestSharedLayout:
    def test_layout_records_reading_order(self, nested_diagram):
        layout = layout_diagram(nested_diagram)
        assert layout.order == tuple(nested_diagram.reading_order())

    def test_renderers_accept_precomputed_layout(self, nested_diagram):
        layout = layout_diagram(nested_diagram)
        assert diagram_to_svg(nested_diagram, layout=layout) == diagram_to_svg(
            nested_diagram
        )
        assert diagram_to_text(nested_diagram, layout=layout) == diagram_to_text(
            nested_diagram
        )
        assert diagram_to_dot(nested_diagram, layout=layout) == diagram_to_dot(
            nested_diagram
        )

    def test_layout_config_scales_geometry(self, nested_diagram):
        default = layout_diagram(nested_diagram)
        compact = layout_diagram(
            nested_diagram, LayoutConfig(row_height=11, table_width=85, column_gap=45)
        )
        assert compact.width < default.width
        for table_id, placement in compact.placements.items():
            assert placement.width == 85
            assert placement.height < default.placement(table_id).height

    def test_svg_honours_layout_config(self, nested_diagram):
        compact = diagram_to_svg(
            nested_diagram, config=LayoutConfig(row_height=11, header_height=13)
        )
        assert 'height="13"' in compact


class TestText:
    def test_text_contains_quantifier_symbols(self, nested_diagram):
        text = diagram_to_text(nested_diagram)
        assert "∄" in text

    def test_text_contains_forall_symbol(self, simplified_diagram):
        assert "∀" in diagram_to_text(simplified_diagram)

    def test_text_lists_edges(self, nested_diagram):
        text = diagram_to_text(nested_diagram)
        assert "edges:" in text
        assert "──>" in text

    def test_selection_row_prefix(self):
        text = diagram_to_text(queryvis("SELECT B.bid FROM Boat B WHERE B.color = 'red'"))
        assert "σ color = 'red'" in text

    def test_summary_counts(self, nested_diagram):
        summary = diagram_summary(nested_diagram)
        assert "3 tables" in summary and "2 boxes" in summary
