"""Unit tests for Logic Tree → diagram construction (arrow rules, boxes, rows)."""

from __future__ import annotations

import pytest

from repro import queryvis
from repro.diagram import (
    BoxStyle,
    RowKind,
    SELECT_TABLE_ID,
    build_diagram,
    ensure_unique_aliases,
    flatten_existential_blocks,
    validate_diagram,
)
from repro.logic import Quantifier, simplify_logic_tree, sql_to_logic_tree
from repro.sql import parse


def edge_map(diagram):
    """(source_table, target_table) -> edge for join edges."""
    return {
        (edge.source.table_id, edge.target.table_id): edge
        for edge in diagram.join_edges()
    }


class TestConjunctiveDiagram:
    def test_fig2a_structure(self, q_some_query):
        diagram = queryvis(q_some_query)
        assert len(diagram.data_tables()) == 3
        assert len(diagram.boxes) == 0
        assert len(diagram.join_edges()) == 3
        assert len(diagram.select_edges()) == 1
        validate_diagram(diagram)

    def test_conjunctive_edges_are_undirected_equijoins(self, q_some_query):
        diagram = queryvis(q_some_query)
        for edge in diagram.join_edges():
            assert not edge.directed
            assert edge.operator is None

    def test_select_table_rows(self, q_some_query):
        diagram = queryvis(q_some_query)
        assert diagram.select_table.is_select
        assert [row.label for row in diagram.select_table.rows] == ["person"]

    def test_attribute_rows(self, q_some_query):
        diagram = queryvis(q_some_query)
        frequents = diagram.table("F")
        assert set(frequents.row_keys()) == {"person", "bar"}

    def test_selection_row(self):
        diagram = queryvis("SELECT B.bname FROM Boat B WHERE B.color = 'red'")
        boat = diagram.table("B")
        selection_rows = [row for row in boat.rows if row.kind is RowKind.SELECTION]
        assert len(selection_rows) == 1
        assert selection_rows[0].label == "color = 'red'"

    def test_inequality_join_labelled(self):
        diagram = queryvis(
            "SELECT C.CustomerId FROM Customer C, Invoice I1, Invoice I2 "
            "WHERE C.CustomerId = I1.CustomerId AND C.CustomerId = I2.CustomerId "
            "AND I1.BillingState <> I2.BillingState"
        )
        operators = {edge.operator for edge in diagram.join_edges()}
        assert "<>" in operators


class TestNestedDiagram:
    def test_fig2b_unsimplified(self, q_only_query):
        diagram = queryvis(q_only_query, simplify=False)
        assert len(diagram.boxes) == 2
        assert all(box.style is BoxStyle.NOT_EXISTS for box in diagram.boxes)
        validate_diagram(diagram)

    def test_fig2c_simplified(self, q_only_query):
        diagram = queryvis(q_only_query, simplify=True)
        assert len(diagram.boxes) == 1
        assert diagram.boxes[0].style is BoxStyle.FOR_ALL

    def test_arrow_rule_parent_to_child(self, q_only_query):
        diagram = queryvis(q_only_query, simplify=False)
        edges = edge_map(diagram)
        # F (depth 0) -> S (depth 1): shallower to deeper.
        assert ("F", "S") in edges and edges[("F", "S")].directed
        # S (depth 1) -> L (depth 2): shallower to deeper.
        assert ("S", "L") in edges
        # L (depth 2) -> F (depth 0): difference 2, deeper to shallower.
        assert ("L", "F") in edges

    def test_unique_set_arrow_directions(self, unique_set_query):
        diagram = queryvis(unique_set_query, simplify=False)
        edges = edge_map(diagram)
        assert edges[("L1", "L2")].operator == "<>"
        assert ("L2", "L3") in edges  # depth 1 -> 2
        assert ("L3", "L4") in edges  # depth 2 -> 3
        assert ("L4", "L1") in edges  # depth 3 -> 0 (difference 3)
        assert ("L5", "L1") in edges  # depth 2 -> 0 (difference 2)
        assert ("L6", "L2") in edges  # depth 3 -> 1 (difference 2)
        assert ("L5", "L6") in edges  # depth 2 -> 3

    def test_unique_set_boxes(self, unique_set_query):
        diagram = queryvis(unique_set_query, simplify=False)
        assert len(diagram.boxes) == 5
        simplified = queryvis(unique_set_query, simplify=True)
        styles = sorted(box.style.value for box in simplified.boxes)
        assert styles == ["dashed", "double", "double"]

    def test_reading_order_matches_footnote1(self, unique_set_query):
        diagram = queryvis(unique_set_query, simplify=False)
        order = diagram.reading_order()
        assert order[0] == SELECT_TABLE_ID
        assert order[1:5] == ["L1", "L2", "L3", "L4"]
        assert order[5:] == ["L5", "L6"]

    def test_operator_flipped_when_arrow_reversed(self):
        # B is the parent of A in the nesting, so the arrow must go B -> A and
        # the operator A.attr1 > B.attr2 must be rewritten as B.attr2 < A.attr1.
        diagram = queryvis(
            "SELECT B.attr2 FROM B WHERE NOT EXISTS "
            "(SELECT * FROM A WHERE A.attr1 > B.attr2)",
            simplify=False,
        )
        edge = diagram.join_edges()[0]
        assert edge.source.table_id == "B" and edge.target.table_id == "A"
        assert edge.operator == "<"

    def test_exists_blocks_are_flattened(self):
        diagram = queryvis(
            "SELECT A.x FROM A WHERE EXISTS (SELECT * FROM B WHERE B.y = A.x)",
            simplify=False,
        )
        assert len(diagram.boxes) == 0
        assert len(diagram.data_tables()) == 2
        edge = diagram.join_edges()[0]
        assert not edge.directed  # same block after flattening

    def test_in_subquery_flattened_to_plain_join(self):
        diagram = queryvis(
            "SELECT A.x FROM A WHERE A.x IN (SELECT B.y FROM B)", simplify=False
        )
        assert len(diagram.boxes) == 0
        assert len(diagram.join_edges()) == 1


class TestGroupByAndAggregates:
    def test_group_by_row_highlighted(self):
        diagram = queryvis(
            "SELECT T.AlbumId, MAX(T.Milliseconds) FROM Track T GROUP BY T.AlbumId"
        )
        track = diagram.table("T")
        kinds = {row.key.lower(): row.kind for row in track.rows}
        assert kinds["albumid"] is RowKind.GROUP_BY
        assert any(row.kind is RowKind.AGGREGATE for row in track.rows)

    def test_aggregate_in_select_table(self):
        diagram = queryvis(
            "SELECT T.AlbumId, MAX(T.Milliseconds) FROM Track T GROUP BY T.AlbumId"
        )
        labels = [row.label for row in diagram.select_table.rows]
        assert "MAX(T.Milliseconds)" in labels

    def test_qualification_q3_diagram(self, chinook):
        sql = (
            "SELECT P.PlaylistId, G.Name, COUNT(T.TrackId) "
            "FROM Playlist P, PlaylistTrack PT, Track T, Genre G "
            "WHERE P.PlaylistId = PT.PlaylistId AND PT.TrackId = T.TrackId "
            "AND T.GenreId = G.GenreId GROUP BY P.PlaylistId, G.Name"
        )
        diagram = queryvis(sql, schema=chinook)
        validate_diagram(diagram)
        group_rows = [
            row for _table, row in diagram.iter_rows() if row.kind is RowKind.GROUP_BY
        ]
        assert len(group_rows) == 2


class TestPreprocessing:
    def test_ensure_unique_aliases_renames_duplicates(self):
        sql = (
            "SELECT A.x FROM T A WHERE "
            "NOT EXISTS (SELECT * FROM T B WHERE B.x = A.x AND "
            "EXISTS (SELECT * FROM T A WHERE A.x = B.x))"
        )
        tree = ensure_unique_aliases(sql_to_logic_tree(parse(sql)))
        aliases = [t.effective_alias for node in tree.iter_nodes() for t in node.tables]
        assert len(aliases) == len(set(a.lower() for a in aliases))

    def test_flatten_preserves_table_count(self, q_only_query):
        tree = sql_to_logic_tree(q_only_query)
        flattened = flatten_existential_blocks(tree)
        assert flattened.table_count() == tree.table_count()

    def test_flatten_does_not_merge_into_forall(self, q_only_query):
        tree = simplify_logic_tree(sql_to_logic_tree(q_only_query))
        flattened = flatten_existential_blocks(tree)
        serves = flattened.node_of_alias("S")
        assert serves.quantifier is Quantifier.FOR_ALL
        assert len(serves.children) == 1  # ∃ Likes block kept separate

    def test_study_stimuli_all_build_valid_diagrams(self, chinook):
        from repro.study import qualification_questions, test_questions

        for question in list(test_questions()) + list(qualification_questions()):
            for simplify in (False, True):
                diagram = queryvis(question.sql, schema=chinook, simplify=simplify)
                validate_diagram(diagram)
