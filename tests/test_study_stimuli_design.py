"""Unit tests for the study stimuli and the Latin-square design."""

from __future__ import annotations

import pytest

from repro import queryvis
from repro.diagram import validate_diagram
from repro.logic import check_properties, sql_to_logic_tree
from repro.relational import execute
from repro.study import (
    Category,
    Complexity,
    Condition,
    SEQUENCES,
    assign,
    condition_counts,
    conditions_for_sequence,
    is_balanced,
    qualification_questions,
    questions_without_grouping,
    sequence_for_participant,
    study_schema,
)
from repro.study import test_questions as study_questions
from repro.workloads import chinook_database


class TestStimuli:
    def test_twelve_test_questions(self):
        questions = study_questions()
        assert len(questions) == 12
        assert [q.question_id for q in questions] == [f"Q{i}" for i in range(1, 13)]

    def test_nine_without_grouping(self):
        nine = questions_without_grouping()
        assert len(nine) == 9
        assert all(q.category is not Category.GROUPING for q in nine)

    def test_three_questions_per_category(self):
        questions = study_questions()
        for category in Category:
            members = [q for q in questions if q.category is category]
            assert len(members) == 3
            assert {q.complexity for q in members} == set(Complexity)

    def test_each_question_has_four_distinct_choices(self):
        for question in study_questions():
            assert len(question.choices) == 4
            assert len(set(question.choices)) == 4
            assert 0 <= question.correct_choice < 4

    def test_six_qualification_questions(self):
        assert len(qualification_questions()) == 6

    def test_all_stimuli_parse(self):
        for question in list(study_questions()) + list(qualification_questions()):
            query = question.parsed()
            assert query.from_tables

    def test_all_stimuli_reference_chinook_tables(self):
        schema = study_schema()
        for question in study_questions():
            for block in question.parsed().iter_blocks():
                for table in block.from_tables:
                    assert schema.has_table(table.name), table.name

    def test_nested_stimuli_are_non_degenerate(self):
        for question in study_questions():
            if question.uses_grouping:
                continue
            report = check_properties(sql_to_logic_tree(question.parsed()))
            assert report.is_valid, question.question_id

    def test_all_stimuli_produce_valid_diagrams(self):
        schema = study_schema()
        for question in list(study_questions()) + list(qualification_questions()):
            validate_diagram(queryvis(question.sql, schema=schema))

    def test_stimuli_execute_on_synthetic_chinook(self):
        database = chinook_database()
        for question in study_questions():
            result = execute(question.parsed(), database)
            assert result.columns  # executes without error

    def test_complexity_distribution_of_nested_category(self):
        nested = [q for q in study_questions() if q.category is Category.NESTED]
        assert [q.question_id for q in nested] == ["Q10", "Q11", "Q12"]
        assert [q.complexity for q in nested] == [
            Complexity.SIMPLE,
            Complexity.MEDIUM,
            Complexity.COMPLEX,
        ]


class TestLatinSquareDesign:
    def test_six_sequences_cover_all_permutations(self):
        assert len(SEQUENCES) == 6
        assert len(set(SEQUENCES)) == 6
        for sequence in SEQUENCES:
            assert set(sequence) == set(Condition)

    def test_round_robin_assignment(self):
        assert sequence_for_participant(0) == 0
        assert sequence_for_participant(5) == 5
        assert sequence_for_participant(6) == 0

    def test_conditions_repeat_every_three_questions(self):
        conditions = conditions_for_sequence(0, 12)
        assert conditions[0:3] == conditions[3:6] == conditions[6:9] == conditions[9:12]

    def test_each_condition_appears_equally_often(self):
        assignment = assign(participant_id=3, n_questions=12)
        counts = condition_counts(assignment)
        assert set(counts.values()) == {4}

    def test_every_question_balanced_across_sequences(self):
        # Over the six sequences, every question index is shown in every
        # condition exactly twice.
        for question_index in range(12):
            seen = [
                conditions_for_sequence(sequence, 12)[question_index]
                for sequence in range(6)
            ]
            assert all(seen.count(condition) == 2 for condition in Condition)

    def test_balanced_participant_counts(self):
        assert is_balanced(42) and not is_balanced(44)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sequence_for_participant(-1)
        with pytest.raises(ValueError):
            conditions_for_sequence(9, 12)
